//! The baseline set-associative, VPN-indexed TLB with true-LRU
//! replacement.
//!
//! This is the organization the paper's Table III assumes for both the
//! per-SM private L1 TLB and the shared L2 TLB: the set index comes from
//! the low VPN bits, the remaining bits form the tag, and replacement is
//! LRU within a set.
//!
//! Storage is split structure-of-arrays style: the probe tags live in one
//! packed `u64` slice (scanned by `lookup` without touching the ppn/stamp
//! payload), and the payload lives in a parallel vector read only on a
//! hit or when replacement runs.

use crate::config::TlbConfig;
use crate::request::{TlbOutcome, TlbRequest, TranslationBuffer};
use crate::sanitize::InvariantViolation;
use crate::stats::TlbStats;
use std::fmt::Write as _;
use vmem::{Ppn, Vpn};

/// Payload of one way; the probe tag is stored separately in
/// [`SetAssocTlb::tags`].
#[derive(Copy, Clone, Debug, Default)]
struct WayMeta {
    ppn: Ppn,
    /// Monotone use-stamp for LRU (larger = more recent).
    stamp: u64,
}

/// Packed probe tag: `(vpn << 1) | 1` for a valid way, `0` for invalid.
/// VPNs are at most 52 bits (64-bit VA minus the 12-bit small-page
/// offset), so the shift cannot lose bits.
fn tag_of(vpn: Vpn) -> u64 {
    debug_assert_eq!(vpn.raw() >> 63, 0, "VPN uses bit 63; tag encoding would alias");
    (vpn.raw() << 1) | 1
}

/// A VPN-indexed, set-associative TLB with LRU replacement.
///
/// # Example
///
/// ```
/// use tlb::{SetAssocTlb, TlbConfig, TlbRequest, TranslationBuffer};
/// use vmem::{Ppn, Vpn};
///
/// let mut tlb = SetAssocTlb::new(TlbConfig::new(8, 2, 1));
/// for i in 0..8 {
///     tlb.insert(&TlbRequest::new(Vpn::new(i), 0), Ppn::new(i));
/// }
/// assert!(tlb.lookup(&TlbRequest::new(Vpn::new(3), 0)).hit);
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocTlb {
    config: TlbConfig,
    /// `sets() * associativity` packed probe tags, set-major (see
    /// [`tag_of`]).
    tags: Vec<u64>,
    /// Payload parallel to `tags`. Kept (stamps included) across flushes,
    /// matching the pre-SoA `Way` layout, so victim tie-breaking among
    /// invalid ways is unchanged.
    meta: Vec<WayMeta>,
    clock: u64,
    stats: TlbStats,
    /// Count of valid ways, maintained on insert/evict/flush; equals the
    /// full-`tags` scan (debug-asserted in [`SetAssocTlb::occupancy`]).
    resident: usize,
    /// Per-set way index of the last lookup hit (`u32::MAX` = none): the
    /// exact MRU fast path. A memoized way is trusted only after its tag
    /// re-matches the probe, so a stale memo (the way was since evicted
    /// or refilled) silently falls back to the tag walk — state
    /// transitions and stats are bit-equal either way.
    memo: Vec<u32>,
    /// Lookups served via `memo` (host-side observability only).
    fastpath: u64,
    /// Fast path enabled (the differential proptest runs a memo-less
    /// twin to prove the two paths are indistinguishable).
    fastpath_on: bool,
}

impl SetAssocTlb {
    /// Creates an empty TLB with the given geometry.
    pub fn new(config: TlbConfig) -> Self {
        SetAssocTlb {
            config,
            tags: vec![0; config.entries],
            meta: vec![WayMeta::default(); config.entries],
            clock: 0,
            stats: TlbStats::default(),
            resident: 0,
            memo: vec![u32::MAX; config.sets()],
            fastpath: 0,
            fastpath_on: true,
        }
    }

    /// The TLB's configuration.
    pub fn config(&self) -> &TlbConfig {
        &self.config
    }

    /// Enables or disables the MRU lookup fast path. Purely a wall-clock
    /// knob — outcomes, stats and LRU state are bit-equal either way
    /// (proven by the differential proptest in `tests/fastpath_diff.rs`).
    pub fn set_fastpath(&mut self, on: bool) {
        self.fastpath_on = on;
    }

    fn set_of(&self, vpn: Vpn) -> usize {
        // Mask in u64 before narrowing so the set index is identical on
        // 32-bit hosts.
        (vpn.raw() & (self.config.sets() as u64 - 1)) as usize
    }

    fn set_range(&self, set: usize) -> std::ops::Range<usize> {
        let a = self.config.associativity;
        set * a..(set + 1) * a
    }

    /// Number of valid entries currently resident. O(1): returns the
    /// maintained counter, cross-checked against the scan in debug
    /// builds (the sanitizer calls this every event cycle).
    pub fn occupancy(&self) -> usize {
        debug_assert_eq!(
            self.resident,
            self.tags.iter().filter(|&&t| t != 0).count(),
            "resident counter diverged from the valid-way scan"
        );
        self.resident
    }

    /// Probes for `vpn` without updating stats or LRU state (diagnostics).
    pub fn peek(&self, vpn: Vpn) -> Option<Ppn> {
        let set = self.set_of(vpn);
        let range = self.set_range(set);
        let tag = tag_of(vpn);
        self.tags[range.clone()]
            .iter()
            .position(|&t| t == tag)
            .map(|i| self.meta[range.start + i].ppn)
    }
}

impl TranslationBuffer for SetAssocTlb {
    fn lookup(&mut self, req: &TlbRequest) -> TlbOutcome {
        self.clock += 1;
        let set = self.set_of(req.vpn);
        let tag = tag_of(req.vpn);
        // Exact MRU fast path: the last way that hit in this set, trusted
        // only if its tag still matches. The updates below are the same
        // statements the tag-walk hit performs, so the two paths are
        // bit-equal in every architectural observable.
        if self.fastpath_on {
            let m = self.memo[set];
            if m != u32::MAX && self.tags[m as usize] == tag {
                let way = &mut self.meta[m as usize];
                way.stamp = self.clock;
                self.stats.record(true);
                self.fastpath += 1;
                return TlbOutcome::hit(way.ppn, self.config.lookup_latency);
            }
        }
        let range = self.set_range(set);
        // Hot probe loop: compare against the contiguous tag slice only;
        // the ppn/stamp payload is touched solely on a hit.
        if let Some(i) = self.tags[range.clone()].iter().position(|&t| t == tag) {
            self.memo[set] = (range.start + i) as u32;
            let way = &mut self.meta[range.start + i];
            way.stamp = self.clock;
            self.stats.record(true);
            return TlbOutcome::hit(way.ppn, self.config.lookup_latency);
        }
        self.stats.record(false);
        TlbOutcome::miss(self.config.lookup_latency)
    }

    fn insert(&mut self, req: &TlbRequest, ppn: Ppn) {
        self.clock += 1;
        let set = self.set_of(req.vpn);
        let range = self.set_range(set);
        let tag = tag_of(req.vpn);
        // Refresh in place if already present (fill races are benign).
        if let Some(i) = self.tags[range.clone()].iter().position(|&t| t == tag) {
            let way = &mut self.meta[range.start + i];
            way.ppn = ppn;
            way.stamp = self.clock;
            return;
        }
        self.stats.insertions += 1;
        // Prefer an invalid way; otherwise evict LRU.
        let victim = range
            .clone()
            .min_by_key(|&i| (self.tags[i] != 0, self.meta[i].stamp))
            .expect("associativity is non-zero"); // simlint: allow(hot-unwrap, reason = "TlbConfig validates associativity > 0 at construction")
        if self.tags[victim] != 0 {
            self.stats.evictions += 1;
        } else {
            self.resident += 1;
        }
        self.tags[victim] = tag;
        self.meta[victim] = WayMeta {
            ppn,
            stamp: self.clock,
        };
    }

    fn stats(&self) -> TlbStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
    }

    // Victim choice keys on `(valid, stamp)` and the tag encodes only
    // the VPN, so the inserted frame never influences placement.
    fn supports_deferred_fill(&self) -> bool {
        true
    }

    fn patch_ppn(&mut self, req: &TlbRequest, old: Ppn, new: Ppn) -> bool {
        let set = self.set_of(req.vpn);
        let range = self.set_range(set);
        let tag = tag_of(req.vpn);
        if let Some(i) = self.tags[range.clone()].iter().position(|&t| t == tag) {
            let way = &mut self.meta[range.start + i];
            if way.ppn == old {
                way.ppn = new;
                return true;
            }
        }
        false
    }

    fn probe(&self, req: &TlbRequest) -> Option<Option<Ppn>> {
        Some(self.peek(req.vpn))
    }

    fn flush(&mut self) {
        for t in &mut self.tags {
            *t = 0;
        }
        self.resident = 0;
        // The cleared tags already invalidate every memo (hygiene only).
        for m in &mut self.memo {
            *m = u32::MAX;
        }
    }

    fn fastpath_hits(&self) -> u64 {
        self.fastpath
    }

    fn capacity(&self) -> usize {
        self.config.entries
    }

    fn check_invariants(&self) -> Result<(), InvariantViolation> {
        let fail = |detail: String| {
            Err(InvariantViolation::new(
                "SetAssocTlb",
                detail,
                self.dump_state(),
            ))
        };
        if let Err(e) = self.stats.check() {
            return fail(e);
        }
        // Check the counter against the scan before anything calls
        // `occupancy()` (whose debug assert would panic, not report).
        let scanned = self.tags.iter().filter(|&&t| t != 0).count();
        if self.resident != scanned {
            return fail(format!(
                "resident counter {} != valid-way scan {scanned}",
                self.resident
            ));
        }
        if scanned > self.capacity() {
            return fail(format!(
                "occupancy {scanned} exceeds capacity {}",
                self.capacity()
            ));
        }
        for set in 0..self.config.sets() {
            let range = self.set_range(set);
            let m = self.memo[set];
            if m != u32::MAX && !range.contains(&(m as usize)) {
                return fail(format!(
                    "set {set}: MRU memo {m} points outside the set's way range {range:?}"
                ));
            }
            for i in range.clone() {
                if self.tags[i] == 0 {
                    continue;
                }
                let w = &self.meta[i];
                if w.stamp > self.clock {
                    return fail(format!(
                        "set {set} way {}: stamp {} ahead of clock {}",
                        i - range.start,
                        w.stamp,
                        self.clock
                    ));
                }
                // Distinct stamps per set make LRU a total order: ties
                // would leave the victim choice to iteration order.
                if (range.start..i)
                    .any(|j| self.tags[j] != 0 && self.meta[j].stamp == w.stamp)
                {
                    return fail(format!(
                        "set {set}: duplicate LRU stamp {} breaks the recency total order",
                        w.stamp
                    ));
                }
                if (range.start..i).any(|j| self.tags[j] == self.tags[i]) {
                    return fail(format!(
                        "set {set}: VPN {:#x} resident twice",
                        self.tags[i] >> 1
                    ));
                }
            }
        }
        Ok(())
    }

    fn dump_state(&self) -> String {
        let mut s = format!(
            "SetAssocTlb: {} entries, {}-way, clock {}, resident {}, stats {{{:?}}}\n",
            self.config.entries, self.config.associativity, self.clock, self.resident, self.stats
        );
        for set in 0..self.config.sets() {
            let range = self.set_range(set);
            if self.tags[range.clone()].iter().all(|&t| t == 0) {
                continue;
            }
            let _ = write!(s, "  set {set:3}:");
            for i in range {
                if self.tags[i] == 0 {
                    continue;
                }
                let _ = write!(
                    s,
                    " [vpn={:#x} ppn={:#x} @{}]",
                    self.tags[i] >> 1,
                    self.meta[i].ppn.raw(),
                    self.meta[i].stamp
                );
            }
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(vpn: u64) -> TlbRequest {
        TlbRequest::new(Vpn::new(vpn), 0)
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut t = SetAssocTlb::new(TlbConfig::dac23_l1());
        assert!(!t.lookup(&req(1)).hit);
        t.insert(&req(1), Ppn::new(100));
        let out = t.lookup(&req(1));
        assert!(out.hit);
        assert_eq!(out.ppn, Some(Ppn::new(100)));
        assert_eq!(out.latency, 1);
        assert_eq!(t.stats().hits, 1);
        assert_eq!(t.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 1 set, 2 ways.
        let mut t = SetAssocTlb::new(TlbConfig::new(2, 2, 1));
        t.insert(&req(0), Ppn::new(0));
        t.insert(&req(1), Ppn::new(1));
        // Touch 0 so 1 becomes LRU.
        assert!(t.lookup(&req(0)).hit);
        t.insert(&req(2), Ppn::new(2));
        assert!(t.lookup(&req(0)).hit, "recently used entry survives");
        assert!(!t.lookup(&req(1)).hit, "LRU entry evicted");
        assert!(t.lookup(&req(2)).hit);
        assert_eq!(t.stats().evictions, 1);
    }

    #[test]
    fn sets_are_independent() {
        // 4 sets x 1 way; VPNs 0..4 map to distinct sets.
        let mut t = SetAssocTlb::new(TlbConfig::new(4, 1, 1));
        for i in 0..4 {
            t.insert(&req(i), Ppn::new(i));
        }
        for i in 0..4 {
            assert!(t.lookup(&req(i)).hit);
        }
        // VPN 4 conflicts with VPN 0 only.
        t.insert(&req(4), Ppn::new(4));
        assert!(!t.lookup(&req(0)).hit);
        assert!(t.lookup(&req(1)).hit);
    }

    #[test]
    fn reinsert_updates_ppn_without_eviction() {
        let mut t = SetAssocTlb::new(TlbConfig::new(2, 2, 1));
        t.insert(&req(0), Ppn::new(1));
        t.insert(&req(0), Ppn::new(2));
        assert_eq!(t.lookup(&req(0)).ppn, Some(Ppn::new(2)));
        assert_eq!(t.stats().evictions, 0);
        assert_eq!(t.occupancy(), 1);
    }

    #[test]
    fn flush_invalidates_everything() {
        let mut t = SetAssocTlb::new(TlbConfig::dac23_l1());
        for i in 0..64 {
            t.insert(&req(i), Ppn::new(i));
        }
        assert_eq!(t.occupancy(), 64);
        t.flush();
        assert_eq!(t.occupancy(), 0);
        assert!(!t.lookup(&req(0)).hit);
    }

    #[test]
    fn peek_does_not_perturb_state() {
        let mut t = SetAssocTlb::new(TlbConfig::dac23_l1());
        t.insert(&req(9), Ppn::new(3));
        assert_eq!(t.peek(Vpn::new(9)), Some(Ppn::new(3)));
        assert_eq!(t.peek(Vpn::new(10)), None);
        assert_eq!(t.stats().accesses(), 0);
    }

    #[test]
    fn probe_matches_peek_and_does_not_perturb() {
        let mut t = SetAssocTlb::new(TlbConfig::dac23_l1());
        t.insert(&req(9), Ppn::new(3));
        assert_eq!(t.probe(&req(9)), Some(Some(Ppn::new(3))));
        assert_eq!(t.probe(&req(10)), Some(None));
        assert_eq!(t.stats().accesses(), 0);
    }

    #[test]
    fn capacity_matches_config() {
        let t = SetAssocTlb::new(TlbConfig::dac23_l2());
        assert_eq!(t.capacity(), 512);
    }

    #[test]
    fn working_set_within_capacity_never_misses_after_warmup() {
        let mut t = SetAssocTlb::new(TlbConfig::dac23_l1());
        // 64 sequential pages fill the TLB exactly (4 per set).
        for i in 0..64 {
            t.insert(&req(i), Ppn::new(i));
        }
        t.reset_stats();
        for round in 0..10 {
            for i in 0..64 {
                assert!(t.lookup(&req(i)).hit, "round {round} vpn {i}");
            }
        }
        assert_eq!(t.stats().misses, 0);
    }

    #[test]
    fn fastpath_serves_repeated_hits_and_stays_exact() {
        let mut t = SetAssocTlb::new(TlbConfig::new(8, 2, 1));
        t.insert(&req(3), Ppn::new(30));
        assert_eq!(t.fastpath_hits(), 0);
        // First hit walks the tags and arms the memo; repeats ride it.
        assert!(t.lookup(&req(3)).hit);
        assert_eq!(t.fastpath_hits(), 0);
        for _ in 0..5 {
            let out = t.lookup(&req(3));
            assert_eq!(out, TlbOutcome::hit(Ppn::new(30), 1));
        }
        assert_eq!(t.fastpath_hits(), 5);
        // Evicting the memoized way (1 set pair, force conflict) must
        // drop silently to the slow path, never serve stale state.
        let mut small = SetAssocTlb::new(TlbConfig::new(2, 2, 1));
        small.insert(&req(0), Ppn::new(0));
        assert!(small.lookup(&req(0)).hit);
        assert!(small.lookup(&req(0)).hit); // memo armed + used
        small.insert(&req(2), Ppn::new(2));
        small.insert(&req(4), Ppn::new(4)); // vpn 0 evicted
        assert!(!small.lookup(&req(0)).hit, "stale memo must not resurrect an evicted entry");
        small.check_invariants().expect("memo stays inside its set");
    }

    #[test]
    fn invariants_hold_through_a_mixed_workload() {
        let mut t = SetAssocTlb::new(TlbConfig::new(8, 2, 1));
        for i in 0..40u64 {
            let r = req(i % 13);
            if !t.lookup(&r).hit {
                t.insert(&r, Ppn::new(i));
            }
            t.check_invariants().expect("workload keeps invariants");
        }
    }

    #[test]
    fn resident_counter_tracks_churn() {
        let mut t = SetAssocTlb::new(TlbConfig::new(4, 2, 1));
        assert_eq!(t.occupancy(), 0);
        for i in 0..4 {
            t.insert(&req(i), Ppn::new(i));
        }
        assert_eq!(t.occupancy(), 4);
        // Conflict evictions replace; occupancy must not grow past what
        // the geometry holds.
        for i in 0..32 {
            t.insert(&req(i), Ppn::new(i));
        }
        assert_eq!(t.occupancy(), 4, "2 sets x 2 ways stay full, not overfull");
        t.flush();
        assert_eq!(t.occupancy(), 0);
        t.insert(&req(7), Ppn::new(7));
        t.insert(&req(7), Ppn::new(8)); // refresh, not a new resident
        assert_eq!(t.occupancy(), 1);
    }

    #[test]
    fn corrupted_stamp_is_reported_with_dump() {
        let mut t = SetAssocTlb::new(TlbConfig::new(2, 2, 1));
        t.insert(&req(0), Ppn::new(0));
        t.insert(&req(1), Ppn::new(1));
        // Force a duplicate stamp: LRU order is no longer total.
        let s = t.meta[0].stamp;
        t.meta[1].stamp = s;
        let v = t.check_invariants().unwrap_err();
        assert!(v.detail.contains("duplicate LRU stamp"), "{}", v.detail);
        assert!(v.dump.contains("set   0"), "dump missing state:\n{}", v.dump);
    }

    #[test]
    fn corrupted_resident_counter_is_reported() {
        let mut t = SetAssocTlb::new(TlbConfig::new(2, 2, 1));
        t.insert(&req(0), Ppn::new(0));
        t.resident = 2; // bypass insert accounting
        let v = t.check_invariants().unwrap_err();
        assert!(v.detail.contains("resident counter"), "{}", v.detail);
    }

    #[test]
    fn broken_stats_identity_is_reported() {
        let mut t = SetAssocTlb::new(TlbConfig::dac23_l1());
        t.lookup(&req(0));
        t.stats.hits += 1; // bypass record()
        assert!(t.check_invariants().is_err());
    }

    #[test]
    fn patch_ppn_swaps_payload_without_touching_lru_or_stats() {
        let mut t = SetAssocTlb::new(TlbConfig::new(2, 2, 1));
        assert!(t.supports_deferred_fill());
        t.insert(&req(0), Ppn::new(100));
        t.insert(&req(1), Ppn::new(101));
        let stamps: Vec<u64> = t.meta.iter().map(|w| w.stamp).collect();
        // Patch entry 0's provisional frame; LRU stamps and stats are
        // untouched, so a later insert still evicts the same victim it
        // would have without the patch.
        assert!(t.patch_ppn(&req(0), Ppn::new(100), Ppn::new(7)));
        assert_eq!(t.peek(Vpn::new(0)), Some(Ppn::new(7)));
        assert_eq!(t.meta.iter().map(|w| w.stamp).collect::<Vec<_>>(), stamps);
        assert_eq!(t.stats().accesses(), 0);
        // Wrong old frame or absent tag: refused, nothing changes.
        assert!(!t.patch_ppn(&req(0), Ppn::new(100), Ppn::new(8)));
        assert!(!t.patch_ppn(&req(5), Ppn::new(0), Ppn::new(8)));
        assert_eq!(t.peek(Vpn::new(0)), Some(Ppn::new(7)));
    }

    #[test]
    fn working_set_beyond_capacity_thrashes() {
        let mut t = SetAssocTlb::new(TlbConfig::dac23_l1());
        // 128 sequential pages, cyclic: classic LRU thrash, hit rate 0.
        for _ in 0..4 {
            for i in 0..128u64 {
                let r = req(i);
                if !t.lookup(&r).hit {
                    t.insert(&r, Ppn::new(i));
                }
            }
        }
        assert_eq!(t.stats().hits, 0, "cyclic overcapacity scan never hits under LRU");
    }
}
