//! The baseline set-associative, VPN-indexed TLB with true-LRU
//! replacement.
//!
//! This is the organization the paper's Table III assumes for both the
//! per-SM private L1 TLB and the shared L2 TLB: the set index comes from
//! the low VPN bits, the remaining bits form the tag, and replacement is
//! LRU within a set.
//!
//! Storage is split structure-of-arrays style: the probe tags live in one
//! packed `u64` slice (scanned by `lookup` without touching the ppn/stamp
//! payload), and the payload lives in a parallel vector read only on a
//! hit or when replacement runs.

use crate::config::TlbConfig;
use crate::request::{TlbOutcome, TlbRequest, TranslationBuffer};
use crate::sanitize::InvariantViolation;
use crate::stats::{PerAsidStats, TlbStats};
use std::fmt::Write as _;
use vmem::{Asid, Ppn, Vpn};

/// Payload of one way; the probe tag is stored separately in
/// [`SetAssocTlb::tags`].
#[derive(Copy, Clone, Debug, Default)]
struct WayMeta {
    ppn: Ppn,
    /// Monotone use-stamp for LRU (larger = more recent).
    stamp: u64,
}

/// Bit position of the ASID field inside a packed probe tag.
const TAG_ASID_SHIFT: u32 = 53;

/// Packed probe tag: `(asid << 53) | (vpn << 1) | 1` for a valid way, `0`
/// for invalid. VPNs are at most 52 bits (64-bit VA minus the 12-bit
/// small-page offset) and ASIDs at most 11 bits ([`Asid::MAX_ASIDS`]), so
/// the whole tag packs losslessly in a `u64` and a single integer compare
/// covers both the page and the owning address space — a cross-ASID hit
/// is impossible by construction.
fn tag_of(asid: Asid, vpn: Vpn) -> u64 {
    debug_assert_eq!(
        vpn.raw() >> (TAG_ASID_SHIFT - 1),
        0,
        "VPN uses bits above 52; tag encoding would alias with the ASID field"
    );
    ((asid.raw() as u64) << TAG_ASID_SHIFT) | (vpn.raw() << 1) | 1
}

/// Recovers the owning ASID from a packed (valid) probe tag.
fn tag_asid(tag: u64) -> Asid {
    Asid::new((tag >> TAG_ASID_SHIFT) as u16)
}

/// Recovers the VPN from a packed (valid) probe tag.
fn tag_vpn(tag: u64) -> u64 {
    (tag & ((1u64 << TAG_ASID_SHIFT) - 1)) >> 1
}

/// A VPN-indexed, set-associative TLB with LRU replacement.
///
/// # Example
///
/// ```
/// use tlb::{SetAssocTlb, TlbConfig, TlbRequest, TranslationBuffer};
/// use vmem::{Ppn, Vpn};
///
/// let mut tlb = SetAssocTlb::new(TlbConfig::new(8, 2, 1));
/// for i in 0..8 {
///     tlb.insert(&TlbRequest::new(Vpn::new(i), 0), Ppn::new(i));
/// }
/// assert!(tlb.lookup(&TlbRequest::new(Vpn::new(3), 0)).hit);
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocTlb {
    config: TlbConfig,
    /// `sets() * associativity` packed probe tags, set-major (see
    /// [`tag_of`]).
    tags: Vec<u64>,
    /// Payload parallel to `tags`. Kept (stamps included) across flushes,
    /// matching the pre-SoA `Way` layout, so victim tie-breaking among
    /// invalid ways is unchanged.
    meta: Vec<WayMeta>,
    clock: u64,
    stats: TlbStats,
    /// Per-ASID breakdown of `stats` (evictions attributed to the
    /// victim's ASID, everything else to the requester's); sums to the
    /// aggregate exactly.
    per_asid: PerAsidStats,
    /// Count of valid ways, maintained on insert/evict/flush; equals the
    /// full-`tags` scan (debug-asserted in [`SetAssocTlb::occupancy`]).
    resident: usize,
    /// Per-ASID split of `resident`, indexed by raw ASID (victim ASIDs
    /// are recovered from the packed tag on eviction). The MASK-style
    /// token policy reads this to bound how many entries an app may hold.
    resident_by_asid: Vec<u32>,
    /// Per-set way index of the last lookup hit (`u32::MAX` = none): the
    /// exact MRU fast path. A memoized way is trusted only after its tag
    /// re-matches the probe, so a stale memo (the way was since evicted
    /// or refilled) silently falls back to the tag walk — state
    /// transitions and stats are bit-equal either way.
    memo: Vec<u32>,
    /// Lookups served via `memo` (host-side observability only).
    fastpath: u64,
    /// Fast path enabled (the differential proptest runs a memo-less
    /// twin to prove the two paths are indistinguishable).
    fastpath_on: bool,
}

impl SetAssocTlb {
    /// Creates an empty TLB with the given geometry.
    pub fn new(config: TlbConfig) -> Self {
        SetAssocTlb {
            config,
            tags: vec![0; config.entries],
            meta: vec![WayMeta::default(); config.entries],
            clock: 0,
            stats: TlbStats::default(),
            per_asid: PerAsidStats::default(),
            resident: 0,
            resident_by_asid: Vec::new(),
            memo: vec![u32::MAX; config.sets()],
            fastpath: 0,
            fastpath_on: true,
        }
    }

    /// The TLB's configuration.
    pub fn config(&self) -> &TlbConfig {
        &self.config
    }

    /// Enables or disables the MRU lookup fast path. Purely a wall-clock
    /// knob — outcomes, stats and LRU state are bit-equal either way
    /// (proven by the differential proptest in `tests/fastpath_diff.rs`).
    pub fn set_fastpath(&mut self, on: bool) {
        self.fastpath_on = on;
    }

    fn set_of(&self, vpn: Vpn) -> usize {
        // Mask in u64 before narrowing so the set index is identical on
        // 32-bit hosts.
        (vpn.raw() & (self.config.sets() as u64 - 1)) as usize
    }

    fn set_range(&self, set: usize) -> std::ops::Range<usize> {
        let a = self.config.associativity;
        set * a..(set + 1) * a
    }

    /// Number of valid entries currently resident. O(1): returns the
    /// maintained counter, cross-checked against the scan in debug
    /// builds (the sanitizer calls this every event cycle).
    pub fn occupancy(&self) -> usize {
        debug_assert_eq!(
            self.resident,
            self.tags.iter().filter(|&&t| t != 0).count(),
            "resident counter diverged from the valid-way scan"
        );
        self.resident
    }

    /// Probes for `(asid, vpn)` without updating stats or LRU state
    /// (diagnostics).
    pub fn peek(&self, asid: Asid, vpn: Vpn) -> Option<Ppn> {
        let set = self.set_of(vpn);
        let range = self.set_range(set);
        let tag = tag_of(asid, vpn);
        self.tags[range.clone()]
            .iter()
            .position(|&t| t == tag)
            .map(|i| self.meta[range.start + i].ppn)
    }

    /// Number of valid entries currently owned by `asid` (O(1)); the
    /// MASK-style L2 token policy gates fills on this count.
    pub fn resident_of(&self, asid: Asid) -> usize {
        self.resident_by_asid
            .get(asid.index())
            .map_or(0, |&c| c as usize)
    }

    fn bump_resident(&mut self, asid: Asid, delta: i32) {
        let i = asid.index();
        if i >= self.resident_by_asid.len() {
            self.resident_by_asid.resize(i + 1, 0);
        }
        let c = &mut self.resident_by_asid[i];
        // Saturate instead of panicking on the hot path: an underflow
        // desyncs the counter from the tag scan, which
        // `check_invariants` reports with a full state dump.
        *c = c.saturating_add_signed(delta);
    }
}

impl TranslationBuffer for SetAssocTlb {
    fn lookup(&mut self, req: &TlbRequest) -> TlbOutcome {
        self.clock += 1;
        let set = self.set_of(req.vpn);
        let tag = tag_of(req.asid, req.vpn);
        // Exact MRU fast path: the last way that hit in this set, trusted
        // only if its tag still matches (the tag packs the ASID, so a
        // memo armed by another app's hit never serves this one). The
        // updates below are the same statements the tag-walk hit
        // performs, so the two paths are bit-equal in every
        // architectural observable.
        if self.fastpath_on {
            let m = self.memo[set];
            if m != u32::MAX && self.tags[m as usize] == tag {
                let way = &mut self.meta[m as usize];
                way.stamp = self.clock;
                self.stats.record(true);
                self.per_asid.entry(req.asid).record(true);
                self.fastpath += 1;
                return TlbOutcome::hit(way.ppn, self.config.lookup_latency);
            }
        }
        let range = self.set_range(set);
        // Hot probe loop: compare against the contiguous tag slice only;
        // the ppn/stamp payload is touched solely on a hit.
        if let Some(i) = self.tags[range.clone()].iter().position(|&t| t == tag) {
            self.memo[set] = (range.start + i) as u32;
            let way = &mut self.meta[range.start + i];
            way.stamp = self.clock;
            self.stats.record(true);
            self.per_asid.entry(req.asid).record(true);
            return TlbOutcome::hit(way.ppn, self.config.lookup_latency);
        }
        self.stats.record(false);
        self.per_asid.entry(req.asid).record(false);
        TlbOutcome::miss(self.config.lookup_latency)
    }

    fn insert(&mut self, req: &TlbRequest, ppn: Ppn) {
        self.clock += 1;
        let set = self.set_of(req.vpn);
        let range = self.set_range(set);
        let tag = tag_of(req.asid, req.vpn);
        // Refresh in place if already present (fill races are benign).
        if let Some(i) = self.tags[range.clone()].iter().position(|&t| t == tag) {
            let way = &mut self.meta[range.start + i];
            way.ppn = ppn;
            way.stamp = self.clock;
            return;
        }
        self.stats.insertions += 1;
        self.per_asid.entry(req.asid).insertions += 1;
        // Prefer an invalid way; otherwise evict LRU.
        let victim = range
            .clone()
            .min_by_key(|&i| (self.tags[i] != 0, self.meta[i].stamp))
            .expect("associativity is non-zero"); // simlint: allow(hot-unwrap, reason = "TlbConfig validates associativity > 0 at construction")
        if self.tags[victim] != 0 {
            self.stats.evictions += 1;
            let victim_asid = tag_asid(self.tags[victim]);
            self.per_asid.entry(victim_asid).evictions += 1;
            self.bump_resident(victim_asid, -1);
        } else {
            self.resident += 1;
        }
        self.bump_resident(req.asid, 1);
        self.tags[victim] = tag;
        self.meta[victim] = WayMeta {
            ppn,
            stamp: self.clock,
        };
    }

    fn stats(&self) -> TlbStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
        self.per_asid.clear();
    }

    fn stats_by_asid(&self) -> Vec<(Asid, TlbStats)> {
        self.per_asid.non_empty()
    }

    // Victim choice keys on `(valid, stamp)` and the tag encodes only
    // the VPN, so the inserted frame never influences placement.
    fn supports_deferred_fill(&self) -> bool {
        true
    }

    fn patch_ppn(&mut self, req: &TlbRequest, old: Ppn, new: Ppn) -> bool {
        let set = self.set_of(req.vpn);
        let range = self.set_range(set);
        let tag = tag_of(req.asid, req.vpn);
        if let Some(i) = self.tags[range.clone()].iter().position(|&t| t == tag) {
            let way = &mut self.meta[range.start + i];
            if way.ppn == old {
                way.ppn = new;
                return true;
            }
        }
        false
    }

    fn probe(&self, req: &TlbRequest) -> Option<Option<Ppn>> {
        Some(self.peek(req.asid, req.vpn))
    }

    fn flush(&mut self) {
        for t in &mut self.tags {
            *t = 0;
        }
        self.resident = 0;
        self.resident_by_asid.clear();
        // The cleared tags already invalidate every memo (hygiene only).
        for m in &mut self.memo {
            *m = u32::MAX;
        }
    }

    fn fastpath_hits(&self) -> u64 {
        self.fastpath
    }

    fn capacity(&self) -> usize {
        self.config.entries
    }

    fn check_invariants(&self) -> Result<(), InvariantViolation> {
        let fail = |detail: String| {
            Err(InvariantViolation::new(
                "SetAssocTlb",
                detail,
                self.dump_state(),
            ))
        };
        if let Err(e) = self.stats.check() {
            return fail(e);
        }
        // Check the counter against the scan before anything calls
        // `occupancy()` (whose debug assert would panic, not report).
        let scanned = self.tags.iter().filter(|&&t| t != 0).count();
        if self.resident != scanned {
            return fail(format!(
                "resident counter {} != valid-way scan {scanned}",
                self.resident
            ));
        }
        if scanned > self.capacity() {
            return fail(format!(
                "occupancy {scanned} exceeds capacity {}",
                self.capacity()
            ));
        }
        // Multi-tenant accounting: the per-ASID splits must sum to the
        // aggregates exactly and the per-ASID resident counters must
        // match a tag scan keyed on the packed ASID field.
        let asid_sum = self.per_asid.sum();
        if asid_sum != self.stats {
            return fail(format!(
                "per-ASID stats sum {asid_sum:?} != aggregate {:?}",
                self.stats
            ));
        }
        let by_asid_total: u64 = self.resident_by_asid.iter().map(|&c| u64::from(c)).sum();
        if by_asid_total != scanned as u64 {
            return fail(format!(
                "per-ASID resident counters sum to {by_asid_total}, expected {scanned}"
            ));
        }
        for (i, &c) in self.resident_by_asid.iter().enumerate() {
            let owned = self
                .tags
                .iter()
                .filter(|&&t| t != 0 && tag_asid(t) == Asid::new(i as u16))
                .count();
            if owned != c as usize {
                return fail(format!(
                    "ASID {i}: resident counter {c} != tag scan {owned}"
                ));
            }
        }
        for set in 0..self.config.sets() {
            let range = self.set_range(set);
            let m = self.memo[set];
            if m != u32::MAX && !range.contains(&(m as usize)) {
                return fail(format!(
                    "set {set}: MRU memo {m} points outside the set's way range {range:?}"
                ));
            }
            for i in range.clone() {
                if self.tags[i] == 0 {
                    continue;
                }
                let w = &self.meta[i];
                if w.stamp > self.clock {
                    return fail(format!(
                        "set {set} way {}: stamp {} ahead of clock {}",
                        i - range.start,
                        w.stamp,
                        self.clock
                    ));
                }
                // Distinct stamps per set make LRU a total order: ties
                // would leave the victim choice to iteration order.
                if (range.start..i)
                    .any(|j| self.tags[j] != 0 && self.meta[j].stamp == w.stamp)
                {
                    return fail(format!(
                        "set {set}: duplicate LRU stamp {} breaks the recency total order",
                        w.stamp
                    ));
                }
                if (range.start..i).any(|j| self.tags[j] == self.tags[i]) {
                    return fail(format!(
                        "set {set}: (asid {}, VPN {:#x}) resident twice",
                        tag_asid(self.tags[i]),
                        tag_vpn(self.tags[i])
                    ));
                }
            }
        }
        Ok(())
    }

    fn dump_state(&self) -> String {
        let mut s = format!(
            "SetAssocTlb: {} entries, {}-way, clock {}, resident {}, stats {{{:?}}}\n",
            self.config.entries, self.config.associativity, self.clock, self.resident, self.stats
        );
        for set in 0..self.config.sets() {
            let range = self.set_range(set);
            if self.tags[range.clone()].iter().all(|&t| t == 0) {
                continue;
            }
            let _ = write!(s, "  set {set:3}:");
            for i in range {
                if self.tags[i] == 0 {
                    continue;
                }
                let _ = write!(
                    s,
                    " [asid={} vpn={:#x} ppn={:#x} @{}]",
                    tag_asid(self.tags[i]),
                    tag_vpn(self.tags[i]),
                    self.meta[i].ppn.raw(),
                    self.meta[i].stamp
                );
            }
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(vpn: u64) -> TlbRequest {
        TlbRequest::new(Vpn::new(vpn), 0)
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut t = SetAssocTlb::new(TlbConfig::dac23_l1());
        assert!(!t.lookup(&req(1)).hit);
        t.insert(&req(1), Ppn::new(100));
        let out = t.lookup(&req(1));
        assert!(out.hit);
        assert_eq!(out.ppn, Some(Ppn::new(100)));
        assert_eq!(out.latency, 1);
        assert_eq!(t.stats().hits, 1);
        assert_eq!(t.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 1 set, 2 ways.
        let mut t = SetAssocTlb::new(TlbConfig::new(2, 2, 1));
        t.insert(&req(0), Ppn::new(0));
        t.insert(&req(1), Ppn::new(1));
        // Touch 0 so 1 becomes LRU.
        assert!(t.lookup(&req(0)).hit);
        t.insert(&req(2), Ppn::new(2));
        assert!(t.lookup(&req(0)).hit, "recently used entry survives");
        assert!(!t.lookup(&req(1)).hit, "LRU entry evicted");
        assert!(t.lookup(&req(2)).hit);
        assert_eq!(t.stats().evictions, 1);
    }

    #[test]
    fn sets_are_independent() {
        // 4 sets x 1 way; VPNs 0..4 map to distinct sets.
        let mut t = SetAssocTlb::new(TlbConfig::new(4, 1, 1));
        for i in 0..4 {
            t.insert(&req(i), Ppn::new(i));
        }
        for i in 0..4 {
            assert!(t.lookup(&req(i)).hit);
        }
        // VPN 4 conflicts with VPN 0 only.
        t.insert(&req(4), Ppn::new(4));
        assert!(!t.lookup(&req(0)).hit);
        assert!(t.lookup(&req(1)).hit);
    }

    #[test]
    fn reinsert_updates_ppn_without_eviction() {
        let mut t = SetAssocTlb::new(TlbConfig::new(2, 2, 1));
        t.insert(&req(0), Ppn::new(1));
        t.insert(&req(0), Ppn::new(2));
        assert_eq!(t.lookup(&req(0)).ppn, Some(Ppn::new(2)));
        assert_eq!(t.stats().evictions, 0);
        assert_eq!(t.occupancy(), 1);
    }

    #[test]
    fn flush_invalidates_everything() {
        let mut t = SetAssocTlb::new(TlbConfig::dac23_l1());
        for i in 0..64 {
            t.insert(&req(i), Ppn::new(i));
        }
        assert_eq!(t.occupancy(), 64);
        t.flush();
        assert_eq!(t.occupancy(), 0);
        assert!(!t.lookup(&req(0)).hit);
    }

    #[test]
    fn peek_does_not_perturb_state() {
        let mut t = SetAssocTlb::new(TlbConfig::dac23_l1());
        t.insert(&req(9), Ppn::new(3));
        assert_eq!(t.peek(Asid::default(), Vpn::new(9)), Some(Ppn::new(3)));
        assert_eq!(t.peek(Asid::default(), Vpn::new(10)), None);
        assert_eq!(t.stats().accesses(), 0);
    }

    #[test]
    fn probe_matches_peek_and_does_not_perturb() {
        let mut t = SetAssocTlb::new(TlbConfig::dac23_l1());
        t.insert(&req(9), Ppn::new(3));
        assert_eq!(t.probe(&req(9)), Some(Some(Ppn::new(3))));
        assert_eq!(t.probe(&req(10)), Some(None));
        assert_eq!(t.stats().accesses(), 0);
    }

    #[test]
    fn capacity_matches_config() {
        let t = SetAssocTlb::new(TlbConfig::dac23_l2());
        assert_eq!(t.capacity(), 512);
    }

    #[test]
    fn working_set_within_capacity_never_misses_after_warmup() {
        let mut t = SetAssocTlb::new(TlbConfig::dac23_l1());
        // 64 sequential pages fill the TLB exactly (4 per set).
        for i in 0..64 {
            t.insert(&req(i), Ppn::new(i));
        }
        t.reset_stats();
        for round in 0..10 {
            for i in 0..64 {
                assert!(t.lookup(&req(i)).hit, "round {round} vpn {i}");
            }
        }
        assert_eq!(t.stats().misses, 0);
    }

    #[test]
    fn fastpath_serves_repeated_hits_and_stays_exact() {
        let mut t = SetAssocTlb::new(TlbConfig::new(8, 2, 1));
        t.insert(&req(3), Ppn::new(30));
        assert_eq!(t.fastpath_hits(), 0);
        // First hit walks the tags and arms the memo; repeats ride it.
        assert!(t.lookup(&req(3)).hit);
        assert_eq!(t.fastpath_hits(), 0);
        for _ in 0..5 {
            let out = t.lookup(&req(3));
            assert_eq!(out, TlbOutcome::hit(Ppn::new(30), 1));
        }
        assert_eq!(t.fastpath_hits(), 5);
        // Evicting the memoized way (1 set pair, force conflict) must
        // drop silently to the slow path, never serve stale state.
        let mut small = SetAssocTlb::new(TlbConfig::new(2, 2, 1));
        small.insert(&req(0), Ppn::new(0));
        assert!(small.lookup(&req(0)).hit);
        assert!(small.lookup(&req(0)).hit); // memo armed + used
        small.insert(&req(2), Ppn::new(2));
        small.insert(&req(4), Ppn::new(4)); // vpn 0 evicted
        assert!(!small.lookup(&req(0)).hit, "stale memo must not resurrect an evicted entry");
        small.check_invariants().expect("memo stays inside its set");
    }

    #[test]
    fn invariants_hold_through_a_mixed_workload() {
        let mut t = SetAssocTlb::new(TlbConfig::new(8, 2, 1));
        for i in 0..40u64 {
            let r = req(i % 13);
            if !t.lookup(&r).hit {
                t.insert(&r, Ppn::new(i));
            }
            t.check_invariants().expect("workload keeps invariants");
        }
    }

    #[test]
    fn resident_counter_tracks_churn() {
        let mut t = SetAssocTlb::new(TlbConfig::new(4, 2, 1));
        assert_eq!(t.occupancy(), 0);
        for i in 0..4 {
            t.insert(&req(i), Ppn::new(i));
        }
        assert_eq!(t.occupancy(), 4);
        // Conflict evictions replace; occupancy must not grow past what
        // the geometry holds.
        for i in 0..32 {
            t.insert(&req(i), Ppn::new(i));
        }
        assert_eq!(t.occupancy(), 4, "2 sets x 2 ways stay full, not overfull");
        t.flush();
        assert_eq!(t.occupancy(), 0);
        t.insert(&req(7), Ppn::new(7));
        t.insert(&req(7), Ppn::new(8)); // refresh, not a new resident
        assert_eq!(t.occupancy(), 1);
    }

    #[test]
    fn corrupted_stamp_is_reported_with_dump() {
        let mut t = SetAssocTlb::new(TlbConfig::new(2, 2, 1));
        t.insert(&req(0), Ppn::new(0));
        t.insert(&req(1), Ppn::new(1));
        // Force a duplicate stamp: LRU order is no longer total.
        let s = t.meta[0].stamp;
        t.meta[1].stamp = s;
        let v = t.check_invariants().unwrap_err();
        assert!(v.detail.contains("duplicate LRU stamp"), "{}", v.detail);
        assert!(v.dump.contains("set   0"), "dump missing state:\n{}", v.dump);
    }

    #[test]
    fn corrupted_resident_counter_is_reported() {
        let mut t = SetAssocTlb::new(TlbConfig::new(2, 2, 1));
        t.insert(&req(0), Ppn::new(0));
        t.resident = 2; // bypass insert accounting
        let v = t.check_invariants().unwrap_err();
        assert!(v.detail.contains("resident counter"), "{}", v.detail);
    }

    #[test]
    fn broken_stats_identity_is_reported() {
        let mut t = SetAssocTlb::new(TlbConfig::dac23_l1());
        t.lookup(&req(0));
        t.stats.hits += 1; // bypass record()
        assert!(t.check_invariants().is_err());
    }

    #[test]
    fn patch_ppn_swaps_payload_without_touching_lru_or_stats() {
        let mut t = SetAssocTlb::new(TlbConfig::new(2, 2, 1));
        assert!(t.supports_deferred_fill());
        t.insert(&req(0), Ppn::new(100));
        t.insert(&req(1), Ppn::new(101));
        let stamps: Vec<u64> = t.meta.iter().map(|w| w.stamp).collect();
        // Patch entry 0's provisional frame; LRU stamps and stats are
        // untouched, so a later insert still evicts the same victim it
        // would have without the patch.
        assert!(t.patch_ppn(&req(0), Ppn::new(100), Ppn::new(7)));
        assert_eq!(t.peek(Asid::default(), Vpn::new(0)), Some(Ppn::new(7)));
        assert_eq!(t.meta.iter().map(|w| w.stamp).collect::<Vec<_>>(), stamps);
        assert_eq!(t.stats().accesses(), 0);
        // Wrong old frame or absent tag: refused, nothing changes.
        assert!(!t.patch_ppn(&req(0), Ppn::new(100), Ppn::new(8)));
        assert!(!t.patch_ppn(&req(5), Ppn::new(0), Ppn::new(8)));
        assert_eq!(t.peek(Asid::default(), Vpn::new(0)), Some(Ppn::new(7)));
    }

    fn areq(asid: u16, vpn: u64) -> TlbRequest {
        TlbRequest::new(Vpn::new(vpn), 0).with_asid(Asid::new(asid))
    }

    #[test]
    fn same_vpn_different_asid_never_hits() {
        let mut t = SetAssocTlb::new(TlbConfig::dac23_l1());
        t.insert(&areq(1, 9), Ppn::new(100));
        assert!(!t.lookup(&areq(2, 9)).hit, "cross-ASID lookup must miss");
        assert!(t.lookup(&areq(1, 9)).hit);
        // Both apps can hold the same VPN with different frames.
        t.insert(&areq(2, 9), Ppn::new(200));
        assert_eq!(t.lookup(&areq(1, 9)).ppn, Some(Ppn::new(100)));
        assert_eq!(t.lookup(&areq(2, 9)).ppn, Some(Ppn::new(200)));
        t.check_invariants().expect("mixed-ASID state is consistent");
    }

    #[test]
    fn fastpath_memo_respects_asid() {
        let mut t = SetAssocTlb::new(TlbConfig::new(8, 2, 1));
        t.insert(&areq(1, 3), Ppn::new(30));
        // Arm the memo with app 1's hit, then probe the same set/VPN as
        // app 2: the packed-tag compare must reject the memo and miss.
        assert!(t.lookup(&areq(1, 3)).hit);
        assert!(t.lookup(&areq(1, 3)).hit);
        assert_eq!(t.fastpath_hits(), 1);
        assert!(!t.lookup(&areq(2, 3)).hit);
        assert_eq!(t.fastpath_hits(), 1, "cross-ASID probe must not ride the memo");
    }

    #[test]
    fn per_asid_stats_and_residency_sum_to_aggregate() {
        let mut t = SetAssocTlb::new(TlbConfig::new(4, 2, 1));
        for i in 0..12u64 {
            let r = areq((i % 3) as u16, i % 5);
            if !t.lookup(&r).hit {
                t.insert(&r, Ppn::new(1000 + i));
            }
        }
        let by_asid = t.stats_by_asid();
        let sum = by_asid
            .iter()
            .fold(TlbStats::default(), |a, (_, s)| a + *s);
        assert_eq!(sum, t.stats());
        let resident_sum: usize = (0..3).map(|a| t.resident_of(Asid::new(a))).sum();
        assert_eq!(resident_sum, t.occupancy());
        t.check_invariants().expect("per-ASID accounting is consistent");
    }

    #[test]
    fn eviction_attributed_to_victim_asid() {
        // 1 set x 2 ways: app 2's insert evicts app 1's LRU entry.
        let mut t = SetAssocTlb::new(TlbConfig::new(2, 2, 1));
        t.insert(&areq(1, 0), Ppn::new(0));
        t.insert(&areq(1, 1), Ppn::new(1));
        t.insert(&areq(2, 2), Ppn::new(2));
        assert_eq!(t.resident_of(Asid::new(1)), 1);
        assert_eq!(t.resident_of(Asid::new(2)), 1);
        let by: std::collections::HashMap<_, _> = t.stats_by_asid().into_iter().collect();
        assert_eq!(by[&Asid::new(1)].evictions, 1, "victim's ASID owns the eviction");
        assert_eq!(by[&Asid::new(2)].evictions, 0);
        assert_eq!(by[&Asid::new(2)].insertions, 1);
    }

    #[test]
    fn corrupted_per_asid_counter_is_reported() {
        let mut t = SetAssocTlb::new(TlbConfig::new(2, 2, 1));
        t.insert(&areq(1, 0), Ppn::new(0));
        t.resident_by_asid[1] = 9; // bypass insert accounting
        let v = t.check_invariants().unwrap_err();
        assert!(v.detail.contains("resident counter"), "{}", v.detail);
    }

    #[test]
    fn working_set_beyond_capacity_thrashes() {
        let mut t = SetAssocTlb::new(TlbConfig::dac23_l1());
        // 128 sequential pages, cyclic: classic LRU thrash, hit rate 0.
        for _ in 0..4 {
            for i in 0..128u64 {
                let r = req(i);
                if !t.lookup(&r).hit {
                    t.insert(&r, Ppn::new(i));
                }
            }
        }
        assert_eq!(t.stats().hits, 0, "cyclic overcapacity scan never hits under LRU");
    }
}
