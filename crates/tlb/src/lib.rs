//! # tlb — Translation Lookaside Buffer models
//!
//! TLB structures for the DAC'23 reproduction of *Orchestrated Scheduling
//! and Partitioning for Improved Address Translation in GPUs*:
//!
//! * [`TranslationBuffer`] — the interface every L1 TLB organization
//!   implements, so the GPU simulator can swap the baseline VPN-indexed
//!   TLB for the paper's TB-id-partitioned design (which lives in the
//!   `orchestrated-tlb` crate).
//! * [`SetAssocTlb`] — the baseline set-associative, VPN-indexed, LRU TLB
//!   used for both the per-SM private L1 (64 entries, 4-way, 1-cycle) and
//!   the shared L2 (512 entries, 16-way, 10-cycle) in Table III.
//! * [`CompressedTlb`] — a model of the PACT'20 TLB-compression comparator
//!   used in the paper's Figure 12: contiguous translations coalesce into
//!   one entry at the cost of (de)compression latency on the critical path.
//! * [`SubEntryTlb`] — a sub-entry-sharing multi-tenant organization for
//!   the shared L2: ways are tagged by VPN alone and hold per-ASID
//!   sub-entries, so co-running apps that map the same VPNs share tags
//!   without ever seeing each other's frames.
//!
//! Every organization tags its entries with the requesting [`vmem::Asid`]
//! and includes it in the tag compare, so concurrent address spaces are
//! isolated by construction.
//!
//! # Example
//!
//! ```
//! use tlb::{SetAssocTlb, TlbConfig, TlbRequest, TranslationBuffer};
//! use vmem::{Ppn, Vpn};
//!
//! let mut l1 = SetAssocTlb::new(TlbConfig::dac23_l1());
//! let req = TlbRequest::new(Vpn::new(0x42), 0);
//! assert!(!l1.lookup(&req).hit); // cold miss
//! l1.insert(&req, Ppn::new(7));
//! let out = l1.lookup(&req);
//! assert!(out.hit);
//! assert_eq!(out.ppn, Some(Ppn::new(7)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compressed;
mod config;
mod request;
mod sanitize;
mod set_assoc;
mod stats;
mod sub_entry;

pub use compressed::{CompressedTlb, CompressionConfig};
pub use config::TlbConfig;
pub use request::{TlbOutcome, TlbRequest, TranslationBuffer};
pub use sanitize::InvariantViolation;
pub use set_assoc::SetAssocTlb;
pub use stats::{PerAsidStats, TlbStats};
pub use sub_entry::SubEntryTlb;
