//! Runtime invariant checking shared by all TLB organizations.
//!
//! Every [`TranslationBuffer`](crate::TranslationBuffer) can describe its
//! internal-consistency rules via `check_invariants`; the simulator's
//! sanitizer (see `gpu-sim`) calls it after TLB operations and engine
//! cycles, and panics with the violation — including a full state dump —
//! the first time one fires. Keeping the violation type here (rather than
//! in `gpu-sim`) lets the TLB crates report rich diagnostics without a
//! dependency cycle.

use std::fmt;

/// A broken internal invariant, carrying enough context to debug it.
///
/// # Example
///
/// ```
/// use tlb::InvariantViolation;
///
/// let v = InvariantViolation::new("SetAssocTlb", "stamp exceeds clock", "clock=3");
/// assert!(v.to_string().contains("stamp exceeds clock"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// Which component detected the violation (e.g. `PartitionedTlb`).
    pub context: String,
    /// Which invariant broke, with the offending values.
    pub detail: String,
    /// Full state dump of the component at the moment of detection.
    pub dump: String,
}

impl InvariantViolation {
    /// Creates a violation record.
    pub fn new(
        context: impl Into<String>,
        detail: impl Into<String>,
        dump: impl Into<String>,
    ) -> Self {
        InvariantViolation {
            context: context.into(),
            detail: detail.into(),
            dump: dump.into(),
        }
    }

    /// Returns a copy with `context` prefixed by `outer` (used by the
    /// engine to tag which SM's TLB failed).
    pub fn in_context(mut self, outer: &str) -> Self {
        self.context = format!("{outer}: {}", self.context);
        self
    }
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "invariant violated in {}: {}", self.context, self.detail)?;
        writeln!(f, "--- state dump ---")?;
        f.write_str(&self.dump)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context_detail_and_dump() {
        let v = InvariantViolation::new("T", "bad stamp", "set 0: ...");
        let s = v.to_string();
        assert!(s.contains("invariant violated in T"));
        assert!(s.contains("bad stamp"));
        assert!(s.contains("state dump"));
        assert!(s.contains("set 0"));
    }

    #[test]
    fn in_context_prefixes() {
        let v = InvariantViolation::new("T", "d", "").in_context("sm3 l1-tlb");
        assert_eq!(v.context, "sm3 l1-tlb: T");
    }
}
