//! The request/outcome types and the [`TranslationBuffer`] trait that all
//! L1 TLB organizations implement.

use crate::sanitize::InvariantViolation;
use crate::stats::TlbStats;
use vmem::{Asid, PageSize, Ppn, Vpn};

/// A translation request presented to a TLB.
///
/// In addition to the virtual page, the request carries the hardware TB
/// slot (the paper's `TB_id`) of the requesting thread block: the baseline
/// TLB ignores it, while the paper's partitioned TLB uses it as the set
/// index. Co-running applications are distinguished by the request's
/// [`Asid`]: every organization includes the ASID in its tag compare, so
/// one app can never hit on another app's translations.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct TlbRequest {
    /// Virtual page number being translated.
    pub vpn: Vpn,
    /// Hardware TB slot of the requesting thread block on this SM
    /// (0..max concurrent TBs, reused as TBs finish — the paper's `TB_id`).
    pub tb_slot: u8,
    /// Address space (application) issuing the request.
    pub asid: Asid,
    /// Page size of the mapping (affects VPN width, not indexing).
    pub page_size: PageSize,
}

impl TlbRequest {
    /// Creates a 4 KiB-page request in the default address space (ASID 0).
    pub fn new(vpn: Vpn, tb_slot: u8) -> Self {
        TlbRequest {
            vpn,
            tb_slot,
            asid: Asid::default(),
            page_size: PageSize::Small,
        }
    }

    /// Creates a request with an explicit page size (ASID 0).
    pub fn with_page_size(vpn: Vpn, tb_slot: u8, page_size: PageSize) -> Self {
        TlbRequest {
            vpn,
            tb_slot,
            asid: Asid::default(),
            page_size,
        }
    }

    /// Returns the request re-targeted at `asid`'s address space.
    #[must_use]
    pub fn with_asid(mut self, asid: Asid) -> Self {
        self.asid = asid;
        self
    }
}

/// The result of a TLB lookup.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TlbOutcome {
    /// Whether the translation was present.
    pub hit: bool,
    /// The translated frame number on a hit.
    pub ppn: Option<Ppn>,
    /// Cycles the lookup occupied the TLB, including any multi-set probe
    /// or decompression overhead the organization incurs.
    pub latency: u64,
}

impl TlbOutcome {
    /// A hit returning `ppn` after `latency` cycles.
    pub fn hit(ppn: Ppn, latency: u64) -> Self {
        TlbOutcome {
            hit: true,
            ppn: Some(ppn),
            latency,
        }
    }

    /// A miss detected after `latency` cycles.
    pub fn miss(latency: u64) -> Self {
        TlbOutcome {
            hit: false,
            ppn: None,
            latency,
        }
    }
}

/// Interface implemented by every L1 TLB organization.
///
/// The GPU simulator is generic over this trait so the baseline
/// VPN-indexed TLB, the enlarged Figure 2 TLB, the PACT'20 compressed TLB
/// and the paper's TB-id-partitioned TLB (in `orchestrated-tlb`) are
/// interchangeable.
///
/// `Send` is a supertrait: the engine's phase-A workers step each SM —
/// including its private L1 TLB — on a worker thread (every TLB here is
/// plain owned data, so this costs implementors nothing).
pub trait TranslationBuffer: Send {
    /// Probes the TLB; records a hit or miss in the stats.
    fn lookup(&mut self, req: &TlbRequest) -> TlbOutcome;

    /// Installs a translation (called on fill after an L2/walk completes).
    fn insert(&mut self, req: &TlbRequest, ppn: Ppn);

    /// Cumulative statistics.
    fn stats(&self) -> TlbStats;

    /// Resets statistics (keeps contents).
    fn reset_stats(&mut self);

    /// Per-address-space breakdown of the cumulative statistics, as
    /// `(asid, stats)` pairs for every ASID that issued traffic. The
    /// per-ASID entries always sum to [`TranslationBuffer::stats`]
    /// (evictions are attributed to the *victim's* ASID, everything else
    /// to the requester's). The default covers single-tenant
    /// organizations: all traffic under ASID 0.
    fn stats_by_asid(&self) -> Vec<(Asid, TlbStats)> {
        vec![(Asid::default(), self.stats())]
    }

    /// Invalidates all entries.
    fn flush(&mut self);

    /// Total entry capacity.
    fn capacity(&self) -> usize;

    /// Notification that the TB occupying `tb_slot` (running on behalf of
    /// address space `asid`) finished and released its resources. The
    /// baseline ignores this; the partitioned TLB uses it to reset sharing
    /// flags — keyed by `(asid, tb_slot)` so one app's completion never
    /// clears a licence another app's spill established (the entries
    /// themselves are *kept* — the paper explicitly avoids flushing on TB
    /// completion).
    fn on_tb_finish(&mut self, asid: Asid, tb_slot: u8) {
        let _ = (asid, tb_slot);
    }

    /// Notification of how many TBs can run concurrently on this SM
    /// (determined at kernel launch). The partitioned TLB uses this to
    /// size its per-TB set groups.
    fn set_concurrent_tbs(&mut self, tbs: u8) {
        let _ = tbs;
    }

    /// Probes for `req` without perturbing any state (no stats, no LRU
    /// update) — the diagnostics window the differential harness in
    /// `sim-oracle` uses to compare resident contents (and thereby
    /// eviction-victim choices) against its reference models.
    ///
    /// Returns `None` when the organization does not support
    /// non-perturbing probes (content comparison is then skipped),
    /// `Some(None)` when the translation is absent, and `Some(Some(ppn))`
    /// when it is resident.
    fn probe(&self, req: &TlbRequest) -> Option<Option<Ppn>> {
        let _ = req;
        None
    }

    /// Whether [`TranslationBuffer::insert`] chooses its victim and
    /// placement independently of the inserted `ppn` value. When true,
    /// the engine's sharded phase-B drain may fill this TLB with a
    /// provisional sentinel frame the moment the miss is known and
    /// [`TranslationBuffer::patch_ppn`] the real frame in after the walk
    /// resolves, without changing which entry was evicted. Organizations
    /// whose placement inspects the payload (e.g. the compressed TLB's
    /// base-delta predicate) must leave this `false` (the default),
    /// which keeps them on the serial drain.
    fn supports_deferred_fill(&self) -> bool {
        false
    }

    /// Replaces the stored frame of the entry tagged by `req` whose
    /// current frame is exactly `old` with `new`, touching no replacement
    /// or statistics state. Returns `false` when no such entry exists
    /// (e.g. the provisional entry was evicted before the walk
    /// resolved), which is not an error. Only meaningful when
    /// [`TranslationBuffer::supports_deferred_fill`] is true.
    fn patch_ppn(&mut self, req: &TlbRequest, old: Ppn, new: Ppn) -> bool {
        let _ = (req, old, new);
        false
    }

    /// Lookups served by the organization's exact MRU fast path (a
    /// per-set last-hit-way memo that skips the tag walk when it still
    /// matches). The fast path is byte-identical to the slow path in
    /// every architectural observable — outcome, [`TlbStats`], LRU
    /// state — so this counter is pure host-side observability and is
    /// deliberately *not* part of [`TlbStats`]. Organizations without a
    /// fast path report 0.
    fn fastpath_hits(&self) -> u64 {
        0
    }

    /// Validates the organization's internal invariants (LRU recency is a
    /// total order per set, stats identities hold, occupancy ≤ capacity,
    /// entries live where their owner may place them, ...). Called by the
    /// simulator's sanitizer after TLB operations; the default assumes
    /// nothing can go wrong.
    fn check_invariants(&self) -> Result<(), InvariantViolation> {
        Ok(())
    }

    /// Human-readable dump of the full internal state, embedded in
    /// [`InvariantViolation`] reports.
    fn dump_state(&self) -> String {
        String::from("<no state dump implemented for this TLB organization>")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_constructors() {
        let h = TlbOutcome::hit(Ppn::new(1), 2);
        assert!(h.hit);
        assert_eq!(h.ppn, Some(Ppn::new(1)));
        assert_eq!(h.latency, 2);
        let m = TlbOutcome::miss(1);
        assert!(!m.hit);
        assert_eq!(m.ppn, None);
    }

    #[test]
    fn request_defaults_to_small_pages() {
        let r = TlbRequest::new(Vpn::new(5), 3);
        assert_eq!(r.page_size, PageSize::Small);
        assert_eq!(r.tb_slot, 3);
        let r2 = TlbRequest::with_page_size(Vpn::new(5), 3, PageSize::Large);
        assert_eq!(r2.page_size, PageSize::Large);
    }

    #[test]
    fn request_defaults_to_asid_zero_and_retargets() {
        let r = TlbRequest::new(Vpn::new(5), 3);
        assert_eq!(r.asid, Asid::default());
        let r2 = r.with_asid(Asid::new(7));
        assert_eq!(r2.asid, Asid::new(7));
        assert_eq!(r2.vpn, r.vpn);
        assert_eq!(r2.tb_slot, r.tb_slot);
    }
}
