//! A model of the PACT'20 TLB-compression comparator (Tang et al.,
//! *Enhancing Address Translations in Throughput Processors via
//! Compression*), used by the paper's Figure 12 study.
//!
//! The compression scheme coalesces translations for runs of virtually
//! *and* physically contiguous pages into one TLB entry: an entry stores a
//! compression-aligned base VPN, the PPN the base page would map to, and a
//! bitmask of which pages in the run are valid. A page hits if its run is
//! resident, its bit is set, and its PPN is the base PPN plus its offset in
//! the run — i.e. only contiguous/stride-friendly access patterns actually
//! compress, which is exactly the property the DAC'23 paper contrasts
//! against. Decompression adds latency on the hit path, also per the
//! paper's discussion.

use crate::config::TlbConfig;
use crate::request::{TlbOutcome, TlbRequest, TranslationBuffer};
use crate::sanitize::InvariantViolation;
use crate::stats::{PerAsidStats, TlbStats};
use std::fmt::Write as _;
use vmem::{Asid, Ppn, Vpn};

/// Parameters of the compression scheme.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct CompressionConfig {
    /// Pages per compressed entry (a power of two; PACT'20 uses runs of 8
    /// to 16 4 KiB pages per entry).
    pub degree: usize,
    /// Extra cycles added to every hit for decompression (critical path).
    pub decompress_latency: u64,
}

impl CompressionConfig {
    /// The configuration used for the Figure 12 comparison: 8 pages per
    /// entry, 1 extra cycle to decompress.
    pub fn pact20() -> Self {
        CompressionConfig {
            degree: 8,
            decompress_latency: 1,
        }
    }
}

impl Default for CompressionConfig {
    fn default() -> Self {
        Self::pact20()
    }
}

#[derive(Copy, Clone, Debug, Default)]
struct CompressedWay {
    valid: bool,
    /// Address space owning the run; part of the match condition, so a
    /// run never serves (or compresses) another app's translations.
    asid: Asid,
    /// Base VPN of the run, aligned to `degree`.
    base_vpn: Vpn,
    /// PPN the base page of the run maps to (pages in the run map to
    /// `base_ppn + offset`).
    base_ppn: Ppn,
    /// Which pages of the run are resident.
    mask: u32,
    /// When `true`, the entry holds exactly one translation and `base_ppn`
    /// is that page's PPN verbatim (used when the PPN cannot be expressed
    /// as `base + offset`, e.g. it would underflow).
    literal: bool,
    stamp: u64,
}

/// A set-associative TLB whose entries each cover a run of contiguous
/// translations (PACT'20 compression model).
///
/// # Example
///
/// ```
/// use tlb::{CompressedTlb, CompressionConfig, TlbConfig, TlbRequest, TranslationBuffer};
/// use vmem::{Ppn, Vpn};
///
/// let mut t = CompressedTlb::new(TlbConfig::dac23_l1(), CompressionConfig::pact20());
/// // Eight contiguous translations compress into a single entry...
/// for i in 0..8 {
///     t.insert(&TlbRequest::new(Vpn::new(i), 0), Ppn::new(100 + i));
/// }
/// assert_eq!(t.occupied_entries(), 1);
/// // ...and all of them hit.
/// assert!(t.lookup(&TlbRequest::new(Vpn::new(5), 0)).hit);
/// ```
#[derive(Debug, Clone)]
pub struct CompressedTlb {
    config: TlbConfig,
    compression: CompressionConfig,
    ways: Vec<CompressedWay>,
    clock: u64,
    stats: TlbStats,
    /// Per-ASID breakdown of `stats` (evictions attributed to the
    /// victim's ASID); sums to the aggregate exactly.
    per_asid: PerAsidStats,
    /// Translations stored that share an entry with at least one other
    /// translation (a measure of achieved compression).
    compressed_fills: u64,
    /// Count of valid entries, maintained on insert/evict/flush; equals
    /// the full-`ways` scan (debug-asserted in
    /// [`CompressedTlb::occupied_entries`]).
    occupied: usize,
    /// Count of resident page translations (set mask bits over valid
    /// entries), maintained alongside `occupied`.
    resident: u32,
    /// Per-set way index of the last lookup hit (`u32::MAX` = none).
    /// Trusted only after re-checking the full match condition (valid +
    /// base VPN + run bit), so stale memos fall back to the set walk and
    /// the fast path stays bit-equal to it.
    memo: Vec<u32>,
    /// Lookups served via `memo` (host-side observability only).
    fastpath: u64,
    /// Fast path enabled (differential proptest runs a memo-less twin).
    fastpath_on: bool,
}

impl CompressedTlb {
    /// Creates an empty compressed TLB.
    ///
    /// # Panics
    ///
    /// Panics if the compression degree is not a power of two.
    pub fn new(config: TlbConfig, compression: CompressionConfig) -> Self {
        assert!(
            compression.degree.is_power_of_two() && compression.degree > 0,
            "compression degree must be a power of two"
        );
        CompressedTlb {
            config,
            compression,
            ways: vec![CompressedWay::default(); config.entries],
            clock: 0,
            stats: TlbStats::default(),
            per_asid: PerAsidStats::default(),
            compressed_fills: 0,
            occupied: 0,
            resident: 0,
            memo: vec![u32::MAX; config.sets()],
            fastpath: 0,
            fastpath_on: true,
        }
    }

    /// The geometry configuration.
    pub fn config(&self) -> &TlbConfig {
        &self.config
    }

    /// Enables or disables the MRU lookup fast path. Purely a wall-clock
    /// knob — outcomes, stats and LRU state are bit-equal either way
    /// (proven by the differential proptest in `tests/fastpath_diff.rs`).
    pub fn set_fastpath(&mut self, on: bool) {
        self.fastpath_on = on;
    }

    /// The compression parameters.
    pub fn compression(&self) -> &CompressionConfig {
        &self.compression
    }

    fn run_base(&self, vpn: Vpn) -> Vpn {
        Vpn::new(vpn.raw() & !(self.compression.degree as u64 - 1))
    }

    fn run_offset(&self, vpn: Vpn) -> u32 {
        (vpn.raw() & (self.compression.degree as u64 - 1)) as u32
    }

    /// Sets are indexed by the run number so a run always lands in one set.
    fn set_of(&self, vpn: Vpn) -> usize {
        // simlint: allow(lossy-cast, reason = "the power-of-two set mask commutes with the narrowing: masking after truncation keeps the same low bits as masking in u64 first")
        ((vpn.raw() / self.compression.degree as u64) as usize) & (self.config.sets() - 1)
    }

    fn set_range(&self, set: usize) -> std::ops::Range<usize> {
        let a = self.config.associativity;
        set * a..(set + 1) * a
    }

    /// Number of valid (possibly multi-page) entries resident. O(1): the
    /// maintained counter, cross-checked against the scan in debug
    /// builds (the sanitizer calls this every event cycle).
    pub fn occupied_entries(&self) -> usize {
        debug_assert_eq!(
            self.occupied,
            self.ways.iter().filter(|w| w.valid).count(),
            "occupied counter diverged from the valid-entry scan"
        );
        self.occupied
    }

    /// Number of page translations resident across all entries. O(1),
    /// cross-checked like [`CompressedTlb::occupied_entries`].
    pub fn resident_translations(&self) -> u32 {
        debug_assert_eq!(
            self.resident,
            self.ways
                .iter()
                .filter(|w| w.valid)
                .map(|w| w.mask.count_ones())
                .sum::<u32>(),
            "resident counter diverged from the mask-population scan"
        );
        self.resident
    }

    /// Fills that compressed into an existing entry (shared an entry).
    pub fn compressed_fills(&self) -> u64 {
        self.compressed_fills
    }
}

impl TranslationBuffer for CompressedTlb {
    fn lookup(&mut self, req: &TlbRequest) -> TlbOutcome {
        self.clock += 1;
        let base = self.run_base(req.vpn);
        let off = self.run_offset(req.vpn);
        let set = self.set_of(req.vpn);
        let clock = self.clock;
        // Exact MRU fast path: re-validate the memoized way against the
        // full match condition; the hit bookkeeping below mirrors the
        // set-walk hit statement for statement. Insert's coherence scan
        // guarantees at most one valid way holds a given (base, offset),
        // so a revalidated memo and the walk find the same way.
        if self.fastpath_on {
            let m = self.memo[set];
            if m != u32::MAX {
                let way = &mut self.ways[m as usize];
                if way.valid
                    && way.asid == req.asid
                    && way.base_vpn == base
                    && way.mask & (1 << off) != 0
                {
                    way.stamp = clock;
                    self.stats.record(true);
                    self.per_asid.entry(req.asid).record(true);
                    self.fastpath += 1;
                    let ppn = if way.literal {
                        way.base_ppn
                    } else {
                        Ppn::new(way.base_ppn.raw() + off as u64)
                    };
                    let latency = self.config.lookup_latency
                        + if way.mask.count_ones() > 1 {
                            self.compression.decompress_latency
                        } else {
                            0
                        };
                    return TlbOutcome::hit(ppn, latency);
                }
            }
        }
        let range = self.set_range(set);
        for (i, way) in self.ways[range.clone()].iter_mut().enumerate() {
            if way.valid
                && way.asid == req.asid
                && way.base_vpn == base
                && way.mask & (1 << off) != 0
            {
                self.memo[set] = (range.start + i) as u32;
                way.stamp = clock;
                self.stats.record(true);
                self.per_asid.entry(req.asid).record(true);
                let ppn = if way.literal {
                    way.base_ppn
                } else {
                    Ppn::new(way.base_ppn.raw() + off as u64)
                };
                let latency = self.config.lookup_latency
                    + if way.mask.count_ones() > 1 {
                        self.compression.decompress_latency
                    } else {
                        0
                    };
                return TlbOutcome::hit(ppn, latency);
            }
        }
        self.stats.record(false);
        self.per_asid.entry(req.asid).record(false);
        TlbOutcome::miss(self.config.lookup_latency)
    }

    fn insert(&mut self, req: &TlbRequest, ppn: Ppn) {
        self.clock += 1;
        let base = self.run_base(req.vpn);
        let off = self.run_offset(req.vpn);
        // PPN the base page must map to for this fill to compress.
        let Some(expected_base_ppn) = ppn.raw().checked_sub(off as u64) else {
            // Physically impossible to express as a contiguous run member;
            // store as a singleton run below by falling through with a
            // degenerate base equal to the page itself.
            return self.insert_singleton(req.asid, req.vpn, ppn);
        };
        let set = self.set_of(req.vpn);
        let range = self.set_range(set);
        let clock = self.clock;
        // Invalidate any stale translation for this page held under a
        // different PPN (coherence on remap): clear its run bit and drop
        // the entry entirely when it empties. Scoped to the requesting
        // ASID — another app's identical VPN is a distinct translation.
        for way in &mut self.ways[range.clone()] {
            if way.valid
                && way.asid == req.asid
                && way.base_vpn == base
                && way.mask & (1 << off) != 0
                && (way.literal || way.base_ppn != Ppn::new(expected_base_ppn))
            {
                way.mask &= !(1 << off);
                self.resident -= 1;
                if way.mask == 0 {
                    way.valid = false;
                    self.occupied -= 1;
                }
            }
        }
        // Try to compress into an existing compatible entry (same app
        // only: runs never span address spaces).
        if let Some(way) = self.ways[range.clone()].iter_mut().find(|w| {
            w.valid
                && !w.literal
                && w.asid == req.asid
                && w.base_vpn == base
                && w.base_ppn == Ppn::new(expected_base_ppn)
        }) {
            if way.mask & (1 << off) == 0 {
                way.mask |= 1 << off;
                self.compressed_fills += 1;
                self.resident += 1;
            }
            way.stamp = clock;
            return;
        }
        // Allocate a fresh entry for this run.
        self.stats.insertions += 1;
        self.per_asid.entry(req.asid).insertions += 1;
        let victim = self.ways[range.clone()]
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| (w.valid, w.stamp))
            .map(|(i, _)| i)
            .expect("associativity is non-zero"); // simlint: allow(hot-unwrap, reason = "TlbConfig validates associativity > 0 at construction")
        let widx = range.start + victim;
        if self.ways[widx].valid {
            self.stats.evictions += 1;
            self.resident -= self.ways[widx].mask.count_ones();
            let victim_asid = self.ways[widx].asid;
            self.per_asid.entry(victim_asid).evictions += 1;
        } else {
            self.occupied += 1;
        }
        self.resident += 1;
        self.ways[widx] = CompressedWay {
            valid: true,
            asid: req.asid,
            base_vpn: base,
            base_ppn: Ppn::new(expected_base_ppn),
            mask: 1 << off,
            literal: false,
            stamp: clock,
        };
    }

    fn stats(&self) -> TlbStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
        self.per_asid.clear();
    }

    fn stats_by_asid(&self) -> Vec<(Asid, TlbStats)> {
        self.per_asid.non_empty()
    }

    fn flush(&mut self) {
        for w in &mut self.ways {
            w.valid = false;
            w.mask = 0;
        }
        self.occupied = 0;
        self.resident = 0;
        // The invalidated ways already fail memo revalidation (hygiene).
        for m in &mut self.memo {
            *m = u32::MAX;
        }
    }

    fn fastpath_hits(&self) -> u64 {
        self.fastpath
    }

    fn capacity(&self) -> usize {
        self.config.entries
    }

    fn check_invariants(&self) -> Result<(), InvariantViolation> {
        let fail = |detail: String| {
            Err(InvariantViolation::new(
                "CompressedTlb",
                detail,
                self.dump_state(),
            ))
        };
        if let Err(e) = self.stats.check() {
            return fail(e);
        }
        let asid_sum = self.per_asid.sum();
        if asid_sum != self.stats {
            return fail(format!(
                "per-ASID stats sum {asid_sum:?} != aggregate {:?}",
                self.stats
            ));
        }
        let degree_mask = if self.compression.degree >= 64 {
            u64::MAX
        } else {
            (1u64 << self.compression.degree) - 1
        };
        for set in 0..self.config.sets() {
            let m = self.memo[set];
            if m != u32::MAX && !self.set_range(set).contains(&(m as usize)) {
                return fail(format!(
                    "set {set}: MRU memo {m} points outside the set's way range"
                ));
            }
            let ways = &self.ways[self.set_range(set)];
            for (i, w) in ways.iter().enumerate().filter(|(_, w)| w.valid) {
                if w.mask == 0 {
                    return fail(format!("set {set} way {i}: valid entry with empty run mask"));
                }
                if u64::from(w.mask) & !degree_mask != 0 {
                    return fail(format!(
                        "set {set} way {i}: mask {:#x} has bits beyond compression degree {}",
                        w.mask, self.compression.degree
                    ));
                }
                if w.literal && w.mask.count_ones() != 1 {
                    return fail(format!(
                        "set {set} way {i}: literal entry covers {} pages (must be 1)",
                        w.mask.count_ones()
                    ));
                }
                if w.base_vpn.raw() & (self.compression.degree as u64 - 1) != 0 {
                    return fail(format!(
                        "set {set} way {i}: base VPN {:#x} not aligned to run degree",
                        w.base_vpn.raw()
                    ));
                }
                if w.stamp > self.clock {
                    return fail(format!(
                        "set {set} way {i}: stamp {} ahead of clock {}",
                        w.stamp, self.clock
                    ));
                }
                if ways[..i].iter().any(|o| o.valid && o.stamp == w.stamp) {
                    return fail(format!(
                        "set {set}: duplicate LRU stamp {} breaks the recency total order",
                        w.stamp
                    ));
                }
            }
        }
        // Counters against the scans, after the per-way structure checks
        // (those give the more precise diagnosis) and checked here
        // directly because the accessors' debug asserts panic rather
        // than report.
        let scanned_entries = self.ways.iter().filter(|w| w.valid).count();
        if self.occupied != scanned_entries {
            return fail(format!(
                "occupied counter {} != valid-entry scan {scanned_entries}",
                self.occupied
            ));
        }
        let scanned_pages: u32 = self
            .ways
            .iter()
            .filter(|w| w.valid)
            .map(|w| w.mask.count_ones())
            .sum();
        if self.resident != scanned_pages {
            return fail(format!(
                "resident counter {} != mask-population scan {scanned_pages}",
                self.resident
            ));
        }
        Ok(())
    }

    fn dump_state(&self) -> String {
        let mut s = format!(
            "CompressedTlb: {} entries, degree {}, clock {}, stats {{{:?}}}\n",
            self.config.entries, self.compression.degree, self.clock, self.stats
        );
        for set in 0..self.config.sets() {
            let ways = &self.ways[self.set_range(set)];
            if ways.iter().all(|w| !w.valid) {
                continue;
            }
            let _ = write!(s, "  set {set:3}:");
            for w in ways.iter().filter(|w| w.valid) {
                let _ = write!(
                    s,
                    " [asid={} base_vpn={:#x} base_ppn={:#x} mask={:#010b}{} @{}]",
                    w.asid,
                    w.base_vpn.raw(),
                    w.base_ppn.raw(),
                    w.mask,
                    if w.literal { " literal" } else { "" },
                    w.stamp
                );
            }
            s.push('\n');
        }
        s
    }
}

impl CompressedTlb {
    /// Stores a translation that cannot participate in any run (its PPN
    /// underflows the run base) as a single-page entry keyed at its own
    /// VPN.
    fn insert_singleton(&mut self, asid: Asid, vpn: Vpn, ppn: Ppn) {
        self.clock += 1;
        let set = self.set_of(vpn);
        let range = self.set_range(set);
        // Coherence on remap: clear any existing translation this app
        // holds for the page.
        let base = self.run_base(vpn);
        let off_bit = 1u32 << self.run_offset(vpn);
        for way in &mut self.ways[range.clone()] {
            if way.valid && way.asid == asid && way.base_vpn == base && way.mask & off_bit != 0 {
                way.mask &= !off_bit;
                self.resident -= 1;
                if way.mask == 0 {
                    way.valid = false;
                    self.occupied -= 1;
                }
            }
        }
        self.stats.insertions += 1;
        self.per_asid.entry(asid).insertions += 1;
        let victim = self.ways[range.clone()]
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| (w.valid, w.stamp))
            .map(|(i, _)| i)
            .expect("associativity is non-zero"); // simlint: allow(hot-unwrap, reason = "TlbConfig validates associativity > 0 at construction")
        let off = self.run_offset(vpn);
        let base_vpn = self.run_base(vpn);
        let widx = range.start + victim;
        if self.ways[widx].valid {
            self.stats.evictions += 1;
            self.resident -= self.ways[widx].mask.count_ones();
            let victim_asid = self.ways[widx].asid;
            self.per_asid.entry(victim_asid).evictions += 1;
        } else {
            self.occupied += 1;
        }
        self.resident += 1;
        self.ways[widx] = CompressedWay {
            valid: true,
            asid,
            base_vpn,
            base_ppn: ppn,
            mask: 1 << off,
            literal: true,
            stamp: self.clock,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(vpn: u64) -> TlbRequest {
        TlbRequest::new(Vpn::new(vpn), 0)
    }

    fn tlb() -> CompressedTlb {
        CompressedTlb::new(TlbConfig::dac23_l1(), CompressionConfig::pact20())
    }

    #[test]
    fn contiguous_run_compresses_to_one_entry() {
        let mut t = tlb();
        for i in 0..8 {
            t.insert(&req(i), Ppn::new(1000 + i));
        }
        assert_eq!(t.occupied_entries(), 1);
        assert_eq!(t.resident_translations(), 8);
        assert_eq!(t.compressed_fills(), 7);
        for i in 0..8 {
            let out = t.lookup(&req(i));
            assert!(out.hit);
            assert_eq!(out.ppn, Some(Ppn::new(1000 + i)));
        }
    }

    #[test]
    fn decompression_adds_latency_only_for_compressed_entries() {
        let mut t = tlb();
        t.insert(&req(0), Ppn::new(50));
        // Singleton entry: no decompression cost.
        assert_eq!(t.lookup(&req(0)).latency, 1);
        t.insert(&req(1), Ppn::new(51));
        // Now compressed (two pages in the run): +1 cycle.
        assert_eq!(t.lookup(&req(0)).latency, 2);
    }

    #[test]
    fn non_contiguous_ppns_do_not_compress() {
        let mut t = tlb();
        // Same run, but scrambled frames (irregular demand-paging order).
        t.insert(&req(0), Ppn::new(500));
        t.insert(&req(1), Ppn::new(77)); // not 501 -> incompatible
        assert_eq!(t.occupied_entries(), 2);
        assert!(t.lookup(&req(0)).hit);
        assert!(t.lookup(&req(1)).hit);
        assert_eq!(t.lookup(&req(1)).ppn, Some(Ppn::new(77)));
    }

    #[test]
    fn compression_extends_reach_beyond_entry_count() {
        // 4-entry TLB but 4 runs x 8 pages = 32 translations resident.
        let mut t = CompressedTlb::new(TlbConfig::new(4, 4, 1), CompressionConfig::pact20());
        for run in 0..4u64 {
            for i in 0..8u64 {
                let vpn = run * 8 + i;
                t.insert(&req(vpn), Ppn::new(1000 * run + i));
            }
        }
        assert_eq!(t.occupied_entries(), 4);
        t.reset_stats();
        for vpn in 0..32u64 {
            assert!(t.lookup(&req(vpn)).hit, "vpn {vpn}");
        }
        assert_eq!(t.stats().misses, 0);
    }

    #[test]
    fn different_runs_with_same_base_dont_alias() {
        let mut t = tlb();
        t.insert(&req(0), Ppn::new(100));
        // Lookup of another page in the run whose bit is clear misses.
        assert!(!t.lookup(&req(3)).hit);
    }

    #[test]
    fn ppn_underflow_stored_as_singleton() {
        let mut t = tlb();
        // vpn 5 -> ppn 2 would imply base_ppn = -3; stored as singleton.
        t.insert(&req(5), Ppn::new(2));
        let out = t.lookup(&req(5));
        assert!(out.hit);
        assert_eq!(out.ppn, Some(Ppn::new(2)));
        // No other offset in the run hits.
        assert!(!t.lookup(&req(4)).hit);
    }

    #[test]
    fn flush_clears_masks() {
        let mut t = tlb();
        for i in 0..8 {
            t.insert(&req(i), Ppn::new(i));
        }
        t.flush();
        assert_eq!(t.occupied_entries(), 0);
        assert_eq!(t.resident_translations(), 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_degree_rejected() {
        let _ = CompressedTlb::new(
            TlbConfig::dac23_l1(),
            CompressionConfig {
                degree: 6,
                decompress_latency: 1,
            },
        );
    }

    #[test]
    fn invariants_hold_through_compression_workload() {
        let mut t = tlb();
        for i in 0..64u64 {
            let r = req(i % 21);
            if !t.lookup(&r).hit {
                t.insert(&r, Ppn::new(1000 + i % 21));
            }
            t.check_invariants().expect("workload keeps invariants");
        }
    }

    #[test]
    fn occupancy_counters_track_remap_churn() {
        let mut t = tlb();
        for i in 0..8 {
            t.insert(&req(i), Ppn::new(1000 + i));
        }
        assert_eq!(t.occupied_entries(), 1);
        assert_eq!(t.resident_translations(), 8);
        // Remap one page out of the run: coherence clears its bit, then a
        // fresh singleton-run entry is allocated.
        t.insert(&req(3), Ppn::new(77));
        assert_eq!(t.occupied_entries(), 2);
        assert_eq!(t.resident_translations(), 8);
        t.check_invariants().expect("counters match scans");
        // Remap to a PPN that underflows the run base: literal path.
        t.insert(&req(3), Ppn::new(1));
        assert_eq!(t.resident_translations(), 8);
        t.check_invariants().expect("counters match scans");
        t.flush();
        assert_eq!(t.occupied_entries(), 0);
        assert_eq!(t.resident_translations(), 0);
    }

    #[test]
    fn corrupted_occupancy_counter_is_reported() {
        let mut t = tlb();
        t.insert(&req(0), Ppn::new(100));
        t.occupied = 5; // bypass insert accounting
        let v = t.check_invariants().unwrap_err();
        assert!(v.detail.contains("occupied counter"), "{}", v.detail);
    }

    #[test]
    fn empty_mask_on_valid_entry_is_reported() {
        let mut t = tlb();
        t.insert(&req(0), Ppn::new(100));
        let w = t.ways.iter_mut().find(|w| w.valid).unwrap();
        w.mask = 0;
        let v = t.check_invariants().unwrap_err();
        assert!(v.detail.contains("empty run mask"), "{}", v.detail);
    }

    #[test]
    fn fastpath_rides_the_memo_and_survives_remap() {
        let mut t = tlb();
        for i in 0..8 {
            t.insert(&req(i), Ppn::new(1000 + i));
        }
        assert!(t.lookup(&req(3)).hit); // walk arms the memo
        assert_eq!(t.fastpath_hits(), 0);
        let fast = t.lookup(&req(3));
        assert_eq!(fast, TlbOutcome::hit(Ppn::new(1003), 2));
        assert_eq!(t.fastpath_hits(), 1);
        // Remap page 3 out of the run: the memoized way's bit clears, so
        // the next lookup of vpn 3 must revalidate and find the new
        // singleton entry — never the stale compressed frame.
        t.insert(&req(3), Ppn::new(77));
        assert_eq!(t.lookup(&req(3)).ppn, Some(Ppn::new(77)));
        t.check_invariants().expect("memo stays inside its set");
    }

    fn areq(asid: u16, vpn: u64) -> TlbRequest {
        TlbRequest::new(Vpn::new(vpn), 0).with_asid(Asid::new(asid))
    }

    #[test]
    fn runs_never_compress_across_asids() {
        let mut t = tlb();
        // Identical VPN/PPN pattern from two apps: must occupy two
        // entries, and each app only ever sees its own frames.
        for i in 0..8 {
            t.insert(&areq(1, i), Ppn::new(1000 + i));
            t.insert(&areq(2, i), Ppn::new(2000 + i));
        }
        assert_eq!(t.occupied_entries(), 2);
        for i in 0..8 {
            assert_eq!(t.lookup(&areq(1, i)).ppn, Some(Ppn::new(1000 + i)));
            assert_eq!(t.lookup(&areq(2, i)).ppn, Some(Ppn::new(2000 + i)));
        }
        t.check_invariants().expect("mixed-ASID runs stay consistent");
    }

    #[test]
    fn cross_asid_lookup_misses_even_after_memo() {
        let mut t = tlb();
        for i in 0..8 {
            t.insert(&areq(1, i), Ppn::new(1000 + i));
        }
        assert!(t.lookup(&areq(1, 3)).hit); // arm memo
        assert!(!t.lookup(&areq(2, 3)).hit, "memo must not serve another app");
        let by: std::collections::HashMap<_, _> = t.stats_by_asid().into_iter().collect();
        assert_eq!(by[&Asid::new(1)].hits, 1);
        assert_eq!(by[&Asid::new(2)].misses, 1);
        let sum = t
            .stats_by_asid()
            .iter()
            .fold(TlbStats::default(), |a, (_, s)| a + *s);
        assert_eq!(sum, t.stats());
    }

    #[test]
    fn lru_among_runs() {
        // 1 set x 2 ways, runs of 8.
        let mut t = CompressedTlb::new(TlbConfig::new(2, 2, 1), CompressionConfig::pact20());
        t.insert(&req(0), Ppn::new(0)); // run 0
        t.insert(&req(8), Ppn::new(8)); // run 1
        assert!(t.lookup(&req(0)).hit); // run 0 recently used
        t.insert(&req(16), Ppn::new(16)); // run 2 evicts run 1
        assert!(t.lookup(&req(0)).hit);
        assert!(!t.lookup(&req(8)).hit);
        assert!(t.lookup(&req(16)).hit);
    }
}
