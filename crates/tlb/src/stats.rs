//! TLB access statistics.

use std::fmt;
use std::ops::{Add, AddAssign};
use vmem::Asid;

/// Hit/miss counters for a TLB.
///
/// # Example
///
/// ```
/// use tlb::TlbStats;
///
/// let mut s = TlbStats::default();
/// s.record(true);
/// s.record(false);
/// assert_eq!(s.accesses(), 2);
/// assert!((s.hit_rate() - 0.5).abs() < 1e-12);
/// ```
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Lookups that found the translation.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Valid entries displaced by insertion.
    pub evictions: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Total lookups, counted independently of the hit/miss split so the
    /// identity `hits + misses == lookups` is a checkable invariant (the
    /// sanitizer and `SimReport` aggregation both assert it).
    pub lookups: u64,
}

impl TlbStats {
    /// Records one lookup outcome.
    pub fn record(&mut self, hit: bool) {
        self.lookups += 1;
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
    }

    /// Total lookups.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Checks the counter identity `hits + misses == lookups`.
    ///
    /// Every lookup must be classified as exactly one of hit or miss; a
    /// TLB implementation that bumps `hits`/`misses` without going through
    /// [`TlbStats::record`] (or vice versa) breaks this and is reported.
    pub fn check(&self) -> Result<(), String> {
        if self.hits + self.misses != self.lookups {
            return Err(format!(
                "hits ({}) + misses ({}) != lookups ({})",
                self.hits, self.misses, self.lookups
            ));
        }
        Ok(())
    }

    /// Hit rate in `[0, 1]`; `0.0` when no accesses were made.
    pub fn hit_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Miss rate in `[0, 1]`; `0.0` when no accesses were made (so an idle
    /// TLB never looks like it is thrashing — the paper's scheduler probes
    /// miss rates and must prefer idle SMs).
    pub fn miss_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

impl Add for TlbStats {
    type Output = TlbStats;

    fn add(self, rhs: TlbStats) -> TlbStats {
        TlbStats {
            hits: self.hits + rhs.hits,
            misses: self.misses + rhs.misses,
            evictions: self.evictions + rhs.evictions,
            insertions: self.insertions + rhs.insertions,
            lookups: self.lookups + rhs.lookups,
        }
    }
}

impl AddAssign for TlbStats {
    fn add_assign(&mut self, rhs: TlbStats) {
        *self = *self + rhs;
    }
}

/// Per-address-space [`TlbStats`] table, indexed by raw ASID and grown on
/// demand. Organizations that tag entries with ASIDs keep one of these
/// alongside the aggregate counters; the multi-tenant invariant checked by
/// the sanitizer and the proptests is that [`PerAsidStats::sum`] equals
/// the aggregate exactly.
///
/// # Example
///
/// ```
/// use tlb::PerAsidStats;
/// use vmem::Asid;
///
/// let mut p = PerAsidStats::default();
/// p.entry(Asid::new(1)).record(true);
/// p.entry(Asid::new(3)).record(false);
/// assert_eq!(p.sum().lookups, 2);
/// assert_eq!(p.non_empty().len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PerAsidStats {
    table: Vec<TlbStats>,
}

impl PerAsidStats {
    /// The mutable counters for `asid`, growing the table as needed.
    pub fn entry(&mut self, asid: Asid) -> &mut TlbStats {
        let i = asid.index();
        if i >= self.table.len() {
            self.table.resize(i + 1, TlbStats::default());
        }
        &mut self.table[i]
    }

    /// The counters for `asid` (zero if it never issued traffic).
    pub fn get(&self, asid: Asid) -> TlbStats {
        self.table.get(asid.index()).copied().unwrap_or_default()
    }

    /// Sum over all ASIDs; the multi-tenant accounting identity requires
    /// this to equal the owning TLB's aggregate [`TlbStats`].
    pub fn sum(&self) -> TlbStats {
        self.table
            .iter()
            .fold(TlbStats::default(), |a, s| a + *s)
    }

    /// `(asid, stats)` pairs for every ASID with at least one counter set.
    pub fn non_empty(&self) -> Vec<(Asid, TlbStats)> {
        self.table
            .iter()
            .enumerate()
            .filter(|(_, s)| **s != TlbStats::default())
            .map(|(i, s)| (Asid::new(i as u16), *s))
            .collect()
    }

    /// Clears every ASID's counters.
    pub fn clear(&mut self) {
        self.table.clear();
    }
}

impl fmt::Display for TlbStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses, {} hits ({:.1}%), {} evictions",
            self.accesses(),
            self.hits,
            self.hit_rate() * 100.0,
            self.evictions
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_on_empty_stats_are_zero() {
        let s = TlbStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.accesses(), 0);
    }

    #[test]
    fn record_accumulates() {
        let mut s = TlbStats::default();
        for _ in 0..3 {
            s.record(true);
        }
        s.record(false);
        assert_eq!(s.hits, 3);
        assert_eq!(s.misses, 1);
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert!((s.miss_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn add_combines_all_fields() {
        let a = TlbStats {
            hits: 1,
            misses: 2,
            evictions: 3,
            insertions: 4,
            lookups: 3,
        };
        let b = TlbStats {
            hits: 10,
            misses: 20,
            evictions: 30,
            insertions: 40,
            lookups: 30,
        };
        let c = a + b;
        assert_eq!(c.hits, 11);
        assert_eq!(c.misses, 22);
        assert_eq!(c.evictions, 33);
        assert_eq!(c.insertions, 44);
        assert_eq!(c.lookups, 33);
        let mut d = a;
        d += b;
        assert_eq!(d, c);
    }

    #[test]
    fn record_maintains_lookup_identity() {
        let mut s = TlbStats::default();
        for i in 0..10 {
            s.record(i % 3 == 0);
        }
        assert_eq!(s.lookups, 10);
        assert!(s.check().is_ok());
    }

    #[test]
    fn check_reports_broken_identity() {
        let mut s = TlbStats::default();
        s.record(true);
        s.hits += 1; // bypasses record(): identity now broken
        let err = s.check().unwrap_err();
        assert!(err.contains("lookups"), "unexpected message: {err}");
    }

    #[test]
    fn display_shows_percentage() {
        let mut s = TlbStats::default();
        s.record(true);
        s.record(true);
        assert!(s.to_string().contains("100.0%"));
    }

    #[test]
    fn per_asid_table_sums_and_filters() {
        let mut p = PerAsidStats::default();
        p.entry(Asid::new(0)).record(true);
        p.entry(Asid::new(2)).record(false);
        p.entry(Asid::new(2)).insertions += 1;
        assert_eq!(p.get(Asid::new(0)).hits, 1);
        assert_eq!(p.get(Asid::new(1)), TlbStats::default());
        assert_eq!(p.get(Asid::new(2)).insertions, 1);
        let sum = p.sum();
        assert_eq!(sum.lookups, 2);
        assert_eq!(sum.insertions, 1);
        let pairs = p.non_empty();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].0, Asid::new(0));
        assert_eq!(pairs[1].0, Asid::new(2));
        p.clear();
        assert_eq!(p.sum(), TlbStats::default());
    }
}
