//! Differential proof that the MRU lookup fast path is *exact*: a TLB
//! with the memo enabled and a memo-less twin, driven by the same random
//! operation stream, must agree on every lookup outcome, every stats
//! counter, and the entire resident state (LRU stamps included, via
//! `dump_state`). Any divergence — a stale memo serving an evicted
//! entry, a skipped LRU touch, a missed stats update — fails here long
//! before it could perturb a simulation.

use proptest::prelude::*;
use tlb::{
    CompressedTlb, CompressionConfig, SetAssocTlb, TlbConfig, TlbRequest, TranslationBuffer,
};
use vmem::{Ppn, Vpn};

/// One step of the driving stream. Lookup dominates (it is the hot path
/// under test and the only memo producer/consumer); inserts churn the
/// memoized ways; patch swaps payloads without touching recency; flush
/// wipes everything.
#[derive(Clone, Debug)]
enum Op {
    Lookup(u64),
    Insert(u64, u64),
    Patch(u64, u64, u64),
    Flush,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    // The compat `prop_oneof!` is unweighted; repeating the lookup arm
    // biases the stream toward the path under test.
    let op = prop_oneof![
        (0u64..96).prop_map(Op::Lookup),
        (0u64..96).prop_map(Op::Lookup),
        (0u64..96).prop_map(Op::Lookup),
        (0u64..96).prop_map(Op::Lookup),
        (0u64..96, 0u64..512).prop_map(|(v, p)| Op::Insert(v, p)),
        (0u64..96, 0u64..512).prop_map(|(v, p)| Op::Insert(v, p)),
        (0u64..96, 0u64..512, 0u64..512).prop_map(|(v, o, n)| Op::Patch(v, o, n)),
        Just(Op::Flush),
    ];
    proptest::collection::vec(op, 1..400)
}

/// Applies one op to both twins and asserts bit-equality of everything
/// observable after it.
fn step<T: TranslationBuffer>(fast: &mut T, slow: &mut T, op: &Op) {
    match *op {
        Op::Lookup(v) => {
            let a = fast.lookup(&TlbRequest::new(Vpn::new(v), 0));
            let b = slow.lookup(&TlbRequest::new(Vpn::new(v), 0));
            assert_eq!(a, b, "lookup({v}) diverged");
        }
        Op::Insert(v, p) => {
            fast.insert(&TlbRequest::new(Vpn::new(v), 0), Ppn::new(p));
            slow.insert(&TlbRequest::new(Vpn::new(v), 0), Ppn::new(p));
        }
        Op::Patch(v, o, n) => {
            let a = fast.patch_ppn(&TlbRequest::new(Vpn::new(v), 0), Ppn::new(o), Ppn::new(n));
            let b = slow.patch_ppn(&TlbRequest::new(Vpn::new(v), 0), Ppn::new(o), Ppn::new(n));
            assert_eq!(a, b, "patch_ppn({v}) diverged");
        }
        Op::Flush => {
            fast.flush();
            slow.flush();
        }
    }
    assert_eq!(fast.stats(), slow.stats());
    // Resident contents, probed non-perturbingly where supported.
    for v in 0..96u64 {
        assert_eq!(
            fast.probe(&TlbRequest::new(Vpn::new(v), 0)),
            slow.probe(&TlbRequest::new(Vpn::new(v), 0)),
            "resident state diverged at vpn {v}"
        );
    }
    fast.check_invariants().expect("fast twin invariants");
    slow.check_invariants().expect("slow twin invariants");
}

proptest! {
    /// SetAssocTlb: memo lookup ≡ tag-walk lookup, to the last stamp.
    #[test]
    fn set_assoc_fastpath_is_exact(stream in ops()) {
        // Small geometry maximizes conflict churn (evictions invalidate
        // memos constantly).
        let mut fast = SetAssocTlb::new(TlbConfig::new(8, 2, 1));
        let mut slow = fast.clone();
        slow.set_fastpath(false);
        for op in &stream {
            step(&mut fast, &mut slow, op);
        }
        // The twins end bit-identical down to LRU stamps, and the slow
        // twin never took the memo path.
        prop_assert_eq!(fast.dump_state(), slow.dump_state());
        prop_assert_eq!(slow.fastpath_hits(), 0);
    }

    /// CompressedTlb: the memo must also reproduce decompression latency
    /// and literal-vs-offset PPN reconstruction exactly.
    #[test]
    fn compressed_fastpath_is_exact(
        stream in ops(),
        degree in prop_oneof![Just(2usize), Just(4), Just(8)],
    ) {
        let cfg = CompressionConfig { degree, decompress_latency: 1 };
        let mut fast = CompressedTlb::new(TlbConfig::new(8, 2, 1), cfg);
        let mut slow = fast.clone();
        slow.set_fastpath(false);
        for op in &stream {
            // CompressedTlb has no `probe`, so `step` compares outcomes,
            // stats and invariants; the dump below pins full state.
            step(&mut fast, &mut slow, op);
            assert_eq!(fast.dump_state(), slow.dump_state());
        }
        prop_assert_eq!(slow.fastpath_hits(), 0);
    }
}
