//! Property-based tests for TLB organizations.

use proptest::prelude::*;
use tlb::{
    CompressedTlb, CompressionConfig, SetAssocTlb, SubEntryTlb, TlbConfig, TlbRequest, TlbStats,
    TranslationBuffer,
};
use vmem::{Asid, Ppn, Vpn};

fn req(vpn: u64) -> TlbRequest {
    TlbRequest::new(Vpn::new(vpn), 0)
}

fn areq(asid: u16, vpn: u64) -> TlbRequest {
    TlbRequest::new(Vpn::new(vpn), 0).with_asid(Asid::new(asid))
}

proptest! {
    /// A TLB never returns a wrong PPN: whatever was inserted last for a
    /// VPN is what a hit returns.
    #[test]
    fn set_assoc_hits_are_correct(ops in proptest::collection::vec((0u64..256, 0u64..1024), 1..300)) {
        let mut t = SetAssocTlb::new(TlbConfig::dac23_l1());
        let mut truth = std::collections::HashMap::new();
        for &(vpn, ppn) in &ops {
            t.insert(&req(vpn), Ppn::new(ppn));
            truth.insert(vpn, ppn);
            let out = t.lookup(&req(vpn));
            prop_assert!(out.hit, "just-inserted entry must hit");
            prop_assert_eq!(out.ppn, Some(Ppn::new(*truth.get(&vpn).unwrap())));
        }
        // Every resident entry agrees with the truth map.
        for &(vpn, _) in &ops {
            if let Some(p) = t.peek(Asid::default(), Vpn::new(vpn)) {
                prop_assert_eq!(p.raw(), truth[&vpn]);
            }
        }
    }

    /// Occupancy never exceeds capacity, and hits + misses == lookups.
    #[test]
    fn set_assoc_conservation(vpns in proptest::collection::vec(0u64..10_000, 1..500)) {
        let mut t = SetAssocTlb::new(TlbConfig::new(16, 4, 1));
        let mut lookups = 0u64;
        for &v in &vpns {
            let out = t.lookup(&req(v));
            lookups += 1;
            if !out.hit {
                t.insert(&req(v), Ppn::new(v));
            }
            prop_assert!(t.occupancy() <= t.capacity());
        }
        let s = t.stats();
        prop_assert_eq!(s.hits + s.misses, lookups);
        prop_assert_eq!(s.insertions, s.misses); // we insert on every miss
        prop_assert!(s.evictions <= s.insertions);
    }

    /// The compressed TLB returns exactly the PPNs inserted, regardless of
    /// whether runs compressed, for fresh insert-then-lookup pairs.
    #[test]
    fn compressed_tlb_correctness(
        ops in proptest::collection::vec((0u64..128, 0u64..4096), 1..300),
        degree in prop_oneof![Just(2usize), Just(4), Just(8), Just(16)],
    ) {
        let cfg = CompressionConfig { degree, decompress_latency: 1 };
        let mut t = CompressedTlb::new(TlbConfig::dac23_l1(), cfg);
        for &(vpn, ppn) in &ops {
            t.insert(&req(vpn), Ppn::new(ppn));
            let out = t.lookup(&req(vpn));
            prop_assert!(out.hit);
            prop_assert_eq!(out.ppn, Some(Ppn::new(ppn)), "vpn {} degree {}", vpn, degree);
        }
    }

    /// Contiguous VPN->PPN streams always compress maximally: distinct
    /// entries = ceil(pages / degree).
    #[test]
    fn compressed_tlb_compresses_contiguous(pages in 1u64..64, base_ppn in 0u64..1000) {
        let cfg = CompressionConfig { degree: 8, decompress_latency: 1 };
        // Large enough to avoid evictions.
        let mut t = CompressedTlb::new(TlbConfig::new(256, 4, 1), cfg);
        for i in 0..pages {
            t.insert(&req(i), Ppn::new(base_ppn + i));
        }
        prop_assert_eq!(t.occupied_entries() as u64, pages.div_ceil(8));
        prop_assert_eq!(t.resident_translations() as u64, pages);
    }

    /// Randomly scrambled PPNs never silently alias: every lookup of an
    /// uninserted VPN misses or (if a run bit happens to be set) still
    /// returns an inserted page's translation — never an invented one.
    #[test]
    fn compressed_tlb_no_phantom_hits(vpns in proptest::collection::hash_set(0u64..64, 1..32)) {
        let cfg = CompressionConfig { degree: 8, decompress_latency: 1 };
        let mut t = CompressedTlb::new(TlbConfig::new(256, 4, 1), cfg);
        let mut rng_ppn = 7919u64;
        let mut truth = std::collections::HashMap::new();
        for &v in &vpns {
            rng_ppn = rng_ppn.wrapping_mul(6364136223846793005).wrapping_add(1);
            let ppn = rng_ppn % 100_000;
            t.insert(&req(v), Ppn::new(ppn));
            truth.insert(v, ppn);
        }
        for v in 0u64..64 {
            let out = t.lookup(&req(v));
            match truth.get(&v) {
                // Incompatible (uncompressible) translations from one run
                // crowd a single set and may evict each other, so an
                // inserted page may legitimately miss — but a hit must
                // return the exact translation.
                Some(&p) => {
                    if out.hit {
                        prop_assert_eq!(out.ppn, Some(Ppn::new(p)));
                    }
                }
                None => prop_assert!(!out.hit, "phantom hit for vpn {}", v),
            }
        }
    }
}

/// Drives a mixed-ASID op stream against `t` and checks the two
/// multi-tenant invariants on every step: a hit never returns a frame
/// that another app's page table owns (each app's frames live in a
/// disjoint numeric range here), and the per-ASID stats always sum to
/// the aggregate.
fn check_isolation<T: TranslationBuffer>(t: &mut T, ops: &[(u16, u64)]) {
    // App `a` maps vpn -> a * 1_000_000 + vpn: ranges never overlap.
    let frame_of = |asid: u16, vpn: u64| u64::from(asid) * 1_000_000 + vpn;
    let owner_of = |ppn: u64| (ppn / 1_000_000) as u16;
    for &(asid, vpn) in ops {
        let r = areq(asid, vpn);
        let out = t.lookup(&r);
        if out.hit {
            let ppn = out.ppn.expect("hit carries ppn").raw();
            assert_eq!(
                owner_of(ppn),
                asid,
                "ASID {asid} received a frame owned by ASID {}",
                owner_of(ppn)
            );
            assert_eq!(ppn, frame_of(asid, vpn));
        } else {
            t.insert(&r, Ppn::new(frame_of(asid, vpn)));
        }
        let sum = t
            .stats_by_asid()
            .iter()
            .fold(TlbStats::default(), |a, (_, s)| a + *s);
        assert_eq!(sum, t.stats(), "per-ASID stats must sum to aggregate");
        if let Err(v) = t.check_invariants() {
            panic!("invariant violation: {}", v.detail);
        }
    }
}

proptest! {
    /// Cross-app isolation for the baseline set-associative TLB: small
    /// geometry forces heavy cross-ASID set pressure.
    #[test]
    fn set_assoc_isolates_asids(
        ops in proptest::collection::vec((0u16..4, 0u64..64), 1..400),
    ) {
        let mut t = SetAssocTlb::new(TlbConfig::new(16, 4, 1));
        check_isolation(&mut t, &ops);
    }

    /// Cross-app isolation for the compressed TLB: runs must never
    /// compress or serve across address spaces.
    #[test]
    fn compressed_tlb_isolates_asids(
        ops in proptest::collection::vec((0u16..4, 0u64..64), 1..400),
        degree in prop_oneof![Just(2usize), Just(4), Just(8)],
    ) {
        let cfg = CompressionConfig { degree, decompress_latency: 1 };
        let mut t = CompressedTlb::new(TlbConfig::new(16, 4, 1), cfg);
        check_isolation(&mut t, &ops);
    }

    /// Cross-app isolation for the sub-entry-sharing TLB: shared VPN tags
    /// must still serve each app only its own sub-entry.
    #[test]
    fn sub_entry_tlb_isolates_asids(
        ops in proptest::collection::vec((0u16..6, 0u64..64), 1..400),
        subs in prop_oneof![Just(1usize), Just(2), Just(4)],
    ) {
        let mut t = SubEntryTlb::new(TlbConfig::new(16, 4, 1), subs);
        check_isolation(&mut t, &ops);
    }
}
