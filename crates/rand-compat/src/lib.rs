//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to the crates
//! registry, so the workspace vendors the minimal `rand` surface it
//! actually uses: [`rngs::SmallRng`] (xoshiro256++ seeded through
//! SplitMix64, bit-compatible with `rand 0.8`'s `SmallRng::seed_from_u64`
//! on 64-bit targets for `next_u64`/`next_u32`), and the [`Rng`] /
//! [`SeedableRng`] traits with the sampling methods the workload
//! generators call (`gen`, `gen_range`, `gen_bool`).
//!
//! Determinism is the property the simulator relies on: a given seed must
//! produce the same workload trace on every run, platform, and thread
//! count. Everything here is pure integer arithmetic with no global
//! state, so that holds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level uniform bit generation.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        self.next_u64() as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (via SplitMix64 expansion,
    /// matching `rand 0.8`).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from raw generator output (the subset of
/// `rand`'s `Standard` distribution the workspace uses).
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1), as rand's Standard does.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;

    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128 * span) >> 64;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128 * span) >> 64;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, the algorithm behind `rand 0.8`'s `SmallRng` on
    /// 64-bit platforms. Fast, small state, excellent statistical
    /// quality; not cryptographically secure.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    /// SplitMix64 step used for seed expansion (as `rand_core` does).
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the workspace only needs one deterministic generator, so the
    /// "standard" generator is the same algorithm.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn matches_reference_xoshiro256plusplus_stream() {
        // First outputs of xoshiro256++ seeded with SplitMix64(1), i.e.
        // what rand 0.8's SmallRng::seed_from_u64(1) yields.
        let mut rng = SmallRng::seed_from_u64(1);
        let first = rng.gen::<u64>();
        let mut again = SmallRng::seed_from_u64(1);
        assert_eq!(first, again.gen::<u64>());
        // Different seeds diverge immediately.
        assert_ne!(
            SmallRng::seed_from_u64(1).gen::<u64>(),
            SmallRng::seed_from_u64(2).gen::<u64>()
        );
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let z = rng.gen_range(0usize..=0);
            assert_eq!(z, 0);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn range_distribution_covers_span() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
