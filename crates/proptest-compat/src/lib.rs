//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates-registry access, so this crate
//! vendors the strategy/macro surface the workspace's property tests
//! use: the [`Strategy`] trait (with [`Strategy::prop_map`]) over integer
//! ranges, tuples, [`Just`],
//! [`collection::vec`], [`collection::hash_set`] and [`any`], plus the
//! [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`] and
//! [`prop_oneof!`] macros.
//!
//! Unlike real proptest there is no shrinking and no regression-file
//! persistence: each test runs a fixed number of deterministic cases
//! (seeded from the test's name), so failures reproduce exactly across
//! runs and machines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// The deterministic generator handed to strategies.
#[derive(Clone, Debug)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// Creates a generator for `test_name`, case `case`.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the name keeps seeds stable across runs/platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        TestRng(SmallRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (upstream's `Strategy::prop_map`).
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.source.generate(rng))
    }
}

/// Blanket impl so strategies can be passed by reference.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Strategy producing one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (built by [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Creates a union over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

/// Boxes a strategy, erasing its concrete type.
///
/// Used by [`prop_oneof!`]: routing the erasure through a function (rather
/// than an `as` cast) lets the shared `Value` type flow back into each arm,
/// so integer literals like `Just(4)` unify with `Just(2usize)`.
pub fn boxed<S: Strategy + 'static>(strategy: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(strategy)
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        use rand::Rng;
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        use rand::Rng;
        rng.gen()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy for [`Arbitrary`] types (see [`any`]).
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full range of values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies (`proptest::collection::vec`, `hash_set`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// Strategy for `Vec`s with sizes drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` of values from `element`, with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet`s with target sizes drawn from a range.
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `HashSet` of values from `element`; sizes may come out below the
    /// drawn target when the element domain is small (as in proptest).
    pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy { element, size }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = rng.gen_range(self.size.clone()).max(1);
            let mut set = HashSet::with_capacity(target);
            // Bounded retries so tiny domains terminate.
            for _ in 0..target.saturating_mul(16) {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.generate(rng));
            }
            if set.is_empty() {
                set.insert(self.element.generate(rng));
            }
            set
        }
    }
}

/// Per-`proptest!`-block configuration.
#[derive(Copy, Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps offline CI fast while
        // still exploring the space (cases are deterministic, so there is
        // no flake tradeoff).
        ProptestConfig { cases: 64 }
    }
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, collection, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof,
        proptest, Arbitrary, Just, ProptestConfig, Strategy, TestRng, Union,
    };
}

/// Asserts a condition inside a property test (panics on failure, like
/// `assert!`; there is no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
/// Only valid inside a [`proptest!`] body (it `continue`s the case loop).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed($strategy)),+])
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...)` body runs
/// once per generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg); $($rest)*);
    };
    (@run ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($pat:pat_param in $strategy:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                // Build strategies once; draw per case.
                let strategies = ( $($strategy,)+ );
                for case in 0..config.cases as u64 {
                    let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                    #[allow(non_snake_case)]
                    let ( $($pat,)+ ) =
                        $crate::Strategy::generate(&strategies, &mut rng);
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..200 {
            let v = (0u64..10).generate(&mut rng);
            assert!(v < 10);
            let w = (5u8..=7).generate(&mut rng);
            assert!((5..=7).contains(&w));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::for_case("vecs", 0);
        for _ in 0..100 {
            let v = collection::vec(0u32..100, 1..10).generate(&mut rng);
            assert!(!v.is_empty() && v.len() < 10);
        }
    }

    #[test]
    fn hash_set_values_distinct_by_construction() {
        let mut rng = TestRng::for_case("sets", 0);
        let s = collection::hash_set(0u64..1_000_000, 10..20).generate(&mut rng);
        assert!(!s.is_empty() && s.len() < 20);
    }

    #[test]
    fn union_picks_only_arms() {
        let u = prop_oneof![Just(2usize), Just(4), Just(8)];
        let mut rng = TestRng::for_case("union", 0);
        for _ in 0..100 {
            assert!(matches!(u.generate(&mut rng), 2 | 4 | 8));
        }
    }

    #[test]
    fn deterministic_per_name_and_case() {
        let mut a = TestRng::for_case("x", 3);
        let mut b = TestRng::for_case("x", 3);
        let s = collection::vec(0u64..1000, 1..50);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_works((a, b) in (0u64..100, 0u64..100), flag in any::<bool>()) {
            prop_assert!(a < 100 && b < 100);
            let _ = flag;
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(a, a + b + 1);
        }
    }
}
