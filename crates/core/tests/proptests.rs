//! Property-based invariant tests for the partitioned TLB and the
//! TLB-aware scheduler (the sanitizer's structural checks, driven by
//! random operation sequences instead of the engine).
//!
//! Every sequence interleaves lookups, inserts, TB completions and
//! concurrency changes across all four sharing policies, and re-validates
//! [`TranslationBuffer::check_invariants`] after *each* operation — the
//! same checks `--sanitize` runs inside the engine, so a shrunken failure
//! here is a ready-made reproducer for a sanitizer trip.

use orchestrated_tlb::{PartitionedTlb, PartitionedTlbConfig, SharingPolicy, TlbAwareScheduler};
use proptest::prelude::*;
use tlb::{CompressionConfig, TlbConfig, TlbRequest, TlbStats, TranslationBuffer};
use vmem::{Asid, Ppn, Vpn};

/// One random TLB operation. Every address-carrying op also carries the
/// issuing app's ASID so sequences exercise the multi-tenant paths.
#[derive(Copy, Clone, Debug)]
enum Op {
    Lookup { asid: u16, vpn: u64, tb: u8 },
    Insert { asid: u16, vpn: u64, tb: u8 },
    TbFinish { asid: u16, tb: u8 },
    SetConcurrency { tbs: u8 },
    Flush,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // The compat prop_oneof! has no weight syntax; repeating the hot
    // lookup/insert arms biases the mix toward them instead.
    prop_oneof![
        (0u16..3, 0u64..96, 0u8..8).prop_map(|(asid, vpn, tb)| Op::Lookup { asid, vpn, tb }),
        (0u16..3, 0u64..96, 0u8..8).prop_map(|(asid, vpn, tb)| Op::Insert { asid, vpn, tb }),
        (0u16..3, 96u64..192, 0u8..8).prop_map(|(asid, vpn, tb)| Op::Lookup { asid, vpn, tb }),
        (0u16..3, 96u64..192, 0u8..8).prop_map(|(asid, vpn, tb)| Op::Insert { asid, vpn, tb }),
        (0u16..3, 0u8..8).prop_map(|(asid, tb)| Op::TbFinish { asid, tb }),
        (1u8..8).prop_map(|tbs| Op::SetConcurrency { tbs }),
        Just(Op::Flush),
    ]
}

/// App `asid` maps `vpn` to this frame: per-app ranges are disjoint, so
/// any hit returning a frame outside the requester's range is a leak.
fn frame_of(asid: u16, vpn: u64) -> u64 {
    u64::from(asid) * 1_000_000 + vpn + 1000
}

fn policy_strategy() -> impl Strategy<Value = SharingPolicy> {
    prop_oneof![
        Just(SharingPolicy::None),
        Just(SharingPolicy::Adjacent),
        (1u8..6).prop_map(|threshold| SharingPolicy::AdjacentCounter { threshold }),
        Just(SharingPolicy::AllToAll),
    ]
}

fn apply(t: &mut PartitionedTlb, op: Op) {
    match op {
        Op::Lookup { asid, vpn, tb } => {
            let out = t.lookup(&TlbRequest::new(Vpn::new(vpn), tb).with_asid(Asid::new(asid)));
            if let Some(ppn) = out.ppn {
                assert_eq!(
                    ppn.raw() / 1_000_000,
                    u64::from(asid),
                    "ASID {asid} received another app's frame {:#x}",
                    ppn.raw()
                );
            }
        }
        Op::Insert { asid, vpn, tb } => {
            t.insert(
                &TlbRequest::new(Vpn::new(vpn), tb).with_asid(Asid::new(asid)),
                Ppn::new(frame_of(asid, vpn)),
            );
        }
        Op::TbFinish { asid, tb } => t.on_tb_finish(Asid::new(asid), tb),
        Op::SetConcurrency { tbs } => t.set_concurrent_tbs(tbs),
        Op::Flush => t.flush(),
    }
    let sum = t
        .stats_by_asid()
        .iter()
        .fold(TlbStats::default(), |a, (_, s)| a + *s);
    assert_eq!(sum, t.stats(), "per-ASID stats must sum to aggregate");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The structural invariants (set ownership licensed by sharing
    /// flags, LRU total order, stats identity, occupancy bound) survive
    /// arbitrary operation sequences under every sharing policy.
    #[test]
    fn partitioned_tlb_invariants_hold(
        policy in policy_strategy(),
        margin in prop_oneof![Just(0u64), Just(4), Just(512)],
        ops in proptest::collection::vec(op_strategy(), 1..200),
    ) {
        let mut t = PartitionedTlb::new(PartitionedTlbConfig {
            geometry: TlbConfig::new(16, 2, 1),
            sharing: policy,
            per_set_lookup_overhead: true,
            displacement_margin: margin,
            compression: None,
        });
        t.set_concurrent_tbs(8);
        for &op in &ops {
            apply(&mut t, op);
            let check = t.check_invariants();
            prop_assert!(check.is_ok(), "after {:?}: {}", op, check.unwrap_err());
        }
    }

    /// Same property with PACT'20 compression layered on top (runs,
    /// masks and literal entries add their own invariants).
    #[test]
    fn compressed_partitioned_tlb_invariants_hold(
        policy in policy_strategy(),
        degree in prop_oneof![Just(2usize), Just(4), Just(8)],
        ops in proptest::collection::vec(op_strategy(), 1..150),
    ) {
        let mut t = PartitionedTlb::new(PartitionedTlbConfig {
            geometry: TlbConfig::new(16, 2, 1),
            sharing: policy,
            per_set_lookup_overhead: true,
            displacement_margin: 8,
            compression: Some(CompressionConfig {
                degree,
                decompress_latency: 1,
            }),
        });
        t.set_concurrent_tbs(4);
        for &op in &ops {
            apply(&mut t, op);
            let check = t.check_invariants();
            prop_assert!(check.is_ok(), "after {:?}: {}", op, check.unwrap_err());
        }
    }

    /// The §IV-A scheduler's status table stays within its hardware
    /// budget and its EWMA estimates stay in [0, 1] for any observation
    /// stream.
    #[test]
    fn scheduler_table_invariants_hold(
        num_sms in prop_oneof![Just(4usize), Just(16), Just(32)],
        rounds in 1usize..40,
    ) {
        use gpu_sim::{SmSnapshot, TbScheduler};
        let mut s = TlbAwareScheduler::new();
        for r in 0..rounds {
            let sms: Vec<SmSnapshot> = (0..num_sms)
                .map(|i| SmSnapshot {
                    free_slots: ((i + r) % 3) as u8,
                    tlb_hits: (i as u64 * 7 + r as u64) % 50,
                    tlb_accesses: 50 + i as u64,
                })
                .collect();
            let _ = s.pick_sm(&sms);
            prop_assert!(s.check_invariants(num_sms).is_ok(),
                "round {r}: {:?}", s.check_invariants(num_sms));
        }
    }
}
