//! Differential proof that `PartitionedTlb`'s epoch-guarded MRU fast
//! path and its payload-only `patch_ppn` are *exact*: a TLB with the
//! memo enabled and a memo-less twin, driven by the same random stream
//! of lookups, inserts, patches, TB lifecycle events, and flushes across
//! every sharing policy (with and without compression) and a mix of
//! address spaces, must agree on
//! every outcome, every stats counter, and the entire dumped state —
//! LRU stamps, sharing flags, spill counters, and owners included.

use orchestrated_tlb::{PartitionedTlb, PartitionedTlbConfig, SharingPolicy};
use proptest::prelude::*;
use tlb::{CompressionConfig, TlbConfig, TlbRequest, TranslationBuffer};
use vmem::{Asid, Ppn, Vpn};

/// One step of the driving stream. Lookup dominates (the memo's producer
/// and consumer); inserts churn residency and sharing flags; patches swap
/// payloads without touching recency; TB events re-home entries and reset
/// flags; flush wipes everything.
#[derive(Clone, Debug)]
enum Op {
    Lookup(u16, u64, u8),
    Insert(u16, u64, u8, u64),
    Patch(u16, u64, u64, u64),
    TbFinish(u16, u8),
    SetTbs(u8),
    Flush,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    // The compat `prop_oneof!` is unweighted; repeating arms biases the
    // stream toward the path under test. Narrow VPN/PPN ranges maximize
    // refresh collisions and successful patches.
    let op = prop_oneof![
        (0u16..3, 0u64..64, 0u8..8).prop_map(|(a, v, t)| Op::Lookup(a, v, t)),
        (0u16..3, 0u64..64, 0u8..8).prop_map(|(a, v, t)| Op::Lookup(a, v, t)),
        (0u16..3, 0u64..64, 0u8..8).prop_map(|(a, v, t)| Op::Lookup(a, v, t)),
        (0u16..3, 0u64..64, 0u8..8).prop_map(|(a, v, t)| Op::Lookup(a, v, t)),
        (0u16..3, 0u64..64, 0u8..8, 0u64..16).prop_map(|(a, v, t, p)| Op::Insert(a, v, t, p)),
        (0u16..3, 0u64..64, 0u8..8, 0u64..16).prop_map(|(a, v, t, p)| Op::Insert(a, v, t, p)),
        (0u16..3, 0u64..64, 0u64..16, 0u64..16).prop_map(|(a, v, o, n)| Op::Patch(a, v, o, n)),
        (0u16..3, 0u8..8).prop_map(|(a, t)| Op::TbFinish(a, t)),
        (0u8..8).prop_map(|n| Op::SetTbs(n + 1)),
        Just(Op::Flush),
    ];
    proptest::collection::vec(op, 1..300)
}

/// Applies one op to both twins and asserts bit-equality of everything
/// observable after it.
fn step(fast: &mut PartitionedTlb, slow: &mut PartitionedTlb, op: &Op) {
    match *op {
        Op::Lookup(a, v, tb) => {
            let r = TlbRequest::new(Vpn::new(v), tb).with_asid(Asid::new(a));
            let x = fast.lookup(&r);
            let y = slow.lookup(&r);
            assert_eq!(x, y, "lookup(asid {a}, {v}, tb {tb}) diverged");
        }
        Op::Insert(a, v, tb, p) => {
            let r = TlbRequest::new(Vpn::new(v), tb).with_asid(Asid::new(a));
            fast.insert(&r, Ppn::new(p));
            slow.insert(&r, Ppn::new(p));
        }
        Op::Patch(a, v, o, n) => {
            let r = TlbRequest::new(Vpn::new(v), 0).with_asid(Asid::new(a));
            let x = fast.patch_ppn(&r, Ppn::new(o), Ppn::new(n));
            let y = slow.patch_ppn(&r, Ppn::new(o), Ppn::new(n));
            assert_eq!(x, y, "patch_ppn(asid {a}, {v}) diverged");
        }
        Op::TbFinish(a, tb) => {
            fast.on_tb_finish(Asid::new(a), tb);
            slow.on_tb_finish(Asid::new(a), tb);
        }
        Op::SetTbs(n) => {
            fast.set_concurrent_tbs(n);
            slow.set_concurrent_tbs(n);
        }
        Op::Flush => {
            fast.flush();
            slow.flush();
        }
    }
    assert_eq!(fast.stats(), slow.stats());
    // The dump pins the full architectural state: residency, stamps,
    // sharing flags, spill counters, owners.
    assert_eq!(fast.dump_state(), slow.dump_state());
    fast.check_invariants().expect("fast twin invariants");
    slow.check_invariants().expect("slow twin invariants");
}

fn policies() -> impl Strategy<Value = SharingPolicy> {
    prop_oneof![
        Just(SharingPolicy::None),
        Just(SharingPolicy::Adjacent),
        Just(SharingPolicy::AdjacentCounter { threshold: 2 }),
        Just(SharingPolicy::AllToAll),
    ]
}

proptest! {
    /// Memo lookup ≡ multi-set tag walk, across every sharing policy and
    /// with compression on or off, down to the last LRU stamp.
    #[test]
    fn partitioned_fastpath_and_patch_are_exact(
        stream in ops(),
        sharing in policies(),
        compression in prop_oneof![Just(None), Just(Some(CompressionConfig::pact20()))],
    ) {
        // Tiny geometry (8 sets x 2 ways) maximizes spills, evictions and
        // flag churn — everything that could silently stale a memo.
        let mut fast = PartitionedTlb::new(PartitionedTlbConfig {
            geometry: TlbConfig::new(16, 2, 1),
            sharing,
            per_set_lookup_overhead: true,
            displacement_margin: 8,
            compression,
        });
        fast.set_concurrent_tbs(8);
        let mut slow = fast.clone();
        slow.set_fastpath(false);
        for op in &stream {
            step(&mut fast, &mut slow, op);
        }
        prop_assert_eq!(slow.fastpath_hits(), 0);
    }
}
