//! Differential proof that `PartitionedTlb`'s epoch-guarded MRU fast
//! path and its payload-only `patch_ppn` are *exact*: a TLB with the
//! memo enabled and a memo-less twin, driven by the same random stream
//! of lookups, inserts, patches, TB lifecycle events, and flushes across
//! every sharing policy (with and without compression), must agree on
//! every outcome, every stats counter, and the entire dumped state —
//! LRU stamps, sharing flags, spill counters, and owners included.

use orchestrated_tlb::{PartitionedTlb, PartitionedTlbConfig, SharingPolicy};
use proptest::prelude::*;
use tlb::{CompressionConfig, TlbConfig, TlbRequest, TranslationBuffer};
use vmem::{Ppn, Vpn};

/// One step of the driving stream. Lookup dominates (the memo's producer
/// and consumer); inserts churn residency and sharing flags; patches swap
/// payloads without touching recency; TB events re-home entries and reset
/// flags; flush wipes everything.
#[derive(Clone, Debug)]
enum Op {
    Lookup(u64, u8),
    Insert(u64, u8, u64),
    Patch(u64, u64, u64),
    TbFinish(u8),
    SetTbs(u8),
    Flush,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    // The compat `prop_oneof!` is unweighted; repeating arms biases the
    // stream toward the path under test. Narrow VPN/PPN ranges maximize
    // refresh collisions and successful patches.
    let op = prop_oneof![
        (0u64..64, 0u8..8).prop_map(|(v, t)| Op::Lookup(v, t)),
        (0u64..64, 0u8..8).prop_map(|(v, t)| Op::Lookup(v, t)),
        (0u64..64, 0u8..8).prop_map(|(v, t)| Op::Lookup(v, t)),
        (0u64..64, 0u8..8).prop_map(|(v, t)| Op::Lookup(v, t)),
        (0u64..64, 0u8..8, 0u64..16).prop_map(|(v, t, p)| Op::Insert(v, t, p)),
        (0u64..64, 0u8..8, 0u64..16).prop_map(|(v, t, p)| Op::Insert(v, t, p)),
        (0u64..64, 0u64..16, 0u64..16).prop_map(|(v, o, n)| Op::Patch(v, o, n)),
        (0u8..8).prop_map(Op::TbFinish),
        (0u8..8).prop_map(|n| Op::SetTbs(n + 1)),
        Just(Op::Flush),
    ];
    proptest::collection::vec(op, 1..300)
}

/// Applies one op to both twins and asserts bit-equality of everything
/// observable after it.
fn step(fast: &mut PartitionedTlb, slow: &mut PartitionedTlb, op: &Op) {
    match *op {
        Op::Lookup(v, tb) => {
            let a = fast.lookup(&TlbRequest::new(Vpn::new(v), tb));
            let b = slow.lookup(&TlbRequest::new(Vpn::new(v), tb));
            assert_eq!(a, b, "lookup({v}, tb {tb}) diverged");
        }
        Op::Insert(v, tb, p) => {
            fast.insert(&TlbRequest::new(Vpn::new(v), tb), Ppn::new(p));
            slow.insert(&TlbRequest::new(Vpn::new(v), tb), Ppn::new(p));
        }
        Op::Patch(v, o, n) => {
            let a = fast.patch_ppn(&TlbRequest::new(Vpn::new(v), 0), Ppn::new(o), Ppn::new(n));
            let b = slow.patch_ppn(&TlbRequest::new(Vpn::new(v), 0), Ppn::new(o), Ppn::new(n));
            assert_eq!(a, b, "patch_ppn({v}) diverged");
        }
        Op::TbFinish(tb) => {
            fast.on_tb_finish(tb);
            slow.on_tb_finish(tb);
        }
        Op::SetTbs(n) => {
            fast.set_concurrent_tbs(n);
            slow.set_concurrent_tbs(n);
        }
        Op::Flush => {
            fast.flush();
            slow.flush();
        }
    }
    assert_eq!(fast.stats(), slow.stats());
    // The dump pins the full architectural state: residency, stamps,
    // sharing flags, spill counters, owners.
    assert_eq!(fast.dump_state(), slow.dump_state());
    fast.check_invariants().expect("fast twin invariants");
    slow.check_invariants().expect("slow twin invariants");
}

fn policies() -> impl Strategy<Value = SharingPolicy> {
    prop_oneof![
        Just(SharingPolicy::None),
        Just(SharingPolicy::Adjacent),
        Just(SharingPolicy::AdjacentCounter { threshold: 2 }),
        Just(SharingPolicy::AllToAll),
    ]
}

proptest! {
    /// Memo lookup ≡ multi-set tag walk, across every sharing policy and
    /// with compression on or off, down to the last LRU stamp.
    #[test]
    fn partitioned_fastpath_and_patch_are_exact(
        stream in ops(),
        sharing in policies(),
        compression in prop_oneof![Just(None), Just(Some(CompressionConfig::pact20()))],
    ) {
        // Tiny geometry (8 sets x 2 ways) maximizes spills, evictions and
        // flag churn — everything that could silently stale a memo.
        let mut fast = PartitionedTlb::new(PartitionedTlbConfig {
            geometry: TlbConfig::new(16, 2, 1),
            sharing,
            per_set_lookup_overhead: true,
            displacement_margin: 8,
            compression,
        });
        fast.set_concurrent_tbs(8);
        let mut slow = fast.clone();
        slow.set_fastpath(false);
        for op in &stream {
            step(&mut fast, &mut slow, op);
        }
        prop_assert_eq!(slow.fastpath_hits(), 0);
    }
}
