//! # orchestrated-tlb — the DAC'23 paper's contribution
//!
//! A from-scratch reproduction of Li, Wang & Tang, *Orchestrated
//! Scheduling and Partitioning for Improved Address Translation in GPUs*
//! (DAC 2023). This crate provides the paper's three mechanisms on top of
//! the `gpu-sim` cycle-level simulator:
//!
//! 1. [`TlbAwareScheduler`] — TLB-thrashing-aware TB scheduling driven by
//!    a per-SM `<TLB_hits, TLB_total>` hardware table (§IV-A),
//! 2. [`PartitionedTlb`] — the TB-id-indexed, full-VPN-tagged L1 TLB
//!    partitioning (§IV-B), and
//! 3. its **dynamic adjacent set sharing** (1-bit flags, spill on
//!    eviction, reset on TB finish — Figure 9), plus an optional PACT'20
//!    compression layer for the Figure 12 combination study.
//!
//! [`Mechanism`] enumerates the exact configurations evaluated in the
//! paper, and [`run_benchmark`] runs any Table II benchmark under any of
//! them.
//!
//! # Example
//!
//! ```
//! use gpu_sim::GpuConfig;
//! use orchestrated_tlb::{run_benchmark, Mechanism};
//! use workloads::{registry, Scale};
//!
//! let spec = registry().into_iter().find(|s| s.name == "mvt").unwrap();
//! let base = run_benchmark(&spec, Scale::Test, 42, Mechanism::Baseline,
//!                          GpuConfig::dac23_baseline());
//! let ours = run_benchmark(&spec, Scale::Test, 42, Mechanism::Full,
//!                          GpuConfig::dac23_baseline());
//! println!("L1 TLB hit rate: {:.1}% -> {:.1}%",
//!          base.l1_tlb_hit_rate() * 100.0, ours.l1_tlb_hit_rate() * 100.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod experiment;
mod partitioned;
pub mod related_work;
mod scheduler;
mod throttling;
mod warp_sched;
mod way_partitioned;

pub use experiment::{
    run_benchmark, run_benchmark_cached, run_benchmark_cached_with_page_size,
    run_benchmark_with_page_size, Mechanism,
};
pub use partitioned::{PartitionedTlb, PartitionedTlbConfig, SharingPolicy};
pub use scheduler::TlbAwareScheduler;
pub use throttling::ThrottlingTlbAwareScheduler;
pub use warp_sched::TbClusteredWarpScheduler;
pub use way_partitioned::WayPartitionedTlb;
