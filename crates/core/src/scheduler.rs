//! The paper's TLB-thrashing-aware TB scheduler (§IV-A, Figure 7).
//!
//! The TB scheduler keeps a hardware table with one `<TLB_hits,
//! TLB_total>` entry per SM (136 bytes for 16 SMs), updated by the SMs.
//! When a TB is to be dispatched, the scheduler walks the SMs in
//! round-robin order but only accepts a candidate whose *instantaneous L1
//! TLB miss rate* is low compared to the other SMs; if no SM qualifies it
//! falls back to plain round-robin. Parallelism is never throttled: a TB
//! is always placed as long as any SM has free resources.

use gpu_sim::{SmSnapshot, TbScheduler};

/// TLB-thrashing-aware TB scheduling policy.
///
/// # Example
///
/// ```
/// use gpu_sim::{SmSnapshot, TbScheduler};
/// use orchestrated_tlb::TlbAwareScheduler;
///
/// let mut sched = TlbAwareScheduler::new();
/// // First observation establishes the counter baseline.
/// let idle = vec![SmSnapshot { free_slots: 1, ..Default::default() }; 2];
/// sched.pick_sm(&idle);
/// let sms = vec![
///     SmSnapshot { free_slots: 1, tlb_hits: 10, tlb_accesses: 100 }, // 90% miss
///     SmSnapshot { free_slots: 1, tlb_hits: 90, tlb_accesses: 100 }, // 10% miss
/// ];
/// // The thrashing SM 0 is now skipped even though round-robin order
/// // would pick it next.
/// assert_eq!(sched.pick_sm(&sms), Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct TlbAwareScheduler {
    next: usize,
    /// Slack over the mean miss rate a candidate may have and still count
    /// as "low".
    tolerance: f64,
    /// Last observed `<hits, accesses>` per SM, for windowed rates.
    last_seen: Vec<(u64, u64)>,
    /// Exponentially-weighted *instantaneous* miss rate per SM (the
    /// paper probes the "instant L1 TLB miss rate", not the lifetime
    /// average).
    ewma: Vec<f64>,
}

/// EWMA smoothing factor for the windowed miss rate.
const EWMA_ALPHA: f64 = 0.5;

impl TlbAwareScheduler {
    /// Creates the scheduler with the default tolerance (a candidate
    /// qualifies if its miss rate is at most the cross-SM mean).
    pub fn new() -> Self {
        Self::with_tolerance(0.0)
    }

    /// Creates the scheduler with an explicit tolerance: a candidate SM
    /// qualifies when `miss_rate <= mean_miss_rate + tolerance`.
    pub fn with_tolerance(tolerance: f64) -> Self {
        TlbAwareScheduler {
            next: 0,
            tolerance,
            last_seen: Vec::new(),
            ewma: Vec::new(),
        }
    }

    /// Folds the counter deltas since the previous decision into the
    /// per-SM instantaneous miss-rate estimates.
    fn observe(&mut self, sms: &[SmSnapshot]) {
        if self.last_seen.len() != sms.len() {
            self.last_seen = sms.iter().map(|s| (s.tlb_hits, s.tlb_accesses)).collect();
            self.ewma = vec![0.0; sms.len()];
            return;
        }
        for (i, s) in sms.iter().enumerate() {
            let (h0, a0) = self.last_seen[i];
            let (dh, da) = (s.tlb_hits.saturating_sub(h0), s.tlb_accesses.saturating_sub(a0));
            if da > 0 {
                let inst = 1.0 - dh as f64 / da as f64;
                self.ewma[i] = EWMA_ALPHA * inst + (1.0 - EWMA_ALPHA) * self.ewma[i];
            }
            self.last_seen[i] = (s.tlb_hits, s.tlb_accesses);
        }
    }

    /// Size in bytes of the hardware TLB-status table for `num_sms` SMs:
    /// a 4-bit SM id plus two 32-bit counters per entry (136 bytes for
    /// the paper's 16 SMs).
    pub fn status_table_bytes(num_sms: usize) -> usize {
        (num_sms * (4 + 32 + 32)).div_ceil(8)
    }
}

impl Default for TlbAwareScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl TbScheduler for TlbAwareScheduler {
    fn pick_sm(&mut self, sms: &[SmSnapshot]) -> Option<usize> {
        if sms.is_empty() {
            return None;
        }
        self.observe(sms);
        let mean: f64 = self.ewma.iter().sum::<f64>() / self.ewma.len() as f64;
        // First pass: round-robin order, but only low-miss-rate SMs.
        for i in 0..sms.len() {
            let sm = (self.next + i) % sms.len();
            if sms[sm].has_room() && self.ewma[sm] <= mean + self.tolerance {
                self.next = (sm + 1) % sms.len();
                return Some(sm);
            }
        }
        // Fallback: plain round-robin (never throttles parallelism).
        for i in 0..sms.len() {
            let sm = (self.next + i) % sms.len();
            if sms[sm].has_room() {
                self.next = (sm + 1) % sms.len();
                return Some(sm);
            }
        }
        None
    }

    fn name(&self) -> &str {
        "tlb-aware"
    }

    fn reset(&mut self) {
        self.next = 0;
        // Keep the miss-rate estimates: the hardware table persists
        // across kernel launches.
    }

    fn check_invariants(&self, num_sms: usize) -> Result<(), String> {
        if self.ewma.len() != self.last_seen.len() {
            return Err(format!(
                "status table split-brained: {} rate estimates vs {} counter pairs \
                 (table: {:?}, ewma: {:?})",
                self.ewma.len(),
                self.last_seen.len(),
                self.last_seen,
                self.ewma
            ));
        }
        // One <TLB_hits, TLB_total> entry per SM; the paper's hardware
        // budget is a 16-entry table (136 bytes, §IV-A).
        let budget = num_sms.max(16);
        if self.last_seen.len() > budget {
            return Err(format!(
                "status table grew to {} entries, beyond the {budget}-entry hardware \
                 budget for {num_sms} SMs (table: {:?})",
                self.last_seen.len(),
                self.last_seen
            ));
        }
        if !self.last_seen.is_empty() && self.last_seen.len() != num_sms {
            return Err(format!(
                "status table has {} entries for {num_sms} SMs (table: {:?})",
                self.last_seen.len(),
                self.last_seen
            ));
        }
        for (i, (&e, &(h, a))) in self.ewma.iter().zip(&self.last_seen).enumerate() {
            if !(0.0..=1.0).contains(&e) {
                return Err(format!(
                    "SM {i}: EWMA miss-rate estimate {e} outside [0, 1] (ewma: {:?})",
                    self.ewma
                ));
            }
            if h > a {
                return Err(format!(
                    "SM {i}: observed {h} hits out of only {a} accesses (table: {:?})",
                    self.last_seen
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(free: u8, hits: u64, total: u64) -> SmSnapshot {
        SmSnapshot {
            free_slots: free,
            tlb_hits: hits,
            tlb_accesses: total,
        }
    }

    #[test]
    fn prefers_low_miss_rate_sms() {
        let mut s = TlbAwareScheduler::new();
        // Establish the counter baseline, then show loaded counters.
        s.pick_sm(&[snap(0, 0, 0), snap(0, 0, 0), snap(0, 0, 0)]);
        let sms = vec![
            snap(1, 0, 100),  // 100% miss
            snap(1, 95, 100), // 5% miss
            snap(1, 90, 100), // 10% miss
        ];
        assert_eq!(s.pick_sm(&sms), Some(1));
        assert_eq!(s.pick_sm(&sms), Some(2));
        // Round-robin wraps; SM 0 still disqualified, SM 1 picked again.
        assert_eq!(s.pick_sm(&sms), Some(1));
    }

    #[test]
    fn miss_rate_window_is_instantaneous() {
        let mut s = TlbAwareScheduler::new();
        s.pick_sm(&[snap(0, 0, 0), snap(0, 0, 0)]);
        // SM 0 historically awful, SM 1 historically perfect.
        s.pick_sm(&[snap(0, 0, 1000), snap(0, 1000, 1000)]);
        // Recent window reverses: SM 0 now hits, SM 1 now thrashes. After
        // a couple of windows the EWMA catches up and SM 0 qualifies
        // first (it is also first in round-robin order).
        for _ in 0..4 {
            s.pick_sm(&[snap(0, 500, 1500), snap(0, 1000, 2000)]);
        }
        let pick = s.pick_sm(&[snap(1, 1000, 2000), snap(1, 1000, 3000)]);
        assert_eq!(pick, Some(0));
    }

    #[test]
    fn falls_back_to_round_robin_when_none_qualify() {
        let mut s = TlbAwareScheduler::new();
        s.pick_sm(&[snap(0, 0, 0), snap(0, 0, 0), snap(0, 0, 0)]);
        // Only the thrashing SM has room: fallback must still place.
        let sms = vec![snap(1, 0, 100), snap(0, 100, 100), snap(0, 100, 100)];
        assert_eq!(s.pick_sm(&sms), Some(0));
    }

    #[test]
    fn idle_sms_look_attractive() {
        let mut s = TlbAwareScheduler::new();
        s.pick_sm(&[snap(0, 0, 0), snap(0, 0, 0)]);
        // An SM with no TLB traffic keeps a zero instantaneous estimate
        // and should be chosen over one that is thrashing.
        let sms = vec![snap(1, 10, 100), snap(1, 0, 0)];
        assert_eq!(s.pick_sm(&sms), Some(1));
    }

    #[test]
    fn uniform_miss_rates_degenerate_to_round_robin() {
        let mut s = TlbAwareScheduler::new();
        let sms = vec![snap(2, 50, 100); 4];
        let picks: Vec<_> = (0..4).map(|_| s.pick_sm(&sms).unwrap()).collect();
        assert_eq!(picks, vec![0, 1, 2, 3]);
    }

    #[test]
    fn none_when_all_full() {
        let mut s = TlbAwareScheduler::new();
        assert_eq!(s.pick_sm(&[snap(0, 0, 0)]), None);
        assert_eq!(s.pick_sm(&[]), None);
    }

    #[test]
    fn status_table_matches_paper_overhead() {
        // 16 entries x (4-bit SM id + two 32-bit counters) = 136 bytes.
        assert_eq!(TlbAwareScheduler::status_table_bytes(16), 136);
    }

    #[test]
    fn tolerance_admits_marginal_sms() {
        let mut strict = TlbAwareScheduler::new();
        let mut lax = TlbAwareScheduler::with_tolerance(0.5);
        let zero = [snap(0, 0, 0), snap(0, 0, 0)];
        strict.pick_sm(&zero);
        lax.pick_sm(&zero);
        let sms = vec![snap(1, 40, 100), snap(1, 60, 100)];
        // Windowed miss: SM0 60%, SM1 40%, mean 50%. Strict skips SM0,
        // lax takes it (first in round-robin order).
        assert_eq!(strict.pick_sm(&sms), Some(1));
        assert_eq!(lax.pick_sm(&sms), Some(0));
    }

    #[test]
    fn invariants_hold_through_normal_operation() {
        let mut s = TlbAwareScheduler::new();
        let sms = vec![snap(1, 50, 100); 4];
        for _ in 0..10 {
            s.pick_sm(&sms);
            s.check_invariants(4).expect("table stays consistent");
        }
    }

    #[test]
    fn oversized_status_table_is_reported() {
        let mut s = TlbAwareScheduler::new();
        // Observe a 32-SM machine, then claim the GPU only has 4 SMs: the
        // 32-entry table no longer matches the hardware.
        s.pick_sm(&vec![snap(1, 0, 0); 32]);
        let err = s.check_invariants(4).unwrap_err();
        assert!(err.contains("32"), "unexpected message: {err}");
    }

    #[test]
    fn corrupted_ewma_is_reported() {
        let mut s = TlbAwareScheduler::new();
        s.pick_sm(&[snap(1, 0, 0); 2]);
        s.ewma[1] = f64::NAN;
        assert!(s.check_invariants(2).is_err());
    }

    #[test]
    fn reset_restarts() {
        let mut s = TlbAwareScheduler::new();
        let sms = vec![snap(2, 0, 0); 3];
        s.pick_sm(&sms);
        s.reset();
        assert_eq!(s.pick_sm(&sms), Some(0));
    }
}
