//! Experiment presets: the exact configurations evaluated in the paper's
//! Section V (and the ablations DESIGN.md calls out).

use crate::partitioned::{PartitionedTlb, PartitionedTlbConfig};
use crate::scheduler::TlbAwareScheduler;
use gpu_sim::{GpuConfig, L2Policy, SimReport, Simulator};
use std::fmt;
use tlb::{CompressedTlb, CompressionConfig, SetAssocTlb, TlbConfig, TranslationBuffer};
use vmem::PageSize;
use workloads::{BenchmarkSpec, Scale, Workload, WorkloadCache};

/// A named simulator configuration from the paper's evaluation.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Mechanism {
    /// Round-robin TB scheduling + VPN-indexed L1 TLB (the paper's
    /// baseline).
    Baseline,
    /// Baseline with a 256-entry L1 TLB (Figure 2's second bar).
    LargeTlb,
    /// TLB-aware scheduling only (the "+2.3%" result).
    Scheduling,
    /// TLB-aware scheduling + TB-id partitioning, no sharing (the bar
    /// that *degrades* most benchmarks, +14.3% time on average).
    SchedPartition,
    /// The full proposal: scheduling + partitioning + dynamic adjacent
    /// set sharing (the "-12.5% execution time" result).
    Full,
    /// Partitioning without the scheduler (ablation).
    PartitionOnly,
    /// PACT'20 TLB compression with round-robin scheduling (Figure 12's
    /// normalization baseline).
    Compression,
    /// The full proposal on top of TLB compression (Figure 12's subject:
    /// "+10.4% over compression alone").
    FullWithCompression,
    /// The full proposal plus translation-reuse-aware (TB-clustered) warp
    /// scheduling — the paper's §VII future work, implemented here.
    FullWithWarpClustering,
    /// The full proposal with MASK-style per-app L2 TLB fill tokens and
    /// bypass (multi-tenant baseline; only meaningful under co-runs).
    MaskTokens,
    /// The full proposal with a sub-entry-sharing shared L2 TLB
    /// (multi-tenant alternative; only meaningful under co-runs).
    SubEntrySharing,
}

impl Mechanism {
    /// All mechanisms in presentation order.
    pub fn all() -> [Mechanism; 11] {
        [
            Mechanism::Baseline,
            Mechanism::LargeTlb,
            Mechanism::Scheduling,
            Mechanism::SchedPartition,
            Mechanism::Full,
            Mechanism::PartitionOnly,
            Mechanism::Compression,
            Mechanism::FullWithCompression,
            Mechanism::FullWithWarpClustering,
            Mechanism::MaskTokens,
            Mechanism::SubEntrySharing,
        ]
    }

    /// The four bars of Figures 10 and 11.
    pub fn figure10() -> [Mechanism; 4] {
        [
            Mechanism::Baseline,
            Mechanism::Scheduling,
            Mechanism::SchedPartition,
            Mechanism::Full,
        ]
    }

    /// Short label used in report tables.
    pub fn label(self) -> &'static str {
        match self {
            Mechanism::Baseline => "baseline",
            Mechanism::LargeTlb => "l1-256",
            Mechanism::Scheduling => "sched",
            Mechanism::SchedPartition => "sched+part",
            Mechanism::Full => "sched+part+share",
            Mechanism::PartitionOnly => "part-only",
            Mechanism::Compression => "compression",
            Mechanism::FullWithCompression => "ours+compression",
            Mechanism::FullWithWarpClustering => "ours+warp-clustered",
            Mechanism::MaskTokens => "ours+mask-tokens",
            Mechanism::SubEntrySharing => "ours+sub-entry",
        }
    }

    /// Builds a simulator implementing this mechanism.
    pub fn simulator(self, mut config: GpuConfig) -> Simulator {
        if self == Mechanism::LargeTlb {
            config = config.with_l1_tlb(TlbConfig::dac23_l1_256());
        }
        // The multi-tenant variants keep the full proposal's L1 and swap
        // the shared L2 TLB policy; the quota/sub counts are sized for the
        // 512-entry DAC'23 L2 split across 4 slices (128 entries each).
        config = match self {
            Mechanism::MaskTokens => config.with_l2_policy(L2Policy::MaskTokens { quota: 64 }),
            Mechanism::SubEntrySharing => config.with_l2_policy(L2Policy::SubEntry { subs: 2 }),
            _ => config,
        };
        let geometry = config.l1_tlb;
        let sim = Simulator::new(config);
        let sim = match self {
            Mechanism::Baseline | Mechanism::LargeTlb | Mechanism::PartitionOnly
            | Mechanism::Compression => sim,
            Mechanism::Scheduling
            | Mechanism::SchedPartition
            | Mechanism::Full
            | Mechanism::FullWithCompression
            | Mechanism::FullWithWarpClustering
            | Mechanism::MaskTokens
            | Mechanism::SubEntrySharing => {
                sim.with_tb_scheduler(Box::new(TlbAwareScheduler::new()))
            }
        };
        let sim = match self {
            Mechanism::FullWithWarpClustering => sim.with_warp_scheduler_factory(Box::new(|| {
                Box::new(crate::warp_sched::TbClusteredWarpScheduler::new())
                    as Box<dyn gpu_sim::WarpScheduler>
            })),
            _ => sim,
        };
        match self {
            Mechanism::Baseline | Mechanism::LargeTlb | Mechanism::Scheduling => {
                sim.with_l1_tlb_factory(Box::new(move |_| {
                    Box::new(SetAssocTlb::new(geometry)) as Box<dyn TranslationBuffer>
                }))
            }
            Mechanism::SchedPartition | Mechanism::PartitionOnly => {
                sim.with_l1_tlb_factory(Box::new(move |_| {
                    Box::new(PartitionedTlb::new(PartitionedTlbConfig {
                        geometry,
                        ..PartitionedTlbConfig::partition_only()
                    })) as Box<dyn TranslationBuffer>
                }))
            }
            Mechanism::Full
            | Mechanism::FullWithWarpClustering
            | Mechanism::MaskTokens
            | Mechanism::SubEntrySharing => {
                sim.with_l1_tlb_factory(Box::new(move |_| {
                    Box::new(PartitionedTlb::new(PartitionedTlbConfig {
                        geometry,
                        ..PartitionedTlbConfig::with_sharing()
                    })) as Box<dyn TranslationBuffer>
                }))
            }
            Mechanism::Compression => sim.with_l1_tlb_factory(Box::new(move |_| {
                Box::new(CompressedTlb::new(geometry, CompressionConfig::pact20()))
                    as Box<dyn TranslationBuffer>
            })),
            Mechanism::FullWithCompression => sim.with_l1_tlb_factory(Box::new(move |_| {
                Box::new(PartitionedTlb::new(PartitionedTlbConfig {
                    geometry,
                    compression: Some(CompressionConfig::pact20()),
                    ..PartitionedTlbConfig::with_sharing()
                })) as Box<dyn TranslationBuffer>
            })),
        }
    }
}

impl fmt::Display for Mechanism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Runs one benchmark under one mechanism (4 KiB pages).
pub fn run_benchmark(
    spec: &BenchmarkSpec,
    scale: Scale,
    seed: u64,
    mechanism: Mechanism,
    config: GpuConfig,
) -> SimReport {
    run_benchmark_with_page_size(spec, scale, seed, mechanism, config, PageSize::Small)
}

/// Runs one benchmark under one mechanism with an explicit page size (the
/// Section V huge-page study).
pub fn run_benchmark_with_page_size(
    spec: &BenchmarkSpec,
    scale: Scale,
    seed: u64,
    mechanism: Mechanism,
    config: GpuConfig,
    page_size: PageSize,
) -> SimReport {
    run_workload(spec.generate_with_page_size(scale, seed, page_size), mechanism, config)
}

/// [`run_benchmark`], but serving the workload from `cache` — the
/// experiment grid re-runs each benchmark under many mechanisms, and the
/// cache generates the trace once per `(benchmark, scale, seed,
/// page_size)` instead of once per grid cell.
pub fn run_benchmark_cached(
    cache: &WorkloadCache,
    spec: &BenchmarkSpec,
    scale: Scale,
    seed: u64,
    mechanism: Mechanism,
    config: GpuConfig,
) -> SimReport {
    run_benchmark_cached_with_page_size(
        cache,
        spec,
        scale,
        seed,
        mechanism,
        config,
        PageSize::Small,
    )
}

/// [`run_benchmark_with_page_size`], serving the workload from `cache`.
///
/// With a memory-only cache this replays the shared in-RAM workload;
/// with a disk-backed cache (`WorkloadCache::with_disk`, the
/// `--trace-cache` flag) or a preloaded trace (`--trace`) each run
/// streams TBs from the `trace/v1` file instead, keeping peak RSS flat.
/// The two paths produce byte-identical reports (pinned by
/// `bench/tests/trace_equiv.rs`); a trace that fails mid-replay falls
/// back to the generated workload so results never change.
pub fn run_benchmark_cached_with_page_size(
    cache: &WorkloadCache,
    spec: &BenchmarkSpec,
    scale: Scale,
    seed: u64,
    mechanism: Mechanism,
    config: GpuConfig,
    page_size: PageSize,
) -> SimReport {
    let source = cache.get_source_with_page_size(spec, scale, seed, page_size);
    match mechanism.simulator(config.clone()).run_source(source) {
        Ok(mut report) => {
            report.scheduler = mechanism.label().to_owned();
            report
        }
        Err(e) => {
            eprintln!(
                "warning: trace replay of {} {scale} failed ({e}); regenerating",
                spec.name
            );
            run_workload(
                cache.get_with_page_size(spec, scale, seed, page_size),
                mechanism,
                config,
            )
        }
    }
}

fn run_workload(workload: Workload, mechanism: Mechanism, config: GpuConfig) -> SimReport {
    let mut report = mechanism.simulator(config).run(workload);
    report.scheduler = mechanism.label().to_owned();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::registry;

    fn spec(name: &str) -> BenchmarkSpec {
        registry().into_iter().find(|s| s.name == name).unwrap()
    }

    #[test]
    fn all_mechanisms_run_gemm() {
        for m in Mechanism::all() {
            let r = run_benchmark(&spec("gemm"), Scale::Test, 42, m, GpuConfig::dac23_baseline());
            assert!(r.total_cycles > 0, "{m} produced no cycles");
            assert!(r.l1_tlb_hit_rate() >= 0.0);
        }
    }

    #[test]
    fn figure10_has_four_bars() {
        let bars = Mechanism::figure10();
        assert_eq!(bars.len(), 4);
        assert_eq!(bars[0], Mechanism::Baseline);
        assert_eq!(bars[3], Mechanism::Full);
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<&str> =
            Mechanism::all().iter().map(|m| m.label()).collect();
        assert_eq!(labels.len(), Mechanism::all().len());
    }

    #[test]
    fn large_tlb_improves_hit_rate_on_thrashy_benchmark() {
        let base = run_benchmark(
            &spec("atax"),
            Scale::Test,
            42,
            Mechanism::Baseline,
            GpuConfig::dac23_baseline(),
        );
        let big = run_benchmark(
            &spec("atax"),
            Scale::Test,
            42,
            Mechanism::LargeTlb,
            GpuConfig::dac23_baseline(),
        );
        assert!(big.l1_tlb_hit_rate() >= base.l1_tlb_hit_rate());
    }

    #[test]
    fn deterministic_per_mechanism() {
        let a = run_benchmark(
            &spec("bfs"),
            Scale::Test,
            42,
            Mechanism::Full,
            GpuConfig::dac23_baseline(),
        );
        let b = run_benchmark(
            &spec("bfs"),
            Scale::Test,
            42,
            Mechanism::Full,
            GpuConfig::dac23_baseline(),
        );
        assert_eq!(a.total_cycles, b.total_cycles);
    }

    #[test]
    fn reports_carry_mechanism_label() {
        let r = run_benchmark(
            &spec("mvt"),
            Scale::Test,
            42,
            Mechanism::SchedPartition,
            GpuConfig::dac23_baseline(),
        );
        assert_eq!(r.scheduler, "sched+part");
    }
}
