//! TB-throttling extension (paper §IV-A: "our approach can be extended to
//! work with TB throttling to further reduce the TLB thrashing", citing
//! Kayiran et al., PACT'13).
//!
//! [`ThrottlingTlbAwareScheduler`] wraps the TLB-aware policy with a
//! DYNCTA-style admission gate: when *every* SM's instantaneous L1 TLB
//! miss rate exceeds a threshold, new TBs are deferred — reducing the
//! number of concurrent TBs and hence the interference — until some SM's
//! miss rate recovers. SMs that are running few TBs are always allowed to
//! take more (forward progress is never blocked: an idle SM accepts TBs
//! unconditionally).

use crate::scheduler::TlbAwareScheduler;
use gpu_sim::{SmSnapshot, TbScheduler};

/// A TLB-aware TB scheduler with DYNCTA-style thrash throttling.
///
/// # Example
///
/// ```
/// use gpu_sim::{SmSnapshot, TbScheduler};
/// use orchestrated_tlb::ThrottlingTlbAwareScheduler;
///
/// let mut sched = ThrottlingTlbAwareScheduler::new(0.8);
/// // Idle SMs accept TBs unconditionally.
/// let idle = vec![SmSnapshot { free_slots: 16, ..Default::default() }; 2];
/// assert!(sched.pick_sm(&idle).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct ThrottlingTlbAwareScheduler {
    inner: TlbAwareScheduler,
    /// Miss-rate threshold above which a busy SM refuses additional TBs.
    threshold: f64,
    /// Observed miss rates from the inner policy's last decision, kept
    /// here for the throttling gate.
    last_rates: Vec<f64>,
}

impl ThrottlingTlbAwareScheduler {
    /// Creates the scheduler with the given throttle threshold (e.g.
    /// `0.8`: SMs missing more than 80% of L1 TLB lookups stop accepting
    /// TBs while they still have other TBs resident).
    ///
    /// # Panics
    ///
    /// Panics unless `threshold` is within `(0, 1]`.
    pub fn new(threshold: f64) -> Self {
        assert!(
            threshold > 0.0 && threshold <= 1.0,
            "threshold must be in (0, 1]"
        );
        ThrottlingTlbAwareScheduler {
            inner: TlbAwareScheduler::new(),
            threshold,
            last_rates: Vec::new(),
        }
    }

    /// The throttle threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    fn update_rates(&mut self, sms: &[SmSnapshot]) {
        if self.last_rates.len() != sms.len() {
            self.last_rates = vec![0.0; sms.len()];
        }
        // Cheap instantaneous proxy: lifetime miss rate is fine for the
        // gate (the inner policy still uses its EWMA window for the
        // ordering decision).
        for (r, s) in self.last_rates.iter_mut().zip(sms) {
            *r = s.miss_rate();
        }
    }
}

impl TbScheduler for ThrottlingTlbAwareScheduler {
    fn pick_sm(&mut self, sms: &[SmSnapshot]) -> Option<usize> {
        self.update_rates(sms);
        // Gate: drop SMs that are already thrashing *and* busy. An SM
        // with all slots free must stay eligible or the GPU could idle
        // with pending TBs.
        let gated: Vec<SmSnapshot> = sms
            .iter()
            .zip(&self.last_rates)
            .map(|(s, &rate)| {
                let busy = s.free_slots == 0 || s.tlb_accesses > 0;
                let fully_idle = s.free_slots > 0 && s.tlb_accesses == 0;
                if busy && !fully_idle && rate > self.threshold {
                    // Pretend the SM is full so the inner policy skips it.
                    SmSnapshot {
                        free_slots: 0,
                        ..*s
                    }
                } else {
                    *s
                }
            })
            .collect();
        match self.inner.pick_sm(&gated) {
            Some(sm) => Some(sm),
            // Everything gated: defer (the engine retries after the next
            // completion) unless no TB is running anywhere, in which case
            // fall through ungated to guarantee progress.
            None => {
                let any_room = sms.iter().any(SmSnapshot::has_room);
                let any_running = sms.iter().any(|s| s.free_slots == 0);
                if any_room && !any_running {
                    self.inner.pick_sm(sms)
                } else {
                    None
                }
            }
        }
    }

    fn name(&self) -> &str {
        "tlb-aware+throttle"
    }

    fn reset(&mut self) {
        self.inner.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(free: u8, hits: u64, total: u64) -> SmSnapshot {
        SmSnapshot {
            free_slots: free,
            tlb_hits: hits,
            tlb_accesses: total,
        }
    }

    #[test]
    fn idle_sms_always_accept() {
        let mut s = ThrottlingTlbAwareScheduler::new(0.5);
        let sms = vec![snap(16, 0, 0), snap(16, 0, 0)];
        assert_eq!(s.pick_sm(&sms), Some(0));
    }

    #[test]
    fn thrashing_busy_sms_are_deferred() {
        let mut s = ThrottlingTlbAwareScheduler::new(0.5);
        // Both SMs have room but are thrashing hard with TBs resident
        // (accesses > 0 and another busy SM exists).
        let sms = vec![snap(2, 10, 100), snap(0, 10, 100)];
        assert_eq!(s.pick_sm(&sms), None, "defer while thrashing");
    }

    #[test]
    fn healthy_sm_still_accepts() {
        let mut s = ThrottlingTlbAwareScheduler::new(0.5);
        // Establish baseline, then present a healthy SM 1.
        s.pick_sm(&[snap(0, 0, 0), snap(0, 0, 0)]);
        let sms = vec![snap(1, 10, 100), snap(1, 90, 100)];
        assert_eq!(s.pick_sm(&sms), Some(1));
    }

    #[test]
    fn progress_guaranteed_when_nothing_running() {
        let mut s = ThrottlingTlbAwareScheduler::new(0.1);
        // Thrashing history but every slot free (nothing running): must
        // still place to avoid a stall.
        let sms = vec![snap(16, 10, 100), snap(16, 10, 100)];
        assert!(s.pick_sm(&sms).is_some());
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn bad_threshold_rejected() {
        let _ = ThrottlingTlbAwareScheduler::new(0.0);
    }

    #[test]
    fn name_and_reset() {
        let mut s = ThrottlingTlbAwareScheduler::new(0.9);
        assert_eq!(s.name(), "tlb-aware+throttle");
        assert!((s.threshold() - 0.9).abs() < 1e-12);
        s.reset();
    }
}
