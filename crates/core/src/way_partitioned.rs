//! Way-partitioning comparator.
//!
//! The classic alternative to the paper's TB-id *set* indexing: keep the
//! baseline VPN set index, but give each TB a private subset of the
//! *ways* for replacement (way `w` belongs to TB slots with `slot ≡ w mod
//! G`). Lookups still search every way (tags disambiguate), so there is
//! no multi-set probe overhead and no full-VPN storage requirement — but
//! each TB's effective associativity shrinks and, unlike the paper's
//! design, hot sets cannot borrow capacity from cold ones. Used by the
//! partitioning-strategy ablation.

use tlb::{TlbConfig, TlbOutcome, TlbRequest, TlbStats, TranslationBuffer};
use vmem::{Ppn, Vpn};

#[derive(Copy, Clone, Debug, Default)]
struct Way {
    valid: bool,
    vpn: Vpn,
    ppn: Ppn,
    stamp: u64,
}

/// A VPN-indexed TLB whose ways are statically partitioned among TB
/// slots.
///
/// # Example
///
/// ```
/// use orchestrated_tlb::WayPartitionedTlb;
/// use tlb::{TlbConfig, TlbRequest, TranslationBuffer};
/// use vmem::{Ppn, Vpn};
///
/// let mut t = WayPartitionedTlb::new(TlbConfig::dac23_l1());
/// t.set_concurrent_tbs(4);
/// t.insert(&TlbRequest::new(Vpn::new(7), 0), Ppn::new(9));
/// // Any TB can *hit* on the entry (tags disambiguate)...
/// assert!(t.lookup(&TlbRequest::new(Vpn::new(7), 3)).hit);
/// ```
#[derive(Debug, Clone)]
pub struct WayPartitionedTlb {
    config: TlbConfig,
    ways: Vec<Way>,
    concurrent_tbs: u8,
    clock: u64,
    stats: TlbStats,
}

impl WayPartitionedTlb {
    /// Creates an empty way-partitioned TLB.
    pub fn new(config: TlbConfig) -> Self {
        WayPartitionedTlb {
            ways: vec![Way::default(); config.entries],
            config,
            concurrent_tbs: 16,
            clock: 0,
            stats: TlbStats::default(),
        }
    }

    /// Way-owner groups: one per TB up to the associativity.
    fn groups(&self) -> usize {
        (self.concurrent_tbs as usize)
            .clamp(1, self.config.associativity)
    }

    fn set_of(&self, vpn: Vpn) -> usize {
        // Mask in u64 before narrowing so the set index is identical on
        // 32-bit hosts.
        (vpn.raw() & (self.config.sets() as u64 - 1)) as usize
    }

    fn set_range(&self, set: usize) -> std::ops::Range<usize> {
        let a = self.config.associativity;
        set * a..(set + 1) * a
    }

    /// Ways of `set` that TB `slot` may replace into.
    fn owned_ways(&self, set: usize, slot: u8) -> impl Iterator<Item = usize> + '_ {
        let g = self.groups();
        let owner = slot as usize % g;
        self.set_range(set).filter(move |w| w % g == owner)
    }

    /// Number of valid entries.
    pub fn occupancy(&self) -> usize {
        self.ways.iter().filter(|w| w.valid).count()
    }
}

impl TranslationBuffer for WayPartitionedTlb {
    fn lookup(&mut self, req: &TlbRequest) -> TlbOutcome {
        self.clock += 1;
        let set = self.set_of(req.vpn);
        let range = self.set_range(set);
        let clock = self.clock;
        for way in &mut self.ways[range] {
            if way.valid && way.vpn == req.vpn {
                way.stamp = clock;
                self.stats.record(true);
                return TlbOutcome::hit(way.ppn, self.config.lookup_latency);
            }
        }
        self.stats.record(false);
        TlbOutcome::miss(self.config.lookup_latency)
    }

    fn insert(&mut self, req: &TlbRequest, ppn: Ppn) {
        self.clock += 1;
        let set = self.set_of(req.vpn);
        let clock = self.clock;
        // Refresh anywhere if present.
        let range = self.set_range(set);
        if let Some(way) = self.ways[range]
            .iter_mut()
            .find(|w| w.valid && w.vpn == req.vpn)
        {
            way.ppn = ppn;
            way.stamp = clock;
            return;
        }
        self.stats.insertions += 1;
        // Replace only within the TB's own ways (LRU, invalid first).
        let victim = self
            .owned_ways(set, req.tb_slot)
            .min_by_key(|&w| (self.ways[w].valid, self.ways[w].stamp))
            .expect("every slot owns at least one way"); // simlint: allow(hot-unwrap, reason = "way_range clamps to at least one way per slot")
        if self.ways[victim].valid {
            self.stats.evictions += 1;
        }
        self.ways[victim] = Way {
            valid: true,
            vpn: req.vpn,
            ppn,
            stamp: clock,
        };
    }

    fn stats(&self) -> TlbStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
    }

    fn flush(&mut self) {
        for w in &mut self.ways {
            w.valid = false;
        }
    }

    fn capacity(&self) -> usize {
        self.config.entries
    }

    fn set_concurrent_tbs(&mut self, tbs: u8) {
        self.concurrent_tbs = tbs.max(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(vpn: u64, slot: u8) -> TlbRequest {
        TlbRequest::new(Vpn::new(vpn), slot)
    }

    #[test]
    fn cross_tb_hits_allowed() {
        let mut t = WayPartitionedTlb::new(TlbConfig::dac23_l1());
        t.set_concurrent_tbs(16);
        t.insert(&req(5, 0), Ppn::new(1));
        for slot in 0..16 {
            assert!(t.lookup(&req(5, slot)).hit, "slot {slot}");
        }
    }

    #[test]
    fn replacement_is_confined_to_owned_ways() {
        // 1 set x 4 ways, 4 TBs: each TB owns exactly one way.
        let mut t = WayPartitionedTlb::new(TlbConfig::new(4, 4, 1));
        t.set_concurrent_tbs(4);
        for slot in 0..4u8 {
            t.insert(&req(100 + slot as u64, slot), Ppn::new(slot as u64));
        }
        assert_eq!(t.occupancy(), 4);
        // TB 0 inserting more pages can only evict its own way; the other
        // TBs' entries survive arbitrarily many TB-0 insertions.
        for i in 0..10u64 {
            t.insert(&req(200 + i, 0), Ppn::new(i));
        }
        for slot in 1..4u8 {
            assert!(
                t.lookup(&req(100 + slot as u64, slot)).hit,
                "TB {slot}'s entry must survive TB 0's thrashing"
            );
        }
        assert!(!t.lookup(&req(100, 0)).hit, "TB 0 evicted its own entry");
    }

    #[test]
    fn more_tbs_than_ways_share_way_groups() {
        let mut t = WayPartitionedTlb::new(TlbConfig::dac23_l1()); // 4-way
        t.set_concurrent_tbs(16);
        // Slots 0 and 4 own the same way group (4-way: owner = slot % 4).
        t.insert(&req(1, 0), Ppn::new(1));
        // Fill slot 4's (same) way with conflicting pages in the same set.
        t.insert(&req(1 + 16, 4), Ppn::new(2));
        // Slot 0's entry was the only occupant of way 0 in that set; the
        // second insert used the same group but the set has one way per
        // group... both pages map to the same set (vpn % 16 == 1).
        let hits = [t.lookup(&req(1, 0)).hit, t.lookup(&req(17, 0)).hit];
        assert_eq!(hits.iter().filter(|&&h| h).count(), 1, "shared way holds one");
    }

    #[test]
    fn lookup_latency_is_base() {
        let mut t = WayPartitionedTlb::new(TlbConfig::dac23_l1());
        t.set_concurrent_tbs(2);
        assert_eq!(t.lookup(&req(9, 0)).latency, 1);
    }

    #[test]
    fn flush_and_stats() {
        let mut t = WayPartitionedTlb::new(TlbConfig::dac23_l1());
        t.insert(&req(1, 0), Ppn::new(1));
        assert!(t.lookup(&req(1, 0)).hit);
        t.flush();
        assert!(!t.lookup(&req(1, 0)).hit);
        assert_eq!(t.stats().hits, 1);
        assert_eq!(t.stats().misses, 1);
        t.reset_stats();
        assert_eq!(t.stats(), TlbStats::default());
        assert_eq!(t.capacity(), 64);
    }
}
