//! The paper's Table I — the qualitative comparison against prior TLB
//! techniques — as queryable data (and the rationale for each row).
//!
//! The paper argues no prior technique simultaneously handles irregular
//! accesses, avoids internal fragmentation, works at the GPU L1 (on the
//! execution critical path), and exploits reuse at TB granularity.

use std::fmt;

/// The capability columns of Table I.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Capabilities {
    /// Works for irregular access patterns (no stride/contiguity needed).
    pub irregular_access: bool,
    /// Avoids internal (intra-page) fragmentation.
    pub no_internal_fragmentation: bool,
    /// Handles strided access patterns.
    pub stride_access: bool,
    /// Deployable at the GPU L1 TLB (latency-tolerable on the critical
    /// path).
    pub suitable_in_gpu_l1: bool,
    /// Exploits translation reuse at thread-block granularity.
    pub reuse_at_tb_level: bool,
}

impl Capabilities {
    /// Number of satisfied columns (0..=5).
    pub fn score(&self) -> u32 {
        u32::from(self.irregular_access)
            + u32::from(self.no_internal_fragmentation)
            + u32::from(self.stride_access)
            + u32::from(self.suitable_in_gpu_l1)
            + u32::from(self.reuse_at_tb_level)
    }
}

/// One row of Table I.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Technique {
    /// Technique name as in Table I.
    pub name: &'static str,
    /// Representative citations from the paper.
    pub citations: &'static str,
    /// The five capability columns.
    pub capabilities: Capabilities,
}

impl fmt::Display for Technique {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = &self.capabilities;
        let mark = |b: bool| if b { "yes" } else { "no" };
        write!(
            f,
            "{:<22} irregular:{:<3} no-frag:{:<3} stride:{:<3} gpu-l1:{:<3} tb-reuse:{:<3}",
            self.name,
            mark(c.irregular_access),
            mark(c.no_internal_fragmentation),
            mark(c.stride_access),
            mark(c.suitable_in_gpu_l1),
            mark(c.reuse_at_tb_level)
        )
    }
}

/// All rows of Table I, in the paper's order (the last row is the paper's
/// own approach).
pub fn table1() -> [Technique; 8] {
    [
        Technique {
            name: "TLB clustering",
            citations: "[3], [4]",
            capabilities: Capabilities {
                no_internal_fragmentation: true,
                ..Default::default()
            },
        },
        Technique {
            name: "TLB range",
            citations: "[5]-[7]",
            capabilities: Capabilities {
                no_internal_fragmentation: true,
                ..Default::default()
            },
        },
        Technique {
            name: "Huge page",
            citations: "[1], [2], [8]",
            capabilities: Capabilities {
                stride_access: true,
                suitable_in_gpu_l1: true,
                ..Default::default()
            },
        },
        Technique {
            name: "Eager paging",
            citations: "[9], [10]",
            capabilities: Capabilities {
                stride_access: true,
                ..Default::default()
            },
        },
        Technique {
            name: "Speculative TLB",
            citations: "[11]",
            capabilities: Capabilities {
                no_internal_fragmentation: true,
                stride_access: true,
                ..Default::default()
            },
        },
        Technique {
            name: "TLB probe",
            citations: "[12]",
            capabilities: Capabilities {
                no_internal_fragmentation: true,
                stride_access: true,
                suitable_in_gpu_l1: true,
                ..Default::default()
            },
        },
        Technique {
            name: "Least-TLB",
            citations: "[13]",
            capabilities: Capabilities {
                irregular_access: true,
                no_internal_fragmentation: true,
                stride_access: true,
                ..Default::default()
            },
        },
        Technique {
            name: "Our approach",
            citations: "(this paper)",
            capabilities: Capabilities {
                irregular_access: true,
                no_internal_fragmentation: true,
                stride_access: true,
                suitable_in_gpu_l1: true,
                reuse_at_tb_level: true,
            },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_rows_in_paper_order() {
        let t = table1();
        assert_eq!(t.len(), 8);
        assert_eq!(t[0].name, "TLB clustering");
        assert_eq!(t[7].name, "Our approach");
    }

    #[test]
    fn only_the_proposal_satisfies_all_columns() {
        let t = table1();
        for row in &t[..7] {
            assert!(
                row.capabilities.score() < 5,
                "{} should not satisfy every column",
                row.name
            );
        }
        assert_eq!(t[7].capabilities.score(), 5);
    }

    #[test]
    fn only_the_proposal_and_least_tlb_handle_irregular() {
        let irregular: Vec<&str> = table1()
            .iter()
            .filter(|t| t.capabilities.irregular_access)
            .map(|t| t.name)
            .collect();
        assert_eq!(irregular, ["Least-TLB", "Our approach"]);
    }

    #[test]
    fn only_the_proposal_exploits_tb_reuse() {
        let tb: Vec<&str> = table1()
            .iter()
            .filter(|t| t.capabilities.reuse_at_tb_level)
            .map(|t| t.name)
            .collect();
        assert_eq!(tb, ["Our approach"]);
    }

    #[test]
    fn display_renders_every_column() {
        let s = table1()[7].to_string();
        for col in ["irregular", "no-frag", "stride", "gpu-l1", "tb-reuse"] {
            assert!(s.contains(col));
        }
    }
}
