//! The paper's TB-id-partitioned L1 TLB with dynamic adjacent set sharing
//! (§IV-B, Figures 8 and 9).
//!
//! Instead of indexing sets with VPN bits, the set index is derived from
//! the hardware TB id (`tb_slot`): with `S` sets and `N` concurrent TBs,
//! TB `i` owns sets `⌊i·S/N⌋ .. ⌊(i+1)·S/N⌋` (one set each when `N = S =
//! 16`, the paper's common case; multiple TBs alias onto one set when `N >
//! S`, footnote 1). Because the set index no longer comes from the
//! address, every entry stores the **full VPN**.
//!
//! **Lookup** probes every set mapped to the TB (each probed set costs one
//! extra base latency when `per_set_lookup_overhead` is on — the paper
//! includes this overhead in its results). **Insertion** fills the TB's
//! own sets; when they are full, the LRU victim *spills* into an empty way
//! of the **adjacent TB's** sets and that TB's 1-bit sharing flag is set,
//! after which lookups also probe the neighbour's sets (Figure 9). Flags
//! reset when the TB occupying the shared sets finishes. Entries are
//! deliberately **not** flushed on TB completion, preserving inter-TB
//! reuse.
//!
//! With [`PartitionedTlbConfig::compression`] set, each way additionally
//! holds a PACT'20-style compressed run (the Figure 12 "ours +
//! compression" configuration); `None` gives plain single-page entries.

use std::fmt::Write as _;
use tlb::{
    CompressionConfig, InvariantViolation, PerAsidStats, TlbConfig, TlbOutcome, TlbRequest,
    TlbStats, TranslationBuffer,
};
use vmem::{Asid, Ppn, Vpn};

/// How TBs may share each other's TLB sets (paper §IV-B).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub enum SharingPolicy {
    /// No sharing: strict TB-id partitioning.
    None,
    /// The paper's design: a 1-bit flag per TB; an oversubscribed TB
    /// spills its victim into the adjacent TB's sets and the flag makes
    /// its lookups search there too.
    #[default]
    Adjacent,
    /// The paper's discussed-but-deferred alternative: a per-TB counter;
    /// the neighbour's sets are searched only after `threshold` spills,
    /// filtering one-off spills out of the lookup path.
    AdjacentCounter {
        /// Spills required before the sharing flag engages.
        threshold: u8,
    },
    /// The paper's *rejected* alternative: any TB may spill anywhere and
    /// every lookup searches all sets — maximal capacity, but the
    /// multi-set probe overhead grows with the whole TLB (the reason the
    /// paper sticks to adjacent sharing). Provided for the ablation.
    AllToAll,
}

impl SharingPolicy {
    /// Whether spilling is enabled at all.
    fn spills(self) -> bool {
        self != SharingPolicy::None
    }
}

/// Configuration of the partitioned TLB.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PartitionedTlbConfig {
    /// Underlying geometry (entries, ways, base latency) — Table III's
    /// 64-entry 4-way L1 by default.
    pub geometry: TlbConfig,
    /// Dynamic set-sharing policy (the paper's full design uses
    /// [`SharingPolicy::Adjacent`]).
    pub sharing: SharingPolicy,
    /// Charge one base latency per probed set (the multi-set lookup
    /// overhead the paper discusses); `false` models ideal compactors.
    pub per_set_lookup_overhead: bool,
    /// A spilled victim may displace a neighbour entry only when that
    /// entry has been idle at least this many TLB events longer than the
    /// victim — so sharing balances *under-used* sets (Figure 9) without
    /// letting two busy neighbours cannibalize each other.
    pub displacement_margin: u64,
    /// Optionally compress contiguous translations within each way
    /// (PACT'20 model) for the Figure 12 combination study.
    pub compression: Option<CompressionConfig>,
}

impl PartitionedTlbConfig {
    /// Partitioning only (the paper's "TLB partitioning" bar).
    pub fn partition_only() -> Self {
        PartitionedTlbConfig {
            geometry: TlbConfig::dac23_l1(),
            sharing: SharingPolicy::None,
            per_set_lookup_overhead: true,
            displacement_margin: 512,
            compression: None,
        }
    }

    /// Partitioning plus dynamic adjacent set sharing (the paper's full
    /// design).
    pub fn with_sharing() -> Self {
        PartitionedTlbConfig {
            sharing: SharingPolicy::Adjacent,
            ..Self::partition_only()
        }
    }
}

impl Default for PartitionedTlbConfig {
    fn default() -> Self {
        Self::with_sharing()
    }
}

/// Per-TB-slot record of the last slow-path lookup hit. The memo is only
/// trusted while `epoch` still equals the TLB's `struct_epoch`: every
/// operation that can change *anything* a tag walk observes — residency,
/// sharing flags, spill counters, set groups — bumps the epoch, so a
/// matching memo proves the walk would find the same way with the same
/// probe count. Purely a host-side accelerator; never architectural.
#[derive(Copy, Clone, Debug)]
struct LookupMemo {
    /// Address space the memo was armed for; a slot re-used by another
    /// app must never replay a stale memo.
    asid: Asid,
    vpn: Vpn,
    way: u32,
    /// `searchable_sets(asid, tb).len()` at memo time (reproduces the
    /// multi-set probe latency without recomputing the set list).
    sets_probed: u32,
    /// `struct_epoch` at memo time; 0 never matches (epochs start at 1).
    epoch: u64,
}

impl LookupMemo {
    fn invalid() -> Self {
        LookupMemo {
            asid: Asid::default(),
            vpn: Vpn::new(0),
            way: 0,
            sets_probed: 0,
            epoch: 0,
        }
    }
}

/// Per-ASID dynamic-sharing state: the paper's 1-bit-per-TB sharing
/// register, replicated per address space. Keying the register by
/// `(asid, tb)` instead of bare TB id means one app's spills never widen
/// another app's lookup reach, and a finished TB only releases its own
/// app's licences — cross-app spill rescue is impossible by construction.
#[derive(Copy, Clone, Debug)]
struct ShareState {
    asid: Asid,
    /// Bit `i` set ⇒ this app's TB `i` spilled into TB `i+1 (mod N)`.
    flags: u16,
    /// Per-TB spill counters for [`SharingPolicy::AdjacentCounter`].
    counters: [u8; 16],
}

#[derive(Copy, Clone, Debug, Default)]
struct Way {
    valid: bool,
    /// Address space this translation belongs to; included in the tag
    /// compare so co-running apps never hit each other's entries.
    asid: Asid,
    /// Run base VPN (the full VPN itself when compression is off).
    base_vpn: Vpn,
    /// PPN of the run's base page (or the literal PPN, see `literal`).
    base_ppn: Ppn,
    /// Valid pages within the run (bit 0 alone when compression is off).
    mask: u32,
    /// Entry holds exactly one translation whose PPN is `base_ppn`
    /// verbatim (PPN not expressible as run base + offset).
    literal: bool,
    stamp: u64,
    /// TB slot responsible for this entry's placement: the inserting TB,
    /// the spilling TB for rescued victims, or the set's natural owner
    /// after adoption (see `on_tb_finish`). The sanitizer checks that
    /// every entry sits inside its owner's set group unless the owner's
    /// sharing flag licenses the neighbour placement.
    owner: u8,
}

/// The TB-id-partitioned, full-VPN-tagged L1 TLB with dynamic adjacent
/// set sharing.
///
/// # Example
///
/// ```
/// use orchestrated_tlb::{PartitionedTlb, PartitionedTlbConfig};
/// use tlb::{TlbRequest, TranslationBuffer};
/// use vmem::{Ppn, Vpn};
///
/// let mut tlb = PartitionedTlb::new(PartitionedTlbConfig::with_sharing());
/// tlb.set_concurrent_tbs(16); // one set per TB
/// let req = TlbRequest::new(Vpn::new(0x1234), 3);
/// tlb.insert(&req, Ppn::new(7));
/// assert!(tlb.lookup(&req).hit);
/// // A different TB probing the same page misses: its sets are disjoint.
/// assert!(!tlb.lookup(&TlbRequest::new(Vpn::new(0x1234), 4)).hit);
/// ```
#[derive(Debug, Clone)]
pub struct PartitionedTlb {
    cfg: PartitionedTlbConfig,
    ways: Vec<Way>,
    concurrent_tbs: u8,
    /// Per-app sharing registers, sorted by ASID (see [`ShareState`]).
    share: Vec<ShareState>,
    clock: u64,
    stats: TlbStats,
    /// Per-app stats; evictions are attributed to the victim's ASID,
    /// everything else to the requester's. Sums to `stats`.
    per_asid: PerAsidStats,
    /// Victims rescued into a neighbour's way.
    spills: u64,
    /// Bumped by every structural mutation (insert, flush, TB lifecycle);
    /// guards the per-TB lookup memos. Starts at 1 so the all-zero
    /// [`LookupMemo::invalid`] never matches.
    struct_epoch: u64,
    /// Last slow-path hit per TB slot (index = normalized slot).
    memo: Vec<LookupMemo>,
    /// Lookups served by the memo fast path.
    fastpath: u64,
    /// Fast path enable (the differential twin runs with it off).
    fastpath_on: bool,
}

impl PartitionedTlb {
    /// Creates an empty partitioned TLB.
    ///
    /// # Panics
    ///
    /// Panics if a compression degree larger than 32 or not a power of two
    /// is configured.
    pub fn new(cfg: PartitionedTlbConfig) -> Self {
        if let Some(c) = cfg.compression {
            assert!(
                c.degree.is_power_of_two() && c.degree <= 32,
                "compression degree must be a power of two <= 32"
            );
        }
        PartitionedTlb {
            ways: vec![Way::default(); cfg.geometry.entries],
            cfg,
            concurrent_tbs: 16,
            share: Vec::new(),
            clock: 0,
            stats: TlbStats::default(),
            per_asid: PerAsidStats::default(),
            spills: 0,
            struct_epoch: 1,
            memo: vec![LookupMemo::invalid(); 16],
            fastpath: 0,
            fastpath_on: true,
        }
    }

    /// Enables or disables the exact MRU lookup fast path (on by default;
    /// the differential proptest drives a disabled twin to prove the two
    /// paths are bit-identical).
    pub fn set_fastpath(&mut self, on: bool) {
        self.fastpath_on = on;
    }

    /// The configuration in use.
    pub fn config(&self) -> &PartitionedTlbConfig {
        &self.cfg
    }

    /// Union of every app's sharing register (bit `i` = some app's TB `i`
    /// shares into its neighbour). Single-app callers see exactly the
    /// pre-multi-tenant value.
    pub fn sharing_flags(&self) -> u16 {
        self.share.iter().fold(0, |acc, s| acc | s.flags)
    }

    /// One app's sharing register word (0 if the app never spilled).
    pub fn sharing_flags_of(&self, asid: Asid) -> u16 {
        self.share_of(asid).map_or(0, |s| s.flags)
    }

    fn share_of(&self, asid: Asid) -> Option<&ShareState> {
        self.share.iter().find(|s| s.asid == asid)
    }

    fn share_mut(&mut self, asid: Asid) -> &mut ShareState {
        if let Some(i) = self.share.iter().position(|s| s.asid == asid) {
            return &mut self.share[i];
        }
        let at = self.share.partition_point(|s| s.asid < asid);
        self.share.insert(
            at,
            ShareState {
                asid,
                flags: 0,
                counters: [0; 16],
            },
        );
        &mut self.share[at]
    }

    /// Victim entries rescued into a neighbour's sets so far.
    pub fn spills(&self) -> u64 {
        self.spills
    }

    /// Number of valid ways.
    pub fn occupancy(&self) -> usize {
        self.ways.iter().filter(|w| w.valid).count()
    }

    /// Probes for `vpn` as app `asid`'s TB `tb_slot` would, without
    /// updating stats, stamps, or sharing state (diagnostics; the
    /// differential harness uses it to compare resident contents against
    /// the oracle).
    pub fn peek(&self, asid: Asid, vpn: Vpn, tb_slot: u8) -> Option<Ppn> {
        let tb = self.norm_slot(tb_slot);
        let sets = self.searchable_sets(asid, tb);
        self.find(asid, &sets, vpn).map(|w| {
            let way = &self.ways[w];
            if way.literal {
                way.base_ppn
            } else {
                Ppn::new(way.base_ppn.raw() + self.run_offset(vpn) as u64)
            }
        })
    }

    fn degree(&self) -> u64 {
        self.cfg.compression.map(|c| c.degree as u64).unwrap_or(1)
    }

    fn run_base(&self, vpn: Vpn) -> Vpn {
        Vpn::new(vpn.raw() & !(self.degree() - 1))
    }

    fn run_offset(&self, vpn: Vpn) -> u32 {
        // simlint: allow(lossy-cast, reason = "masked to the compression degree (<= 32) before the cast")
        (vpn.raw() & (self.degree() - 1)) as u32
    }

    fn groups(&self) -> usize {
        self.concurrent_tbs.max(1) as usize
    }

    /// Folds a hardware slot id onto the live TB groups. The engine only
    /// issues slots in `0..concurrent_tbs`, but the TLB is also driven
    /// directly (tests, sanitizer reproducers); an out-of-range id aliases
    /// onto the groups — mirroring the footnote-1 `tb % sets` aliasing —
    /// instead of indexing past the geometry.
    fn norm_slot(&self, tb: u8) -> u8 {
        (tb as usize % self.groups()) as u8
    }

    /// The sets owned by TB `tb` under the current concurrency.
    fn group_of(&self, tb: u8) -> std::ops::Range<usize> {
        let sets = self.cfg.geometry.sets();
        let n = self.groups();
        let tb = tb as usize;
        if n >= sets {
            // More TBs than sets: TBs alias onto single sets (footnote 1).
            let s = tb % sets;
            s..s + 1
        } else {
            (tb * sets / n)..((tb + 1) * sets / n)
        }
    }

    fn ways_of_set(&self, set: usize) -> std::ops::Range<usize> {
        let a = self.cfg.geometry.associativity;
        set * a..(set + 1) * a
    }

    /// The TB slot that naturally owns `set` under the current concurrency
    /// (the smallest slot whose group contains it). Used when re-homing
    /// entries whose placing TB can no longer reach them.
    fn home_tb(&self, set: usize) -> u8 {
        let sets = self.cfg.geometry.sets();
        let n = self.groups();
        if n >= sets {
            set as u8
        } else {
            (0..n as u8)
                .find(|&tb| self.group_of(tb).contains(&set))
                .unwrap_or(0)
        }
    }

    /// Whether app `asid`'s flag for TB `tb` is currently engaged.
    fn flag_engaged(&self, asid: Asid, tb: u8) -> bool {
        let s = self.share_of(asid);
        let bit = s.map_or(0, |s| s.flags) & (1 << (tb as u16 % 16)) != 0;
        match self.cfg.sharing {
            SharingPolicy::None => false,
            SharingPolicy::Adjacent => bit,
            SharingPolicy::AdjacentCounter { threshold } => {
                s.map_or(0, |s| s.counters[tb as usize % 16]) >= threshold
            }
            SharingPolicy::AllToAll => true,
        }
    }

    /// Sets probed by a lookup from app `asid`'s TB `tb`: its own group,
    /// plus the neighbour's when this app's sharing flag is engaged (or
    /// every set under all-to-all sharing).
    fn searchable_sets(&self, asid: Asid, tb: u8) -> Vec<usize> {
        if self.cfg.sharing == SharingPolicy::AllToAll {
            return (0..self.cfg.geometry.sets()).collect();
        }
        let mut sets: Vec<usize> = self.group_of(tb).collect();
        if self.flag_engaged(asid, tb) {
            let neighbour = ((tb as usize + 1) % self.groups()) as u8;
            sets.extend(self.group_of(neighbour));
            sets.sort_unstable();
            sets.dedup();
        }
        sets
    }

    fn lookup_latency(&self, sets_probed: usize, compressed_hit: bool) -> u64 {
        let base = self.cfg.geometry.lookup_latency;
        let probe = if self.cfg.per_set_lookup_overhead {
            base * sets_probed.max(1) as u64
        } else {
            base
        };
        probe
            + if compressed_hit {
                self.cfg
                    .compression
                    .map(|c| c.decompress_latency)
                    .unwrap_or(0)
            } else {
                0
            }
    }

    /// Finds the way holding app `asid`'s translation of `vpn` among
    /// `sets`. The ASID is part of the tag compare: another app's entry
    /// for the same VPN never matches.
    fn find(&self, asid: Asid, sets: &[usize], vpn: Vpn) -> Option<usize> {
        let base = self.run_base(vpn);
        let off = self.run_offset(vpn);
        for &set in sets {
            for w in self.ways_of_set(set) {
                let way = &self.ways[w];
                if way.valid
                    && way.asid == asid
                    && way.base_vpn == base
                    && way.mask & (1 << off) != 0
                {
                    return Some(w);
                }
            }
        }
        None
    }

    /// Places a fully-built entry for `req`'s TB: an empty way in the
    /// candidate set (then anywhere in the group), else evict the
    /// candidate set's LRU way — first trying to rescue the victim into a
    /// neighbour's sets (dynamic sharing, Figure 9). Everything here is
    /// payload-independent: the inserted PPN travels inside `way` but is
    /// never inspected, so deferred sentinel fills choose the exact same
    /// victims as real ones.
    fn place(&mut self, req: &TlbRequest, way: Way) {
        // Candidate set inside the TB's own group, sub-indexed by VPN so
        // runs spread across a multi-set group. The modulo happens in u64
        // *before* narrowing so the chosen set is identical on 32-bit
        // targets.
        let own: Vec<usize> = self.group_of(req.tb_slot).collect();
        let candidate = own[((req.vpn.raw() / self.degree()) % own.len() as u64) as usize];
        // 1. An invalid way in the candidate set, then anywhere in the
        //    group.
        let empty = self
            .ways_of_set(candidate)
            .find(|&w| !self.ways[w].valid)
            .or_else(|| {
                own.iter()
                    .flat_map(|&s| self.ways_of_set(s))
                    .find(|&w| !self.ways[w].valid)
            });
        if let Some(w) = empty {
            self.ways[w] = way;
            return;
        }
        // 2. Evict the LRU way of the candidate set...
        let victim = self
            .ways_of_set(candidate)
            .min_by_key(|&w| self.ways[w].stamp)
            .expect("associativity is non-zero"); // simlint: allow(hot-unwrap, reason = "TlbConfig validates associativity > 0 at construction")
        // ...but first try to rescue it into another TB's sets (dynamic
        // sharing, Figure 9): an empty way if one exists, otherwise a way
        // holding an entry *older* than the victim — the paper's "balance
        // the number of translations across multiple sets" between
        // oversubscribed and under-used neighbours. Rescue is gated on the
        // victim belonging to the spilling app: the licence it would be
        // placed under is `(req.asid, req.tb_slot)`, and another app's
        // lookups never consult that flag, so a cross-app rescue would be
        // permanently unreachable. Cross-app victims die in place instead.
        if self.cfg.sharing.spills() && self.ways[victim].asid == req.asid {
            // Adjacent policies spill into the next TB's group; all-to-all
            // may spill anywhere outside the own group.
            let candidate_sets: Vec<usize> = if self.cfg.sharing == SharingPolicy::AllToAll {
                (0..self.cfg.geometry.sets())
                    .filter(|s| !own.contains(s))
                    .collect()
            } else {
                let neighbour = ((req.tb_slot as usize + 1) % self.groups()) as u8;
                self.group_of(neighbour).collect()
            };
            let slot = candidate_sets
                .iter()
                .flat_map(|&s| self.ways_of_set(s))
                .min_by_key(|&w| (self.ways[w].valid, self.ways[w].stamp));
            let displaceable = slot.is_some_and(|w| {
                !self.ways[w].valid
                    || self.ways[w]
                        .stamp
                        .saturating_add(self.cfg.displacement_margin)
                        < self.ways[victim].stamp
            });
            if displaceable {
                let w = slot.expect("checked by displaceable"); // simlint: allow(hot-unwrap, reason = "displaceable is only true when slot is Some")
                if self.ways[w].valid {
                    let victim_asid = self.ways[w].asid;
                    self.stats.evictions += 1;
                    self.per_asid.entry(victim_asid).evictions += 1;
                }
                self.ways[w] = self.ways[victim];
                // The rescued entry is now placed under the spiller's
                // `(asid, tb)` sharing licence, not wherever its previous
                // owner could reach.
                self.ways[w].owner = req.tb_slot;
                let tb = req.tb_slot;
                let s = self.share_mut(req.asid);
                s.flags |= 1 << (tb as u16 % 16);
                s.counters[tb as usize % 16] = s.counters[tb as usize % 16].saturating_add(1);
                self.spills += 1;
            } else {
                let victim_asid = self.ways[victim].asid;
                self.stats.evictions += 1;
                self.per_asid.entry(victim_asid).evictions += 1;
            }
        } else {
            let victim_asid = self.ways[victim].asid;
            self.stats.evictions += 1;
            self.per_asid.entry(victim_asid).evictions += 1;
        }
        self.ways[victim] = way;
    }
}

impl TranslationBuffer for PartitionedTlb {
    fn lookup(&mut self, req: &TlbRequest) -> TlbOutcome {
        let req = &TlbRequest {
            tb_slot: self.norm_slot(req.tb_slot),
            ..*req
        };
        self.clock += 1;
        let tb = req.tb_slot as usize;
        if self.fastpath_on {
            let m = self.memo[tb];
            if m.epoch == self.struct_epoch && m.asid == req.asid && m.vpn == req.vpn {
                // Nothing structural changed since the slow path hit this
                // VPN for this TB: the tag walk would find the same way
                // after probing the same set list. Replay the identical
                // bookkeeping (LRU touch, stats, latency, PPN decode) and
                // skip the walk. Payload patches don't bump the epoch —
                // the PPN is re-read from the way below, so a deferred
                // fill's `patch_ppn` is observed exactly as the slow path
                // would observe it.
                let w = m.way as usize;
                let compressed = self.ways[w].mask.count_ones() > 1;
                let latency = self.lookup_latency(m.sets_probed as usize, compressed);
                self.ways[w].stamp = self.clock;
                let way = &self.ways[w];
                let off = self.run_offset(req.vpn);
                let ppn = if way.literal {
                    way.base_ppn
                } else {
                    Ppn::new(way.base_ppn.raw() + off as u64)
                };
                self.stats.record(true);
                self.per_asid.entry(req.asid).record(true);
                self.fastpath += 1;
                return TlbOutcome::hit(ppn, latency);
            }
        }
        let sets = self.searchable_sets(req.asid, req.tb_slot);
        match self.find(req.asid, &sets, req.vpn) {
            Some(w) => {
                let compressed = self.ways[w].mask.count_ones() > 1;
                let latency = self.lookup_latency(sets.len(), compressed);
                self.ways[w].stamp = self.clock;
                let way = &self.ways[w];
                let off = self.run_offset(req.vpn);
                let ppn = if way.literal {
                    way.base_ppn
                } else {
                    Ppn::new(way.base_ppn.raw() + off as u64)
                };
                self.stats.record(true);
                self.per_asid.entry(req.asid).record(true);
                self.memo[tb] = LookupMemo {
                    asid: req.asid,
                    vpn: req.vpn,
                    way: w as u32,
                    sets_probed: sets.len() as u32,
                    epoch: self.struct_epoch,
                };
                TlbOutcome::hit(ppn, latency)
            }
            None => {
                self.stats.record(false);
                self.per_asid.entry(req.asid).record(false);
                TlbOutcome::miss(self.lookup_latency(sets.len(), false))
            }
        }
    }

    fn insert(&mut self, req: &TlbRequest, ppn: Ppn) {
        let req = &TlbRequest {
            tb_slot: self.norm_slot(req.tb_slot),
            ..*req
        };
        self.clock += 1;
        self.struct_epoch += 1;
        let clock = self.clock;
        let base = self.run_base(req.vpn);
        let off = self.run_offset(req.vpn);
        let searchable = self.searchable_sets(req.asid, req.tb_slot);

        if self.cfg.compression.is_some() {
            // Compressed runs are inherently payload-dependent (the
            // base-delta predicate compares the PPN against run bases), so
            // this whole branch is licensed by `supports_deferred_fill`
            // returning false under compression: the engine never defers
            // fills into this path.
            //
            // Refresh in place if the translation is already reachable
            // (and coherent-remap any stale run bit).
            let expected_base_ppn = ppn.raw().checked_sub(off as u64);
            if let Some(w) = self.find(req.asid, &searchable, req.vpn) {
                let way = &mut self.ways[w];
                let coherent = if way.literal {
                    way.mask == 1 << off && way.base_ppn == ppn
                } else {
                    Some(way.base_ppn.raw()) == expected_base_ppn
                };
                if coherent {
                    way.stamp = clock;
                    return;
                }
                way.mask &= !(1 << off);
                if way.mask == 0 {
                    way.valid = false;
                }
            }

            // Merge into a compatible run in the TB's own sets. Runs
            // never compress across address spaces: the candidate must
            // carry the requester's ASID.
            if let Some(expected) = expected_base_ppn {
                let own: Vec<usize> = self.group_of(req.tb_slot).collect();
                for &set in &own {
                    for w in self.ways_of_set(set) {
                        let way = &mut self.ways[w];
                        if way.valid
                            && way.asid == req.asid
                            && !way.literal
                            && way.base_vpn == base
                            && way.base_ppn == Ppn::new(expected)
                        {
                            way.mask |= 1 << off;
                            way.stamp = clock;
                            return;
                        }
                    }
                }
            }

            self.stats.insertions += 1;
            self.per_asid.entry(req.asid).insertions += 1;
            let (new_ppn, literal) = match expected_base_ppn {
                Some(expected) => (Ppn::new(expected), false),
                None => (ppn, true), // underflow under compression: literal
            };
            self.place(
                req,
                Way {
                    valid: true,
                    asid: req.asid,
                    base_vpn: base,
                    base_ppn: new_ppn,
                    mask: 1 << off,
                    literal,
                    stamp: clock,
                    owner: req.tb_slot,
                },
            );
            return;
        }

        // Compression off: the deferred-fill-eligible path. Victim choice
        // and placement depend only on the VPN, the set geometry, and
        // recency — never on `ppn` — so the engine may insert a sentinel
        // frame at miss time and `patch_ppn` the real one in later.
        if let Some(w) = self.find(req.asid, &searchable, req.vpn) {
            // Unconditional refresh-in-place: concurrent fill races for
            // the same page are benign (last writer wins, matching the
            // set-associative baseline), and no payload comparison decides
            // the replacement outcome.
            let way = &mut self.ways[w];
            way.base_ppn = ppn;
            way.stamp = clock;
            return;
        }
        self.stats.insertions += 1;
        self.per_asid.entry(req.asid).insertions += 1;
        self.place(
            req,
            Way {
                valid: true,
                asid: req.asid,
                base_vpn: base,
                base_ppn: ppn,
                mask: 1 << off,
                literal: true,
                stamp: clock,
                owner: req.tb_slot,
            },
        );
    }

    fn stats(&self) -> TlbStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
        self.per_asid.clear();
    }

    fn stats_by_asid(&self) -> Vec<(Asid, TlbStats)> {
        self.per_asid.non_empty()
    }

    fn probe(&self, req: &TlbRequest) -> Option<Option<Ppn>> {
        Some(self.peek(req.asid, req.vpn, req.tb_slot))
    }

    fn flush(&mut self) {
        for w in &mut self.ways {
            w.valid = false;
            w.mask = 0;
        }
        self.share.clear();
        self.struct_epoch += 1;
    }

    fn supports_deferred_fill(&self) -> bool {
        // Plain single-page entries place payload-independently (see
        // `place`); compressed runs compare the PPN against run bases, so
        // they must stay on the serial drain.
        self.cfg.compression.is_none()
    }

    fn patch_ppn(&mut self, req: &TlbRequest, old: Ppn, new: Ppn) -> bool {
        if self.cfg.compression.is_some() {
            return false;
        }
        // Full-ways scan, NOT `searchable_sets`: a provisional entry may
        // have been parked in a neighbour's sets below the
        // `AdjacentCounter` threshold (or orphaned by a TB finish), where
        // the owner's lookups cannot reach it — but the walk's real frame
        // must still land in it. Sentinel frames are unique per drain
        // round, so `old` identifies the entry unambiguously. No stamp,
        // stats, flag, or epoch updates: payload only.
        for way in &mut self.ways {
            if way.valid && way.asid == req.asid && way.base_vpn == req.vpn && way.base_ppn == old
            {
                way.base_ppn = new;
                return true;
            }
        }
        false
    }

    fn fastpath_hits(&self) -> u64 {
        self.fastpath
    }

    fn capacity(&self) -> usize {
        self.cfg.geometry.entries
    }

    fn on_tb_finish(&mut self, asid: Asid, tb_slot: u8) {
        let tb_slot = self.norm_slot(tb_slot);
        self.struct_epoch += 1;
        // "We reset the sharing flag of a particular TLB set when a TB
        // that is currently indexed to that TLB set finishes": the flag
        // cleared is the *predecessor's* — the TB spilling INTO the
        // finished TB's sets. Only the finishing app's own register word
        // is touched: another app's licences into the same sets survive
        // (its TBs are still running). Entries are kept (the paper
        // explicitly avoids flushing to preserve inter-TB reuse).
        let n = (self.groups() as u16).max(1);
        let pred = (tb_slot as u16 + n - 1) % n;
        if let Some(i) = self.share.iter().position(|s| s.asid == asid) {
            self.share[i].flags &= !(1 << (pred % 16));
            self.share[i].counters[(pred % 16) as usize] = 0;
            if self.share[i].flags == 0 && self.share[i].counters.iter().all(|&c| c == 0) {
                self.share.remove(i);
            }
        }
        // With the flag gone, the spiller can no longer reach entries it
        // parked outside its own group; hand those to each set's natural
        // owner so entry ownership keeps matching lookup reachability.
        // Only this app's entries are affected — a licence is keyed by
        // `(asid, tb)`, so other apps' parked entries stay licensed.
        // (When more than 16 TBs alias one flag bit, every aliasing owner
        // is covered.)
        let assoc = self.cfg.geometry.associativity;
        for i in 0..self.ways.len() {
            let w = self.ways[i];
            if !w.valid || w.asid != asid || u16::from(w.owner) % 16 != pred % 16 {
                continue;
            }
            let set = i / assoc;
            if !self.group_of(w.owner).contains(&set) {
                self.ways[i].owner = self.home_tb(set);
            }
        }
    }

    fn set_concurrent_tbs(&mut self, tbs: u8) {
        let tbs = tbs.max(1);
        if tbs != self.concurrent_tbs {
            self.concurrent_tbs = tbs;
            self.struct_epoch += 1;
            self.memo = vec![LookupMemo::invalid(); self.groups()];
            // Geometry changed: sharing relationships are stale, and set
            // groups moved under the resident entries — re-home everything
            // to its set's natural owner.
            self.share.clear();
            let assoc = self.cfg.geometry.associativity;
            for i in 0..self.ways.len() {
                if self.ways[i].valid {
                    self.ways[i].owner = self.home_tb(i / assoc);
                }
            }
        }
    }

    fn check_invariants(&self) -> Result<(), InvariantViolation> {
        let fail = |detail: String| {
            Err(InvariantViolation::new(
                "PartitionedTlb",
                detail,
                self.dump_state(),
            ))
        };
        if let Err(e) = self.stats.check() {
            return fail(e);
        }
        if self.occupancy() > self.capacity() {
            return fail(format!(
                "occupancy {} exceeds capacity {}",
                self.occupancy(),
                self.capacity()
            ));
        }
        let agg = self.per_asid.sum();
        if agg != self.stats {
            return fail(format!(
                "per-ASID stats sum {agg:?} != aggregate {:?}",
                self.stats
            ));
        }
        let n = self.groups();
        // Flag bits and spill counters for slots that cannot exist must
        // stay clear (on_tb_finish / set_concurrent_tbs reset them), for
        // every app's register word.
        for s in &self.share {
            if n < 16 {
                if s.flags >> n != 0 {
                    return fail(format!(
                        "ASID {}: sharing flags {:#018b} have bits set for TB slots >= {n}",
                        s.asid, s.flags
                    ));
                }
                if let Some(i) = (n..16).find(|&i| s.counters[i] != 0) {
                    return fail(format!(
                        "ASID {}: spill counter {i} nonzero with only {n} TB slots",
                        s.asid
                    ));
                }
            }
        }
        if self.share.windows(2).any(|w| w[0].asid >= w[1].asid) {
            return fail("sharing register table not strictly sorted by ASID".into());
        }
        if self.memo.len() != n {
            return fail(format!(
                "memo table has {} slots for {n} TB groups",
                self.memo.len()
            ));
        }
        for (tb, m) in self.memo.iter().enumerate() {
            if m.epoch > self.struct_epoch {
                return fail(format!(
                    "memo for TB {tb} claims epoch {} ahead of struct epoch {}",
                    m.epoch, self.struct_epoch
                ));
            }
            // Only a memo from the *current* epoch is ever trusted; it
            // must point at a valid way still holding its VPN.
            if m.epoch == self.struct_epoch {
                let w = m.way as usize;
                if w >= self.ways.len()
                    || !self.ways[w].valid
                    || self.ways[w].asid != m.asid
                    || self.ways[w].base_vpn != self.run_base(m.vpn)
                {
                    return fail(format!(
                        "live memo for TB {tb} (asid {} vpn {:#x}) points at way {w} \
                         which no longer holds it",
                        m.asid,
                        m.vpn.raw()
                    ));
                }
            }
        }
        if self.cfg.sharing == SharingPolicy::None && self.sharing_flags() != 0 {
            return fail(format!(
                "sharing flags {:#018b} set under SharingPolicy::None",
                self.sharing_flags()
            ));
        }
        let degree_bits = if self.degree() >= 32 {
            u32::MAX
        } else {
            (1u32 << self.degree()) - 1
        };
        for set in 0..self.cfg.geometry.sets() {
            let range = self.ways_of_set(set);
            for w in range.clone() {
                let way = &self.ways[w];
                if !way.valid {
                    continue;
                }
                if way.mask == 0 {
                    return fail(format!("set {set}: valid entry with empty run mask"));
                }
                if way.mask & !degree_bits != 0 {
                    return fail(format!(
                        "set {set}: mask {:#x} has bits beyond compression degree {}",
                        way.mask,
                        self.degree()
                    ));
                }
                if way.literal && way.mask.count_ones() != 1 {
                    return fail(format!(
                        "set {set}: literal entry covers {} pages (must be 1)",
                        way.mask.count_ones()
                    ));
                }
                if way.base_vpn.raw() & (self.degree() - 1) != 0 {
                    return fail(format!(
                        "set {set}: base VPN {:#x} not aligned to run degree",
                        way.base_vpn.raw()
                    ));
                }
                if way.stamp > self.clock {
                    return fail(format!(
                        "set {set}: stamp {} ahead of clock {}",
                        way.stamp, self.clock
                    ));
                }
                // Distinct stamps per set keep LRU victim selection a
                // total order.
                if self.ways[range.start..w]
                    .iter()
                    .any(|o| o.valid && o.stamp == way.stamp)
                {
                    return fail(format!(
                        "set {set}: duplicate LRU stamp {} breaks the recency total order",
                        way.stamp
                    ));
                }
                // §IV-B placement: an entry lives in its owner's group, or
                // in territory licensed by the owner's `(asid, tb)`
                // sharing flag (the adjacent group — or anywhere under
                // all-to-all). The licence is looked up in the entry's own
                // app's register word: another app's spills never license
                // this entry's placement.
                let owner = way.owner;
                if self.group_of(owner).contains(&set) {
                    continue;
                }
                let bit = self.sharing_flags_of(way.asid) & (1 << (u16::from(owner) % 16)) != 0;
                let licensed = bit
                    && match self.cfg.sharing {
                        SharingPolicy::None => false,
                        SharingPolicy::Adjacent | SharingPolicy::AdjacentCounter { .. } => {
                            let neighbour = ((owner as usize + 1) % n) as u8;
                            self.group_of(neighbour).contains(&set)
                        }
                        SharingPolicy::AllToAll => true,
                    };
                if !licensed {
                    return fail(format!(
                        "set {set}: entry asid={} vpn={:#x} owned by TB {owner} is outside \
                         group {:?} and its app's sharing flag does not license set {set}",
                        way.asid,
                        way.base_vpn.raw(),
                        self.group_of(owner),
                    ));
                }
            }
        }
        Ok(())
    }

    fn dump_state(&self) -> String {
        let mut s = format!(
            "PartitionedTlb: {} entries, {}-way, {:?}, concurrent_tbs={}, clock={}\n\
             sharing_flags={:#018b} (union) spills={}\n\
             stats {{{:?}}}\n",
            self.cfg.geometry.entries,
            self.cfg.geometry.associativity,
            self.cfg.sharing,
            self.concurrent_tbs,
            self.clock,
            self.sharing_flags(),
            self.spills,
            self.stats
        );
        for sh in &self.share {
            let _ = writeln!(
                s,
                "  asid {:4}: flags={:#018b} spill_counters={:?}",
                sh.asid, sh.flags, sh.counters
            );
        }
        for tb in 0..self.groups().min(self.cfg.geometry.sets()) as u8 {
            let _ = write!(s, "  tb {tb:2} owns sets {:?}", self.group_of(tb));
            if tb % 4 == 3 {
                s.push('\n');
            }
        }
        s.push('\n');
        for set in 0..self.cfg.geometry.sets() {
            let ways = &self.ways[self.ways_of_set(set)];
            if ways.iter().all(|w| !w.valid) {
                continue;
            }
            let _ = write!(s, "  set {set:3}:");
            for w in ways.iter().filter(|w| w.valid) {
                let _ = write!(
                    s,
                    " [asid={} vpn={:#x} ppn={:#x} mask={:#b}{} owner={} @{}]",
                    w.asid,
                    w.base_vpn.raw(),
                    w.base_ppn.raw(),
                    w.mask,
                    if w.literal { " literal" } else { "" },
                    w.owner,
                    w.stamp
                );
            }
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(vpn: u64, tb: u8) -> TlbRequest {
        TlbRequest::new(Vpn::new(vpn), tb)
    }

    fn tlb(sharing: bool) -> PartitionedTlb {
        let mut t = PartitionedTlb::new(PartitionedTlbConfig {
            geometry: TlbConfig::dac23_l1(),
            sharing: if sharing {
                SharingPolicy::Adjacent
            } else {
                SharingPolicy::None
            },
            per_set_lookup_overhead: true,
            displacement_margin: 512,
            compression: None,
        });
        t.set_concurrent_tbs(16);
        t
    }

    #[test]
    fn tb_partitions_are_isolated() {
        let mut t = tlb(false);
        t.insert(&req(100, 0), Ppn::new(1));
        assert!(t.lookup(&req(100, 0)).hit);
        // Same VPN from every other TB misses: disjoint sets.
        for tb in 1..16 {
            assert!(!t.lookup(&req(100, tb)).hit, "tb {tb}");
        }
    }

    #[test]
    fn full_vpn_tags_prevent_aliasing() {
        let mut t = tlb(false);
        // VPNs that would alias under index-bit selection coexist in one
        // TB's set (up to associativity).
        for i in 0..4u64 {
            t.insert(&req(16 * i, 5), Ppn::new(i));
        }
        for i in 0..4u64 {
            let out = t.lookup(&req(16 * i, 5));
            assert!(out.hit);
            assert_eq!(out.ppn, Some(Ppn::new(i)));
        }
    }

    #[test]
    fn per_tb_capacity_is_one_set_at_full_concurrency() {
        let mut t = tlb(false);
        // 16 TBs over 16 sets: TB 0 owns 4 ways. A 5th distinct page
        // evicts.
        for i in 0..5u64 {
            t.insert(&req(1000 + i, 0), Ppn::new(i));
        }
        let hits = (0..5u64)
            .filter(|&i| t.lookup(&req(1000 + i, 0)).hit)
            .count();
        assert_eq!(hits, 4);
        assert_eq!(t.stats().evictions, 1);
    }

    #[test]
    fn sharing_spills_into_neighbour() {
        let mut t = tlb(true);
        // Fill TB 0's set (4 ways) and overflow: the victim moves to TB
        // 1's empty set instead of dying.
        for i in 0..5u64 {
            t.insert(&req(2000 + i, 0), Ppn::new(i));
        }
        assert_eq!(t.spills(), 1);
        assert_ne!(t.sharing_flags() & 1, 0, "TB 0's flag set");
        // All 5 translations still reachable by TB 0 (own + shared set).
        for i in 0..5u64 {
            assert!(t.lookup(&req(2000 + i, 0)).hit, "page {i}");
        }
        assert_eq!(t.stats().evictions, 0);
    }

    #[test]
    fn sharing_flag_reset_on_tb_finish() {
        let mut t = tlb(true);
        for i in 0..5u64 {
            t.insert(&req(2000 + i, 0), Ppn::new(i));
        }
        assert_ne!(t.sharing_flags(), 0);
        // Neighbour TB 1 finishing resets the flag into its sets.
        t.on_tb_finish(Asid::default(), 1);
        assert_eq!(t.sharing_flags() & 1, 0);
        // Entries are NOT flushed.
        assert!(t.occupancy() >= 4);
    }

    #[test]
    fn lookup_overhead_scales_with_group_size() {
        let mut t = tlb(false);
        // 4 concurrent TBs over 16 sets: 4 sets per TB -> 4x latency.
        t.set_concurrent_tbs(4);
        let out = t.lookup(&req(1, 0));
        assert_eq!(out.latency, 4);
        // 16 TBs -> 1 set -> 1x.
        t.set_concurrent_tbs(16);
        let out = t.lookup(&req(1, 0));
        assert_eq!(out.latency, 1);
    }

    #[test]
    fn no_overhead_mode() {
        let mut t = PartitionedTlb::new(PartitionedTlbConfig {
            geometry: TlbConfig::dac23_l1(),
            sharing: SharingPolicy::None,
            per_set_lookup_overhead: false,
            displacement_margin: 64,
            compression: None,
        });
        t.set_concurrent_tbs(2); // 8 sets per TB
        assert_eq!(t.lookup(&req(1, 0)).latency, 1);
    }

    #[test]
    fn more_tbs_than_sets_alias() {
        let mut t = PartitionedTlb::new(PartitionedTlbConfig::partition_only());
        t.set_concurrent_tbs(16);
        // Force the aliasing path with a tiny geometry: 4 sets, 16 TBs.
        let mut small = PartitionedTlb::new(PartitionedTlbConfig {
            geometry: TlbConfig::new(16, 4, 1),
            sharing: SharingPolicy::None,
            per_set_lookup_overhead: true,
            displacement_margin: 512,
            compression: None,
        });
        small.set_concurrent_tbs(16);
        small.insert(&req(42, 0), Ppn::new(9));
        // TB 4 aliases onto TB 0's set (4 % 4 == 0) and can see the entry.
        assert!(small.lookup(&req(42, 4)).hit);
        // TB 1 cannot.
        assert!(!small.lookup(&req(42, 1)).hit);
        drop(t);
    }

    #[test]
    fn sharing_preserved_capacity_beats_partition_only() {
        // Workload: TB 0 cycles through 8 pages; TB 1 idle. With sharing,
        // TB 0 effectively has 8 ways and stops thrashing.
        let run = |sharing: bool| -> f64 {
            let mut t = PartitionedTlb::new(PartitionedTlbConfig {
                geometry: TlbConfig::new(8, 4, 1), // 2 sets
                sharing: if sharing { SharingPolicy::Adjacent } else { SharingPolicy::None },
                per_set_lookup_overhead: true,
                displacement_margin: 512,
                compression: None,
            });
            t.set_concurrent_tbs(2);
            for _ in 0..20 {
                for p in 0..8u64 {
                    let r = req(p, 0);
                    if !t.lookup(&r).hit {
                        t.insert(&r, Ppn::new(p));
                    }
                }
            }
            t.stats().hit_rate()
        };
        let without = run(false);
        let with = run(true);
        assert!(
            with > without + 0.3,
            "sharing {with:.2} should beat partition-only {without:.2}"
        );
    }

    #[test]
    fn compression_merges_contiguous_runs() {
        let mut t = PartitionedTlb::new(PartitionedTlbConfig {
            geometry: TlbConfig::dac23_l1(),
            sharing: SharingPolicy::Adjacent,
            per_set_lookup_overhead: true,
            displacement_margin: 64,
            compression: Some(CompressionConfig::pact20()),
        });
        t.set_concurrent_tbs(16);
        for i in 0..8u64 {
            t.insert(&req(i, 2), Ppn::new(100 + i));
        }
        assert_eq!(t.occupancy(), 1, "8 contiguous pages in one way");
        for i in 0..8u64 {
            let out = t.lookup(&req(i, 2));
            assert!(out.hit);
            assert_eq!(out.ppn, Some(Ppn::new(100 + i)));
            // +1 decompression cycle.
            assert_eq!(out.latency, 2);
        }
    }

    #[test]
    fn peek_sees_exactly_what_lookup_reaches_without_perturbing() {
        let mut t = tlb(true);
        for i in 0..5u64 {
            t.insert(&req(2000 + i, 0), Ppn::new(i));
        }
        t.reset_stats();
        // The spilled page is reachable through TB 0's engaged flag, and
        // invisible to TB 2 whose sets are elsewhere.
        for i in 0..5u64 {
            assert_eq!(
                t.peek(Asid::default(), Vpn::new(2000 + i), 0),
                Some(Ppn::new(i)),
                "page {i}"
            );
            assert_eq!(t.peek(Asid::default(), Vpn::new(2000 + i), 2), None);
        }
        assert_eq!(t.stats().accesses(), 0, "peek must not touch stats");
        assert_eq!(
            t.probe(&req(2000, 0)),
            Some(Some(Ppn::new(0))),
            "probe delegates to peek"
        );
    }

    #[test]
    fn flush_clears_everything() {
        let mut t = tlb(true);
        for i in 0..5u64 {
            t.insert(&req(i * 100, 0), Ppn::new(i));
        }
        t.flush();
        assert_eq!(t.occupancy(), 0);
        assert_eq!(t.sharing_flags(), 0);
    }

    #[test]
    fn remap_is_coherent() {
        let mut t = tlb(false);
        t.insert(&req(7, 3), Ppn::new(1));
        t.insert(&req(7, 3), Ppn::new(2));
        let out = t.lookup(&req(7, 3));
        assert!(out.hit);
        assert_eq!(out.ppn, Some(Ppn::new(2)));
    }

    fn counter_tlb(threshold: u8) -> PartitionedTlb {
        let mut t = PartitionedTlb::new(PartitionedTlbConfig {
            geometry: TlbConfig::new(8, 4, 1), // 2 sets x 4 ways
            sharing: SharingPolicy::AdjacentCounter { threshold },
            per_set_lookup_overhead: true,
            displacement_margin: 512,
            compression: None,
        });
        t.set_concurrent_tbs(2); // TB 0 owns set 0, TB 1 owns set 1
        t
    }

    #[test]
    fn adjacent_counter_engages_only_at_threshold() {
        let mut t = counter_tlb(3);
        // Fill TB 0's set, then overflow three times: each overflow spills
        // the LRU victim into TB 1's (empty) set and bumps the counter.
        for i in 0..5u64 {
            t.insert(&req(100 + i, 0), Ppn::new(i));
        }
        assert_eq!(t.spills(), 1);
        // One spill < threshold: the spilled page is parked in the
        // neighbour's set but TB 0's lookups do not search there yet.
        assert!(!t.lookup(&req(100, 0)).hit, "below threshold: not searchable");
        t.check_invariants().expect("parked entry is still licensed");
        t.insert(&req(105, 0), Ppn::new(5));
        assert_eq!(t.spills(), 2);
        assert!(!t.lookup(&req(101, 0)).hit, "still below threshold");
        t.insert(&req(106, 0), Ppn::new(6));
        assert_eq!(t.spills(), 3);
        // Third spill reaches the threshold: the flag engages and all
        // parked pages become reachable again.
        assert!(t.lookup(&req(100, 0)).hit, "threshold reached: neighbour searched");
        assert!(t.lookup(&req(101, 0)).hit);
        assert!(t.lookup(&req(102, 0)).hit);
        t.check_invariants().expect("engaged sharing keeps invariants");
    }

    #[test]
    fn adjacent_counter_disengages_when_neighbour_finishes() {
        let mut t = counter_tlb(2);
        for i in 0..6u64 {
            t.insert(&req(200 + i, 0), Ppn::new(i));
        }
        assert!(t.spills() >= 2);
        assert!(t.lookup(&req(200, 0)).hit, "engaged before TB finish");
        // TB 1 finishing resets its predecessor's (TB 0's) counter and
        // flag: sharing disengages and the parked pages go dark for TB 0.
        t.on_tb_finish(Asid::default(), 1);
        assert_eq!(t.sharing_flags() & 1, 0);
        assert!(!t.lookup(&req(200, 0)).hit, "disengaged after TB finish");
        // The parked entries were adopted by the set's natural owner, so
        // the ownership invariant still holds.
        t.check_invariants().expect("adoption keeps invariants");
        // TB 1 itself can now hit the adopted entries in its own set.
        assert!(t.lookup(&req(200, 1)).hit, "neighbour inherits parked entry");
    }

    fn all_to_all_tlb() -> PartitionedTlb {
        let mut t = PartitionedTlb::new(PartitionedTlbConfig {
            geometry: TlbConfig::new(16, 4, 1), // 4 sets x 4 ways
            sharing: SharingPolicy::AllToAll,
            per_set_lookup_overhead: true,
            displacement_margin: 512,
            compression: None,
        });
        t.set_concurrent_tbs(4);
        t
    }

    #[test]
    fn all_to_all_spills_anywhere_and_probes_every_set() {
        let mut t = all_to_all_tlb();
        // TB 0 owns 4 ways but streams 12 distinct pages: the 8 overflow
        // victims spill into the other TBs' sets instead of dying.
        for i in 0..12u64 {
            t.insert(&req(300 + i, 0), Ppn::new(i));
            t.check_invariants().expect("spill placement is licensed");
        }
        assert_eq!(t.spills(), 8);
        assert_eq!(t.occupancy(), 12);
        assert_eq!(t.stats().evictions, 0);
        for i in 0..12u64 {
            let out = t.lookup(&req(300 + i, 0));
            assert!(out.hit, "page {i}");
            // The cost of all-to-all: every lookup probes all 4 sets.
            assert_eq!(out.latency, 4);
        }
        // Spilled entries landed outside TB 0's single-set group.
        let own: Vec<usize> = t.group_of(0).collect();
        let foreign = (0..t.cfg.geometry.sets())
            .filter(|s| !own.contains(s))
            .flat_map(|s| t.ways_of_set(s))
            .filter(|&w| t.ways[w].valid)
            .count();
        assert_eq!(foreign, 8);
    }

    #[test]
    fn all_to_all_respects_displacement_margin() {
        let mut t = all_to_all_tlb();
        // Fill the whole TLB with recently-used entries from all TBs.
        for tb in 0..4u8 {
            for i in 0..4u64 {
                t.insert(&req(1000 + u64::from(tb) * 16 + i, tb), Ppn::new(i));
            }
        }
        assert_eq!(t.occupancy(), 16);
        let spills_before = t.spills();
        // TB 0 overflows, but every foreign entry is fresher than the
        // margin: the victim must die in place, not displace a neighbour.
        t.insert(&req(2000, 0), Ppn::new(99));
        assert_eq!(t.spills(), spills_before);
        assert_eq!(t.stats().evictions, 1);
        t.check_invariants().expect("margin-blocked spill keeps invariants");
    }

    #[test]
    fn corrupted_owner_is_caught_with_state_dump() {
        let mut t = tlb(true);
        t.insert(&req(500, 2), Ppn::new(1));
        let w = t.ways.iter().position(|w| w.valid).unwrap();
        // Deliberate corruption: claim the entry belongs to TB 9, whose
        // group is elsewhere and whose sharing flag is clear.
        t.ways[w].owner = 9;
        let v = t.check_invariants().unwrap_err();
        assert!(v.detail.contains("owned by TB 9"), "{}", v.detail);
        assert!(v.dump.contains("sharing_flags"), "dump lacks flags:\n{}", v.dump);
        assert!(v.dump.contains("owner=9"), "dump lacks entry:\n{}", v.dump);
    }

    #[test]
    fn corrupted_stats_identity_is_caught() {
        let mut t = tlb(false);
        t.lookup(&req(1, 0));
        t.stats.misses += 1; // bypass record()
        assert!(t.check_invariants().is_err());
    }

    #[test]
    fn invariants_hold_through_mixed_sharing_workload() {
        for sharing in [
            SharingPolicy::None,
            SharingPolicy::Adjacent,
            SharingPolicy::AdjacentCounter { threshold: 2 },
            SharingPolicy::AllToAll,
        ] {
            let mut t = PartitionedTlb::new(PartitionedTlbConfig {
                geometry: TlbConfig::new(16, 2, 1), // 8 sets x 2 ways
                sharing,
                per_set_lookup_overhead: true,
                displacement_margin: 8,
                compression: None,
            });
            t.set_concurrent_tbs(8);
            for step in 0..200u64 {
                let tb = (step % 8) as u8;
                let r = req(step * 7 % 31, tb);
                if !t.lookup(&r).hit {
                    t.insert(&r, Ppn::new(r.vpn.raw() + 1000));
                }
                if step % 37 == 0 {
                    t.on_tb_finish(Asid::default(), tb);
                }
                if let Err(v) = t.check_invariants() {
                    panic!("{sharing:?} step {step}: {v}");
                }
            }
        }
    }

    #[test]
    fn concurrency_change_resets_flags_keeps_entries() {
        let mut t = tlb(true);
        for i in 0..5u64 {
            t.insert(&req(3000 + i, 0), Ppn::new(i));
        }
        assert_ne!(t.sharing_flags(), 0);
        let occ = t.occupancy();
        t.set_concurrent_tbs(8);
        assert_eq!(t.sharing_flags(), 0);
        assert_eq!(t.occupancy(), occ);
    }

    #[test]
    fn fastpath_serves_repeated_hits_and_epoch_guard_invalidates() {
        let mut t = tlb(true);
        t.insert(&req(42, 0), Ppn::new(7));
        // First lookup walks the sets and arms the memo; the next four
        // ride it. Outcomes are identical either way.
        for i in 0..5 {
            let out = t.lookup(&req(42, 0));
            assert!(out.hit);
            assert_eq!(out.ppn, Some(Ppn::new(7)));
            assert_eq!(out.latency, 1);
            assert_eq!(t.fastpath_hits(), i.max(1) as u64 - u64::from(i == 0));
        }
        assert_eq!(t.fastpath_hits(), 4);
        t.check_invariants().expect("armed memo keeps invariants");
        // Any structural mutation bumps the epoch: the next lookup walks
        // again (and re-arms).
        t.insert(&req(43, 0), Ppn::new(8));
        assert!(t.lookup(&req(42, 0)).hit);
        assert_eq!(t.fastpath_hits(), 4, "post-insert lookup took the slow path");
        assert!(t.lookup(&req(42, 0)).hit);
        assert_eq!(t.fastpath_hits(), 5, "slow path re-armed the memo");
        // TB lifecycle events invalidate too (sharing flags may change the
        // probe count).
        t.on_tb_finish(Asid::default(), 1);
        assert!(t.lookup(&req(42, 0)).hit);
        assert_eq!(t.fastpath_hits(), 5);
        // The memo is per TB slot: TB 1 probing its own sets never sees
        // TB 0's memo.
        assert!(!t.lookup(&req(42, 1)).hit);
        assert_eq!(t.fastpath_hits(), 5);
    }

    #[test]
    fn deferred_fill_eligibility_tracks_compression() {
        assert!(tlb(true).supports_deferred_fill());
        assert!(tlb(false).supports_deferred_fill());
        let compressed = PartitionedTlb::new(PartitionedTlbConfig {
            compression: Some(CompressionConfig::pact20()),
            ..PartitionedTlbConfig::with_sharing()
        });
        assert!(!compressed.supports_deferred_fill());
        // And the patch hook is gated the same way.
        let mut compressed = compressed;
        assert!(!compressed.patch_ppn(&req(1, 0), Ppn::new(0), Ppn::new(1)));
    }

    #[test]
    fn patch_ppn_swaps_payload_without_touching_replacement_state() {
        let mut t = tlb(true);
        let sentinel = Ppn::new(0xdead);
        t.insert(&req(77, 3), sentinel);
        let stats = t.stats();
        let dump = t.dump_state();
        assert!(t.patch_ppn(&req(77, 3), sentinel, Ppn::new(9)));
        assert_eq!(t.stats(), stats, "patch must not touch stats");
        // Only the PPN differs in the dump (stamps, flags, owners intact).
        assert_eq!(
            t.dump_state().replace("ppn=0x9", "ppn=0xdead"),
            dump,
            "patch changed more than the payload"
        );
        let out = t.lookup(&req(77, 3));
        assert_eq!(out.ppn, Some(Ppn::new(9)));
        // A second patch with the stale sentinel finds nothing.
        assert!(!t.patch_ppn(&req(77, 3), sentinel, Ppn::new(10)));
    }

    #[test]
    fn patch_ppn_reaches_parked_entries_lookups_cannot() {
        // One spill below the AdjacentCounter threshold parks the victim
        // in the neighbour's set where the owner cannot look it up — but
        // the deferred fill must still be able to patch it.
        let mut t = counter_tlb(3);
        let pages: Vec<u64> = (0..5).collect();
        for &i in &pages {
            t.insert(&req(100 + i, 0), Ppn::new(1000 + i));
        }
        assert_eq!(t.spills(), 1);
        assert!(!t.lookup(&req(100, 0)).hit, "parked entry is unreachable");
        assert!(
            t.patch_ppn(&req(100, 0), Ppn::new(1000), Ppn::new(2000)),
            "patch scans all ways, not just searchable sets"
        );
        // Engage the flag: the parked entry resurfaces with the patched
        // frame.
        t.insert(&req(105, 0), Ppn::new(1005));
        t.insert(&req(106, 0), Ppn::new(1006));
        assert_eq!(t.lookup(&req(100, 0)).ppn, Some(Ppn::new(2000)));
    }

    #[test]
    fn fastpath_observes_patched_payload() {
        let mut t = tlb(true);
        t.insert(&req(50, 2), Ppn::new(5));
        assert!(t.lookup(&req(50, 2)).hit); // arms the memo
        // patch_ppn does not bump the epoch; the memo stays armed and the
        // fast path must re-read the patched frame from the way.
        assert!(t.patch_ppn(&req(50, 2), Ppn::new(5), Ppn::new(6)));
        let before = t.fastpath_hits();
        let out = t.lookup(&req(50, 2));
        assert_eq!(t.fastpath_hits(), before + 1, "memo survived the patch");
        assert_eq!(out.ppn, Some(Ppn::new(6)));
        t.check_invariants().expect("patched memo keeps invariants");
    }

    fn areq(asid: u16, vpn: u64, tb: u8) -> TlbRequest {
        TlbRequest::new(Vpn::new(vpn), tb).with_asid(Asid::new(asid))
    }

    #[test]
    fn asid_is_part_of_the_tag() {
        let mut t = tlb(true);
        t.insert(&areq(1, 700, 0), Ppn::new(11));
        t.insert(&areq(2, 700, 0), Ppn::new(22));
        // Same VPN, same TB slot: each app sees only its own frame.
        assert_eq!(t.lookup(&areq(1, 700, 0)).ppn, Some(Ppn::new(11)));
        assert_eq!(t.lookup(&areq(2, 700, 0)).ppn, Some(Ppn::new(22)));
        assert_eq!(t.peek(Asid::new(3), Vpn::new(700), 0), None);
        t.check_invariants().expect("two apps coexist in one set");
    }

    #[test]
    fn fastpath_memo_never_serves_another_asid() {
        let mut t = tlb(true);
        t.insert(&areq(1, 900, 0), Ppn::new(5));
        assert!(t.lookup(&areq(1, 900, 0)).hit); // arms the memo for asid 1
        let before = t.fastpath_hits();
        // App 2 probing the same (vpn, tb) must take the slow path and
        // miss — the armed memo belongs to app 1.
        assert!(!t.lookup(&areq(2, 900, 0)).hit);
        assert_eq!(t.fastpath_hits(), before, "memo must not cross ASIDs");
    }

    #[test]
    fn cross_app_victims_are_never_spill_rescued() {
        let mut t = tlb(true);
        // App 1 fills TB 0's set (4 ways at 16-TB concurrency)...
        for i in 0..4u64 {
            t.insert(&areq(1, 100 + i, 0), Ppn::new(i));
        }
        // ...then app 2 overflows the same slot. The LRU victim belongs
        // to app 1, so rescue is forbidden: it dies in place, no flag is
        // set for either app, and the eviction is charged to app 1.
        t.insert(&areq(2, 500, 0), Ppn::new(99));
        assert_eq!(t.spills(), 0, "cross-app rescue must not happen");
        assert_eq!(t.sharing_flags(), 0);
        assert_eq!(t.stats().evictions, 1);
        let by_asid = t.stats_by_asid();
        let of = |a: u16| {
            by_asid
                .iter()
                .find(|(asid, _)| *asid == Asid::new(a))
                .map(|(_, s)| *s)
                .unwrap_or_default()
        };
        assert_eq!(of(1).evictions, 1, "victim's app is charged");
        assert_eq!(of(2).evictions, 0);
        assert_eq!(of(2).insertions, 1);
        t.check_invariants().expect("cross-app eviction keeps invariants");
    }

    #[test]
    fn sharing_flags_are_keyed_by_asid_and_tb() {
        let mut t = tlb(true);
        // App 1 overflows TB 0 into its neighbour: only app 1's word has
        // the flag, so only app 1's lookups gain the neighbour's sets.
        for i in 0..5u64 {
            t.insert(&areq(1, 2000 + i, 0), Ppn::new(i));
        }
        assert_ne!(t.sharing_flags_of(Asid::new(1)) & 1, 0);
        assert_eq!(t.sharing_flags_of(Asid::new(2)), 0);
        for i in 0..5u64 {
            assert!(t.lookup(&areq(1, 2000 + i, 0)).hit, "page {i}");
        }
        // App 2's TB 1 finishing must not release app 1's licence...
        t.on_tb_finish(Asid::new(2), 1);
        assert_ne!(t.sharing_flags_of(Asid::new(1)) & 1, 0);
        assert!(t.lookup(&areq(1, 2000, 0)).hit, "licence survives");
        // ...but app 1's own TB 1 finishing does.
        t.on_tb_finish(Asid::new(1), 1);
        assert_eq!(t.sharing_flags_of(Asid::new(1)), 0);
        t.check_invariants()
            .expect("adoption after per-app flag reset keeps invariants");
    }

    #[test]
    fn per_asid_stats_sum_to_aggregate_under_mixed_traffic() {
        let mut t = tlb(true);
        for step in 0..300u64 {
            let asid = (step % 3) as u16;
            let tb = (step % 16) as u8;
            let r = areq(asid, step * 11 % 40, tb);
            if !t.lookup(&r).hit {
                t.insert(&r, Ppn::new(step + 1));
            }
            if step % 41 == 0 {
                t.on_tb_finish(Asid::new(asid), tb);
            }
            if let Err(v) = t.check_invariants() {
                panic!("step {step}: {v}");
            }
        }
        let sum = t
            .stats_by_asid()
            .iter()
            .fold(TlbStats::default(), |a, (_, s)| a + *s);
        assert_eq!(sum, t.stats());
        assert!(t.stats_by_asid().len() >= 3, "all three apps recorded");
    }
}
