//! Translation-reuse-aware warp scheduling — the paper's §VII future
//! work ("we aim to study translation reuse at warp granularity and
//! explore potential translation reuse-aware warp scheduling policies").
//!
//! The characterization shows translation reuse is overwhelmingly
//! intra-TB, and the reuse-distance analysis shows that *time-interleaving*
//! other TBs' warps is what stretches those reuses past the L1 reach. A
//! warp scheduler can therefore shrink reuse distances without any TLB
//! change by clustering issue slots by thread block:
//! [`TbClusteredWarpScheduler`] is greedy at TB granularity — while any
//! warp of the last-issued TB is ready it issues from that TB (oldest
//! first), falling back to the oldest ready warp otherwise. Combined with
//! the partitioned TLB it concentrates each set group's traffic in time.

use gpu_sim::{WarpScheduler, WarpView};

/// Greedy-then-oldest at thread-block granularity.
///
/// # Example
///
/// ```
/// use gpu_sim::{WarpScheduler, WarpView};
/// use orchestrated_tlb::TbClusteredWarpScheduler;
///
/// let mut s = TbClusteredWarpScheduler::new();
/// let w = |id, tb, ready| WarpView { id, tb_slot: tb, ready };
/// // Last issue came from TB 1...
/// s.issued_from(2, 1); // warp 2 of TB slot 1
/// // ...so TB 1's ready warp wins over the older TB-0 warp.
/// assert_eq!(s.pick(&[w(0, 0, true), w(2, 1, false), w(3, 1, true)]), Some(2));
/// ```
#[derive(Debug, Clone, Default)]
pub struct TbClusteredWarpScheduler {
    /// Last issued (warp id, TB slot).
    last: Option<(u32, u8)>,
}

impl TbClusteredWarpScheduler {
    /// Creates the scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Seeds the greedy state (mainly for tests; the engine reports
    /// issues via [`WarpScheduler::issued`]).
    pub fn issued_from(&mut self, warp_id: u32, tb_slot: u8) {
        self.last = Some((warp_id, tb_slot));
    }

    /// The (warp id, TB slot) of the last issue, if any.
    pub fn last_issue(&self) -> Option<(u32, u8)> {
        self.last
    }
}

impl WarpScheduler for TbClusteredWarpScheduler {
    fn pick(&mut self, warps: &[WarpView]) -> Option<usize> {
        if let Some((last_id, last_tb)) = self.last {
            // Greedy on the exact warp first (preserves GTO's per-warp
            // row/line locality)...
            if let Some(i) = warps.iter().position(|w| w.id == last_id && w.ready) {
                return Some(i);
            }
            // ...then on any ready warp of the same TB, oldest first.
            if let Some(i) = warps
                .iter()
                .position(|w| w.tb_slot == last_tb && w.ready)
            {
                return Some(i);
            }
        }
        // Fall back to the oldest ready warp.
        warps.iter().position(|w| w.ready)
    }

    fn issued(&mut self, warp: WarpView) {
        self.last = Some((warp.id, warp.tb_slot));
    }

    fn name(&self) -> &str {
        "tb-clustered"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(id: u32, tb: u8, ready: bool) -> WarpView {
        WarpView {
            id,
            tb_slot: tb,
            ready,
        }
    }

    #[test]
    fn stays_on_tb_when_warp_stalls() {
        let mut s = TbClusteredWarpScheduler::new();
        s.issued_from(4, 2);
        // Warp 4 stalled but TB 2 has another ready warp (id 5): prefer it
        // over the older TB-0 warp.
        let warps = [w(0, 0, true), w(4, 2, false), w(5, 2, true)];
        assert_eq!(s.pick(&warps), Some(2));
    }

    #[test]
    fn greedy_on_exact_warp_first() {
        let mut s = TbClusteredWarpScheduler::new();
        s.issued_from(4, 2);
        let warps = [w(3, 2, true), w(4, 2, true)];
        assert_eq!(s.pick(&warps), Some(1), "exact warp beats same-TB sibling");
    }

    #[test]
    fn falls_back_to_oldest_when_tb_drained() {
        let mut s = TbClusteredWarpScheduler::new();
        s.issued_from(9, 3);
        let warps = [w(0, 0, true), w(1, 1, true)];
        assert_eq!(s.pick(&warps), Some(0));
    }

    #[test]
    fn cold_start_is_oldest_first() {
        let mut s = TbClusteredWarpScheduler::new();
        let warps = [w(0, 0, false), w(1, 1, true)];
        assert_eq!(s.pick(&warps), Some(1));
        assert_eq!(s.pick(&[]), None);
    }
}
