//! Differential oracle and deterministic workload fuzzer for the
//! simulator.
//!
//! The optimized implementations in `tlb`, `orchestrated-tlb` and
//! `gpu-sim` carry performance machinery — packed probe tags,
//! structure-of-arrays storage, maintained counters, two-phase parallel
//! stepping — that the paper never mentions. This crate re-states the
//! paper's mechanisms as *clarity-first reference models* (no
//! optimizations, data layouts chosen for obviousness) and checks the
//! optimized code against them:
//!
//! - [`reference::OracleSetAssocTlb`] — the baseline VPN-indexed LRU TLB
//!   as per-set entry lists ([`tlb::SetAssocTlb`] is the optimized
//!   subject).
//! - [`reference::InfiniteTlb`] — a fully-associative, infinite-capacity
//!   model enforcing the universal soundness bound: no finite TLB may
//!   hit a page that was never inserted, and a hit must return a PPN the
//!   fill path actually provided.
//! - [`partitioned_ref::OraclePartitionedTlb`] — the paper's §IV-B
//!   TB-id-partitioned TLB with dynamic adjacent set sharing, written
//!   literally from the prose (explicit slot arrays, explicit sharing
//!   register; [`orchestrated_tlb::PartitionedTlb`] is the subject).
//! - [`sched_ref::OracleScheduler`] — the §IV-A TLB-aware TB scheduler's
//!   status table ([`orchestrated_tlb::TlbAwareScheduler`] is the
//!   subject).
//!
//! [`diff`] replays one deterministic [`case::Case`] through subject and
//! oracle side by side and reports the first [`diff::Divergence`]:
//! hit/miss verdicts, returned PPNs, charged latencies, eviction effects
//! (observed through non-perturbing [`TranslationBuffer::probe`] content
//! sweeps), sharing-register transitions, spill counts and the full
//! end-of-trace statistics. [`fuzz`] generates adversarial cases from a
//! seed (TB churn, set-group pressure, neighbour-spill storms,
//! pathological strides), [`shrink()`] reduces a diverging case to a
//! minimal reproducer, and [`mutate`] provides deliberately-broken
//! subject variants that prove the harness can actually catch bugs (see
//! TESTING.md).
//!
//! The `fuzz` binary in `crates/bench` drives the whole loop;
//! `crates/bench/tests/corpus/` holds shrunk `.case` reproducers that
//! replay forever as regression tests.
//!
//! [`TranslationBuffer::probe`]: tlb::TranslationBuffer::probe

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod case;
pub mod diff;
pub mod engine_diff;
pub mod fuzz;
pub mod mutate;
pub mod partitioned_ref;
pub mod reference;
pub mod sched_ref;
pub mod shrink;

pub use case::{Case, EngineCase, ModelKind, Mutation, Op, TraceCase, TraceRef};
pub use diff::{run_case, Divergence};
pub use fuzz::{fuzz_seed, set_trace_dir, FuzzReport};
pub use shrink::shrink;
