//! Clarity-first reference models for the baseline TLB.
//!
//! [`OracleSetAssocTlb`] restates the VPN-indexed set-associative LRU
//! TLB with the most obvious data structure available: one growable list
//! of valid entries per set, no way slots, no packed tags, no maintained
//! counters. It is observationally equivalent to the optimized
//! [`tlb::SetAssocTlb`]: which physical way an entry occupies is
//! invisible through every interface (lookups scan the whole set,
//! victims are chosen by stamp, stats count events), so a model without
//! way positions is a valid specification of it.
//!
//! [`InfiniteTlb`] is the capacity-free upper bound used for universal
//! soundness checks that hold for *any* TLB organization.

use std::collections::{BTreeMap, BTreeSet};
use tlb::{TlbConfig, TlbOutcome, TlbRequest, TlbStats};
use vmem::{Ppn, Vpn};

/// One cached translation in a reference model.
#[derive(Copy, Clone, Debug)]
struct Entry {
    vpn: Vpn,
    ppn: Ppn,
    /// Monotone recency stamp (larger = more recently used).
    stamp: u64,
}

/// Reference model of the VPN-indexed set-associative TLB with true-LRU
/// replacement: per-set lists of valid entries, nothing else.
///
/// # Example
///
/// ```
/// use sim_oracle::reference::OracleSetAssocTlb;
/// use tlb::{TlbConfig, TlbRequest};
/// use vmem::{Ppn, Vpn};
///
/// let mut oracle = OracleSetAssocTlb::new(TlbConfig::dac23_l1());
/// let req = TlbRequest::new(Vpn::new(7), 0);
/// assert!(!oracle.lookup(&req).hit);
/// oracle.insert(&req, Ppn::new(70));
/// assert_eq!(oracle.lookup(&req).ppn, Some(Ppn::new(70)));
/// ```
#[derive(Debug, Clone)]
pub struct OracleSetAssocTlb {
    cfg: TlbConfig,
    /// `sets()` lists, each holding at most `associativity` entries.
    sets: Vec<Vec<Entry>>,
    clock: u64,
    stats: TlbStats,
}

impl OracleSetAssocTlb {
    /// Creates an empty reference TLB.
    pub fn new(cfg: TlbConfig) -> Self {
        OracleSetAssocTlb {
            sets: vec![Vec::new(); cfg.sets()],
            cfg,
            clock: 0,
            stats: TlbStats::default(),
        }
    }

    fn set_of(&self, vpn: Vpn) -> usize {
        // simlint: allow(lossy-cast, reason = "modulo set count bounds the value below the set-vector length before narrowing")
        (vpn.raw() % self.cfg.sets() as u64) as usize
    }

    /// Probes the TLB, updating recency and stats — the specification of
    /// [`tlb::TranslationBuffer::lookup`] for this organization.
    pub fn lookup(&mut self, req: &TlbRequest) -> TlbOutcome {
        self.clock += 1;
        let clock = self.clock;
        let latency = self.cfg.lookup_latency;
        let set = self.set_of(req.vpn);
        for e in &mut self.sets[set] {
            if e.vpn == req.vpn {
                e.stamp = clock;
                self.stats.record(true);
                return TlbOutcome::hit(e.ppn, latency);
            }
        }
        self.stats.record(false);
        TlbOutcome::miss(latency)
    }

    /// Installs a translation — the specification of
    /// [`tlb::TranslationBuffer::insert`]: refresh in place if resident,
    /// otherwise add, evicting the least-recently-used entry of the set
    /// when it is full.
    pub fn insert(&mut self, req: &TlbRequest, ppn: Ppn) {
        self.clock += 1;
        let clock = self.clock;
        let assoc = self.cfg.associativity;
        let idx = self.set_of(req.vpn);
        let set = &mut self.sets[idx];
        if let Some(e) = set.iter_mut().find(|e| e.vpn == req.vpn) {
            e.ppn = ppn;
            e.stamp = clock;
            return;
        }
        self.stats.insertions += 1;
        if set.len() == assoc {
            // Evict the entry that has gone longest without use. Stamps
            // are unique (the clock advances on every operation), so the
            // minimum is unambiguous.
            let lru = set
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(i, _)| i)
                .expect("a full set is non-empty");
            set.swap_remove(lru);
            self.stats.evictions += 1;
        }
        set.push(Entry {
            vpn: req.vpn,
            ppn,
            stamp: clock,
        });
    }

    /// Non-perturbing content probe (the specification of
    /// [`tlb::TranslationBuffer::probe`]).
    pub fn peek(&self, vpn: Vpn) -> Option<Ppn> {
        self.sets[self.set_of(vpn)]
            .iter()
            .find(|e| e.vpn == vpn)
            .map(|e| e.ppn)
    }

    /// Invalidates everything; statistics and the clock are kept.
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Number of resident translations.
    pub fn occupancy(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

/// A fully-associative, infinite-capacity translation cache: the upper
/// bound every real TLB must stay under, and the source of universal
/// soundness checks.
///
/// Tracks, per VPN, every PPN the fill path has provided since the last
/// flush. Any hit a finite TLB reports must (a) be for a VPN that was
/// inserted at some point since the last flush and (b) return one of the
/// recorded PPNs — a TLB can serve stale translations (an old mapping
/// surviving in an unreachable-then-reachable set), but it can never
/// *invent* one.
#[derive(Debug, Clone, Default)]
pub struct InfiniteTlb {
    /// Every PPN inserted for each VPN since the last flush.
    inserted: BTreeMap<u64, BTreeSet<u64>>,
}

impl InfiniteTlb {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a fill.
    pub fn insert(&mut self, vpn: Vpn, ppn: Ppn) {
        self.inserted.entry(vpn.raw()).or_default().insert(ppn.raw());
    }

    /// Forgets everything (mirrors a TLB flush: no stale entry can
    /// survive one).
    pub fn flush(&mut self) {
        self.inserted.clear();
    }

    /// Whether an infinite TLB would hold `vpn` at all.
    pub fn contains(&self, vpn: Vpn) -> bool {
        self.inserted.contains_key(&vpn.raw())
    }

    /// Checks a subject's hit against the soundness bound; returns a
    /// description of the violation if the hit is impossible.
    pub fn check_hit(&self, vpn: Vpn, ppn: Option<Ppn>) -> Result<(), String> {
        let Some(ppns) = self.inserted.get(&vpn.raw()) else {
            return Err(format!(
                "hit on vpn {:#x} which was never inserted since the last flush",
                vpn.raw()
            ));
        };
        match ppn {
            Some(p) if ppns.contains(&p.raw()) => Ok(()),
            Some(p) => Err(format!(
                "hit on vpn {:#x} returned ppn {:#x}, never provided by any fill (saw {ppns:?})",
                vpn.raw(),
                p.raw()
            )),
            None => Err(format!("hit on vpn {:#x} carried no ppn", vpn.raw())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlb::TranslationBuffer;

    fn req(vpn: u64) -> TlbRequest {
        TlbRequest::new(Vpn::new(vpn), 0)
    }

    /// The reference and the optimized implementation agree op-for-op on
    /// a deterministic churn workload — the oracle's own smoke test.
    #[test]
    fn tracks_the_optimized_tlb_through_churn() {
        let cfg = TlbConfig::new(8, 2, 1);
        let mut oracle = OracleSetAssocTlb::new(cfg);
        let mut subject = tlb::SetAssocTlb::new(cfg);
        for i in 0..300u64 {
            let r = req(i * 7 % 23);
            let a = oracle.lookup(&r);
            let b = subject.lookup(&r);
            assert_eq!(a, b, "op {i}");
            if !a.hit {
                oracle.insert(&r, Ppn::new(1000 + r.vpn.raw()));
                subject.insert(&r, Ppn::new(1000 + r.vpn.raw()));
            }
            if i % 50 == 49 {
                oracle.flush();
                subject.flush();
            }
        }
        assert_eq!(oracle.stats(), subject.stats());
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut t = OracleSetAssocTlb::new(TlbConfig::new(2, 2, 1));
        t.insert(&req(0), Ppn::new(0));
        t.insert(&req(1), Ppn::new(1));
        assert!(t.lookup(&req(0)).hit);
        t.insert(&req(2), Ppn::new(2));
        assert_eq!(t.peek(Vpn::new(0)), Some(Ppn::new(0)));
        assert_eq!(t.peek(Vpn::new(1)), None, "LRU entry evicted");
        assert_eq!(t.stats().evictions, 1);
    }

    #[test]
    fn infinite_tlb_rejects_invented_hits() {
        let mut inf = InfiniteTlb::new();
        inf.insert(Vpn::new(5), Ppn::new(50));
        assert!(inf.check_hit(Vpn::new(5), Some(Ppn::new(50))).is_ok());
        assert!(inf.check_hit(Vpn::new(5), Some(Ppn::new(51))).is_err());
        assert!(inf.check_hit(Vpn::new(6), Some(Ppn::new(60))).is_err());
        // Remaps accumulate: both PPNs are legitimate (a stale copy may
        // survive in a temporarily unreachable set).
        inf.insert(Vpn::new(5), Ppn::new(99));
        assert!(inf.check_hit(Vpn::new(5), Some(Ppn::new(50))).is_ok());
        inf.flush();
        assert!(inf.check_hit(Vpn::new(5), Some(Ppn::new(50))).is_err());
    }
}
