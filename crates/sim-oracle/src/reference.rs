//! Clarity-first reference models for the baseline TLB.
//!
//! [`OracleSetAssocTlb`] restates the VPN-indexed set-associative LRU
//! TLB with the most obvious data structure available: one growable list
//! of valid entries per set, no way slots, no packed tags, no maintained
//! counters. It is observationally equivalent to the optimized
//! [`tlb::SetAssocTlb`]: which physical way an entry occupies is
//! invisible through every interface (lookups scan the whole set,
//! victims are chosen by stamp, stats count events), so a model without
//! way positions is a valid specification of it.
//!
//! [`InfiniteTlb`] is the capacity-free upper bound used for universal
//! soundness checks that hold for *any* TLB organization.

use std::collections::{BTreeMap, BTreeSet};
use tlb::{PerAsidStats, TlbConfig, TlbOutcome, TlbRequest, TlbStats};
use vmem::{Asid, Ppn, Vpn};

/// One cached translation in a reference model.
#[derive(Copy, Clone, Debug)]
struct Entry {
    /// Address space the translation belongs to: part of the tag, so
    /// co-running apps never hit each other's entries.
    asid: Asid,
    vpn: Vpn,
    ppn: Ppn,
    /// Monotone recency stamp (larger = more recently used).
    stamp: u64,
}

/// Reference model of the VPN-indexed set-associative TLB with true-LRU
/// replacement: per-set lists of valid entries, nothing else.
///
/// # Example
///
/// ```
/// use sim_oracle::reference::OracleSetAssocTlb;
/// use tlb::{TlbConfig, TlbRequest};
/// use vmem::{Ppn, Vpn};
///
/// let mut oracle = OracleSetAssocTlb::new(TlbConfig::dac23_l1());
/// let req = TlbRequest::new(Vpn::new(7), 0);
/// assert!(!oracle.lookup(&req).hit);
/// oracle.insert(&req, Ppn::new(70));
/// assert_eq!(oracle.lookup(&req).ppn, Some(Ppn::new(70)));
/// // Another app probing the same VPN misses: the ASID is in the tag.
/// use vmem::Asid;
/// assert!(!oracle.lookup(&req.with_asid(Asid::new(1))).hit);
/// ```
#[derive(Debug, Clone)]
pub struct OracleSetAssocTlb {
    cfg: TlbConfig,
    /// `sets()` lists, each holding at most `associativity` entries.
    sets: Vec<Vec<Entry>>,
    clock: u64,
    stats: TlbStats,
    /// Per-app counters (evictions to the victim's app, the rest to the
    /// requester's) — must sum to `stats`, mirroring the subject.
    per_asid: PerAsidStats,
}

impl OracleSetAssocTlb {
    /// Creates an empty reference TLB.
    pub fn new(cfg: TlbConfig) -> Self {
        OracleSetAssocTlb {
            sets: vec![Vec::new(); cfg.sets()],
            cfg,
            clock: 0,
            stats: TlbStats::default(),
            per_asid: PerAsidStats::default(),
        }
    }

    fn set_of(&self, vpn: Vpn) -> usize {
        // simlint: allow(lossy-cast, reason = "modulo set count bounds the value below the set-vector length before narrowing")
        (vpn.raw() % self.cfg.sets() as u64) as usize
    }

    /// Probes the TLB, updating recency and stats — the specification of
    /// [`tlb::TranslationBuffer::lookup`] for this organization.
    pub fn lookup(&mut self, req: &TlbRequest) -> TlbOutcome {
        self.clock += 1;
        let clock = self.clock;
        let latency = self.cfg.lookup_latency;
        let set = self.set_of(req.vpn);
        for e in &mut self.sets[set] {
            if e.asid == req.asid && e.vpn == req.vpn {
                e.stamp = clock;
                self.stats.record(true);
                self.per_asid.entry(req.asid).record(true);
                return TlbOutcome::hit(e.ppn, latency);
            }
        }
        self.stats.record(false);
        self.per_asid.entry(req.asid).record(false);
        TlbOutcome::miss(latency)
    }

    /// Installs a translation — the specification of
    /// [`tlb::TranslationBuffer::insert`]: refresh in place if resident,
    /// otherwise add, evicting the least-recently-used entry of the set
    /// when it is full.
    pub fn insert(&mut self, req: &TlbRequest, ppn: Ppn) {
        self.clock += 1;
        let clock = self.clock;
        let assoc = self.cfg.associativity;
        let idx = self.set_of(req.vpn);
        let set = &mut self.sets[idx];
        if let Some(e) = set
            .iter_mut()
            .find(|e| e.asid == req.asid && e.vpn == req.vpn)
        {
            e.ppn = ppn;
            e.stamp = clock;
            return;
        }
        self.stats.insertions += 1;
        self.per_asid.entry(req.asid).insertions += 1;
        if set.len() == assoc {
            // Evict the entry that has gone longest without use. Stamps
            // are unique (the clock advances on every operation), so the
            // minimum is unambiguous. The eviction is charged to the
            // victim's app, which may differ from the requester's.
            let lru = set
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(i, _)| i)
                .expect("a full set is non-empty");
            let victim = set.swap_remove(lru);
            self.stats.evictions += 1;
            self.per_asid.entry(victim.asid).evictions += 1;
        }
        set.push(Entry {
            asid: req.asid,
            vpn: req.vpn,
            ppn,
            stamp: clock,
        });
    }

    /// Non-perturbing content probe (the specification of
    /// [`tlb::TranslationBuffer::probe`]): only app `asid`'s own entry
    /// for `vpn` is visible.
    pub fn peek(&self, asid: Asid, vpn: Vpn) -> Option<Ppn> {
        self.sets[self.set_of(vpn)]
            .iter()
            .find(|e| e.asid == asid && e.vpn == vpn)
            .map(|e| e.ppn)
    }

    /// Invalidates everything; statistics and the clock are kept.
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Per-app breakdown of the cumulative statistics (the specification
    /// of [`tlb::TranslationBuffer::stats_by_asid`]).
    pub fn stats_by_asid(&self) -> Vec<(Asid, TlbStats)> {
        self.per_asid.non_empty()
    }

    /// Number of resident translations.
    pub fn occupancy(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

/// A fully-associative, infinite-capacity translation cache: the upper
/// bound every real TLB must stay under, and the source of universal
/// soundness checks.
///
/// Tracks, per VPN, every PPN the fill path has provided since the last
/// flush. Any hit a finite TLB reports must (a) be for a VPN that was
/// inserted at some point since the last flush and (b) return one of the
/// recorded PPNs — a TLB can serve stale translations (an old mapping
/// surviving in an unreachable-then-reachable set), but it can never
/// *invent* one.
#[derive(Debug, Clone, Default)]
pub struct InfiniteTlb {
    /// Every PPN inserted for each `(asid, vpn)` since the last flush.
    inserted: BTreeMap<(u16, u64), BTreeSet<u64>>,
}

impl InfiniteTlb {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a fill into `asid`'s address space.
    pub fn insert(&mut self, asid: Asid, vpn: Vpn, ppn: Ppn) {
        self.inserted
            .entry((asid.raw(), vpn.raw()))
            .or_default()
            .insert(ppn.raw());
    }

    /// Forgets everything (mirrors a TLB flush: no stale entry can
    /// survive one).
    pub fn flush(&mut self) {
        self.inserted.clear();
    }

    /// Whether an infinite TLB would hold `asid`'s `vpn` at all.
    pub fn contains(&self, asid: Asid, vpn: Vpn) -> bool {
        self.inserted.contains_key(&(asid.raw(), vpn.raw()))
    }

    /// Checks a subject's hit against the soundness bound; returns a
    /// description of the violation if the hit is impossible. The bound
    /// is per address space: a PPN only ever filled for another app does
    /// not justify this app's hit (that is exactly the leak an
    /// ASID-dropping tag compare would introduce).
    pub fn check_hit(&self, asid: Asid, vpn: Vpn, ppn: Option<Ppn>) -> Result<(), String> {
        let Some(ppns) = self.inserted.get(&(asid.raw(), vpn.raw())) else {
            return Err(format!(
                "hit on asid {asid} vpn {:#x} which was never inserted since the last flush",
                vpn.raw()
            ));
        };
        match ppn {
            Some(p) if ppns.contains(&p.raw()) => Ok(()),
            Some(p) => Err(format!(
                "hit on asid {asid} vpn {:#x} returned ppn {:#x},                  never provided by any fill (saw {ppns:?})",
                vpn.raw(),
                p.raw()
            )),
            None => Err(format!(
                "hit on asid {asid} vpn {:#x} carried no ppn",
                vpn.raw()
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlb::TranslationBuffer;

    fn req(vpn: u64) -> TlbRequest {
        TlbRequest::new(Vpn::new(vpn), 0)
    }

    /// The reference and the optimized implementation agree op-for-op on
    /// a deterministic churn workload — the oracle's own smoke test.
    #[test]
    fn tracks_the_optimized_tlb_through_churn() {
        let cfg = TlbConfig::new(8, 2, 1);
        let mut oracle = OracleSetAssocTlb::new(cfg);
        let mut subject = tlb::SetAssocTlb::new(cfg);
        for i in 0..300u64 {
            let r = req(i * 7 % 23);
            let a = oracle.lookup(&r);
            let b = subject.lookup(&r);
            assert_eq!(a, b, "op {i}");
            if !a.hit {
                oracle.insert(&r, Ppn::new(1000 + r.vpn.raw()));
                subject.insert(&r, Ppn::new(1000 + r.vpn.raw()));
            }
            if i % 50 == 49 {
                oracle.flush();
                subject.flush();
            }
        }
        assert_eq!(oracle.stats(), subject.stats());
    }

    #[test]
    fn lru_evicts_least_recent() {
        let a0 = Asid::default();
        let mut t = OracleSetAssocTlb::new(TlbConfig::new(2, 2, 1));
        t.insert(&req(0), Ppn::new(0));
        t.insert(&req(1), Ppn::new(1));
        assert!(t.lookup(&req(0)).hit);
        t.insert(&req(2), Ppn::new(2));
        assert_eq!(t.peek(a0, Vpn::new(0)), Some(Ppn::new(0)));
        assert_eq!(t.peek(a0, Vpn::new(1)), None, "LRU entry evicted");
        assert_eq!(t.stats().evictions, 1);
    }

    /// The oracle and the optimized subject agree on cross-app isolation
    /// and on how a cross-app eviction is attributed.
    #[test]
    fn asid_isolation_matches_the_subject() {
        let cfg = TlbConfig::new(2, 2, 1); // one set, two ways
        let mut oracle = OracleSetAssocTlb::new(cfg);
        let mut subject = tlb::SetAssocTlb::new(cfg);
        let r = |vpn: u64, asid: u16| req(vpn).with_asid(Asid::new(asid));
        for step in [r(7, 0), r(7, 1), r(9, 1)] {
            // Same VPN under two apps occupies two ways; a third insert
            // evicts the LRU (app 0's entry) and charges app 0.
            oracle.insert(&step, Ppn::new(100 + step.vpn.raw()));
            subject.insert(&step, Ppn::new(100 + step.vpn.raw()));
        }
        let evicted = (oracle.lookup(&r(7, 0)), subject.lookup(&r(7, 0)));
        assert_eq!(evicted.0, evicted.1);
        assert!(!evicted.0.hit, "app 0 entry was the victim");
        let survivor = (oracle.lookup(&r(7, 1)), subject.lookup(&r(7, 1)));
        assert_eq!(survivor.0, survivor.1);
        assert!(survivor.0.hit, "app 1's copy of the same VPN survives");
        assert_eq!(oracle.stats(), subject.stats());
        assert_eq!(oracle.stats_by_asid(), subject.stats_by_asid());
        let sum = oracle
            .stats_by_asid()
            .into_iter()
            .fold(TlbStats::default(), |a, (_, s)| a + s);
        assert_eq!(sum, oracle.stats(), "per-ASID stats sum to aggregate");
    }

    #[test]
    fn infinite_tlb_rejects_invented_hits() {
        let a0 = Asid::default();
        let a1 = Asid::new(1);
        let mut inf = InfiniteTlb::new();
        inf.insert(a0, Vpn::new(5), Ppn::new(50));
        assert!(inf.check_hit(a0, Vpn::new(5), Some(Ppn::new(50))).is_ok());
        assert!(inf.check_hit(a0, Vpn::new(5), Some(Ppn::new(51))).is_err());
        assert!(inf.check_hit(a0, Vpn::new(6), Some(Ppn::new(60))).is_err());
        // The bound is per app: app 1 never received this fill.
        assert!(inf.check_hit(a1, Vpn::new(5), Some(Ppn::new(50))).is_err());
        // Remaps accumulate: both PPNs are legitimate (a stale copy may
        // survive in a temporarily unreachable set).
        inf.insert(a0, Vpn::new(5), Ppn::new(99));
        assert!(inf.check_hit(a0, Vpn::new(5), Some(Ppn::new(50))).is_ok());
        inf.flush();
        assert!(inf.check_hit(a0, Vpn::new(5), Some(Ppn::new(50))).is_err());
    }
}
