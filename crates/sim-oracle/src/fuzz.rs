//! The deterministic, coverage-biased workload fuzzer.
//!
//! Everything is a pure function of the seed: configuration choices,
//! scenario selection and every operation come from a `SmallRng` seeded
//! with `seed * 1_000_003 + iteration`, and nothing reads the clock, so
//! a fuzzing campaign is byte-identical across reruns and machines —
//! which is what lets CI assert "zero divergences over seeds 0..N" as a
//! regression test.
//!
//! Rather than sampling uniformly (which would mostly produce traces
//! that never fill a set), each iteration picks one of eight adversarial
//! scenarios aimed at the paper's interesting regimes: TB churn with
//! slot reuse, single-set pressure, neighbour-spill storms, pathological
//! strides, concurrency reshaping, plain uniform churn as a control, and
//! two multi-tenant regimes — cross-app set pressure (several address
//! spaces hammering the same dense VPN range, each mapping it to its own
//! frames) and ASID-striped TB churn (apps interleaved across TB slots
//! with (asid, tb)-keyed finishes).

use crate::case::{Case, EngineCase, ModelKind, Mutation, Op, TraceCase, TraceRef};
use crate::diff::{run_case, Divergence};
use crate::shrink::shrink;
use orchestrated_tlb::{Mechanism, SharingPolicy};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::sync::OnceLock;

/// The campaign-wide trace cache directory (`fuzz --trace-cache DIR`).
static TRACE_DIR: OnceLock<PathBuf> = OnceLock::new();

/// Routes every subsequent engine case through an on-disk `trace/v1`
/// cache: `gen_engine` writes (or reuses) the workload's trace file
/// under `dir` and attaches a hash-verified [`TraceRef`], so the
/// engine-equivalence replays stream from disk exactly like a
/// `--trace-cache` grid run. Set-once per process; later calls are
/// ignored.
pub fn set_trace_dir(dir: impl Into<PathBuf>) {
    let _ = TRACE_DIR.set(dir.into());
}

/// Outcome of one fuzzing seed.
#[derive(Clone, Debug, PartialEq)]
pub struct FuzzReport {
    /// Operation traces generated and replayed.
    pub traces: u64,
    /// Whole-simulation thread-equivalence cases replayed.
    pub engine_runs: u64,
    /// The first divergence found, already shrunk, with its case.
    pub divergence: Option<(Case, Divergence)>,
}

const GEOMETRIES: [(usize, usize, u64); 5] =
    [(8, 2, 1), (16, 2, 1), (16, 4, 1), (32, 4, 1), (64, 4, 1)];
const SHARINGS: [SharingPolicy; 5] = [
    SharingPolicy::None,
    SharingPolicy::Adjacent,
    SharingPolicy::AdjacentCounter { threshold: 1 },
    SharingPolicy::AdjacentCounter { threshold: 3 },
    SharingPolicy::AllToAll,
];
const MARGINS: [u64; 4] = [0, 2, 64, 512];
const COMPRESSIONS: [Option<(usize, u64)>; 3] = [None, Some((8, 1)), Some((4, 2))];
const CONCURRENCIES: [u8; 7] = [1, 2, 3, 4, 8, 16, 20];

/// Fuzzes one seed: `iters` generated traces (plus one engine case when
/// `engine` is set), stopping at — and shrinking — the first
/// divergence.
pub fn fuzz_seed(seed: u64, iters: u64, mutation: Mutation, engine: bool) -> FuzzReport {
    let mut report = FuzzReport {
        traces: 0,
        engine_runs: 0,
        divergence: None,
    };
    for iter in 0..iters {
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(1_000_003).wrapping_add(iter));
        let case = Case::Trace(gen_trace(&mut rng, mutation));
        report.traces += 1;
        if let Some(d) = run_case(&case) {
            report.divergence = Some(shrink_divergence(&case, d));
            return report;
        }
    }
    if engine {
        let case = Case::Engine(gen_engine(seed));
        report.engine_runs += 1;
        if let Some(d) = run_case(&case) {
            report.divergence = Some(shrink_divergence(&case, d));
        }
    }
    report
}

/// Shrinks a diverging case while holding the divergence *field* fixed,
/// so op removal cannot morph the failure into an unrelated one (e.g.
/// deleting the picks of an intermediate machine size would splice two
/// counter streams into an impossible regression and trip an invariant
/// instead of the original disagreement).
fn shrink_divergence(case: &Case, d: Divergence) -> (Case, Divergence) {
    let field = d.field.clone();
    let small = shrink(case, |c| {
        run_case(c).is_some_and(|cand| cand.field == field)
    });
    let d = run_case(&small).unwrap_or(d);
    (small, d)
}

/// One whole-simulation case per seed, rotating through the registry
/// and the §V mechanism list. Every fourth seed becomes a co-run case:
/// two or three registry apps sharing the machine under distinct ASIDs
/// (trace streaming does not apply to co-runs, so those regenerate).
fn gen_engine(seed: u64) -> EngineCase {
    let benches = workloads::registry();
    let mechanisms = Mechanism::all();
    let spec = &benches[(seed % benches.len() as u64) as usize];
    let apps = if seed % 4 == 3 {
        let n = benches.len() as u64;
        let width = 2 + (seed / 4 % 2) as usize;
        (0..width)
            .map(|k| benches[((seed + 1 + 3 * k as u64) % n) as usize].name.to_owned())
            .collect()
    } else {
        Vec::new()
    };
    let corun = !apps.is_empty();
    EngineCase {
        bench: spec.name.to_owned(),
        apps,
        mechanism: mechanisms[(seed / benches.len() as u64 % mechanisms.len() as u64) as usize]
            .label()
            .to_owned(),
        sms: [2, 4, 8][(seed % 3) as usize],
        seed,
        trace: if corun { None } else { trace_ref_for(spec, seed) },
    }
}

/// The [`TraceRef`] for an engine case when a trace directory is set:
/// ensures the trace file exists (writing it on first use) and records
/// its content hash. Any disk failure falls back to generated replay
/// with a warning — the campaign's results never depend on the disk.
fn trace_ref_for(spec: &workloads::BenchmarkSpec, seed: u64) -> Option<TraceRef> {
    let dir = TRACE_DIR.get()?;
    let cache = workloads::WorkloadCache::with_disk(dir);
    let ensured = cache
        .ensure_trace_file(spec, workloads::Scale::Test, seed, vmem::PageSize::Small)
        .and_then(|path| Ok((workloads::format::file_hash(&path)?, path)));
    match ensured {
        Ok((hash, path)) => Some(TraceRef {
            hash,
            path: path.display().to_string(),
        }),
        Err(e) => {
            eprintln!(
                "warning: trace cache unusable for engine case {} seed {seed}: {e}; \
                 falling back to generated replay",
                spec.name
            );
            None
        }
    }
}

fn gen_trace(rng: &mut SmallRng, mutation: Mutation) -> TraceCase {
    let model = match mutation {
        Mutation::EvictMru => ModelKind::SetAssoc,
        Mutation::DropAsidTag => ModelKind::SetAssoc,
        Mutation::SkipFlagReset => ModelKind::Partitioned,
        Mutation::None => match rng.gen_range(0u32..5) {
            0 => ModelKind::SetAssoc,
            4 => ModelKind::Scheduler,
            _ => ModelKind::Partitioned,
        },
    };
    let mut case = TraceCase {
        model,
        geometry: GEOMETRIES[rng.gen_range(0..GEOMETRIES.len())],
        sharing: SHARINGS[rng.gen_range(0..SHARINGS.len())],
        overhead: rng.gen_bool(0.8),
        margin: MARGINS[rng.gen_range(0..MARGINS.len())],
        compression: COMPRESSIONS[rng.gen_range(0..COMPRESSIONS.len())],
        concurrency: CONCURRENCIES[rng.gen_range(0..CONCURRENCIES.len())],
        mutation,
        ops: Vec::new(),
    };
    if mutation == Mutation::SkipFlagReset {
        // The dropped notification only matters once a spill engaged a
        // flag, so bias towards regimes where spills and finishes occur.
        if case.sharing == SharingPolicy::None || case.sharing == SharingPolicy::AllToAll {
            case.sharing = SharingPolicy::Adjacent;
        }
        case.concurrency = [2, 4, 8, 16][rng.gen_range(0..4usize)];
    }
    if model == ModelKind::Scheduler {
        gen_scheduler_ops(rng, &mut case);
    } else {
        gen_tlb_ops(rng, &mut case);
    }
    case
}

fn gen_scheduler_ops(rng: &mut SmallRng, case: &mut TraceCase) {
    let decisions = 24 + rng.gen_range(0u64..56);
    let mut machine = rng.gen_range(2usize..=8);
    // Per-SM cumulative `<hits, accesses>` counters. Like the hardware
    // counters they model, they only grow, and hits never outpace
    // accesses — the subject's invariants are entitled to assume that.
    let mut counters: Vec<(u64, u64)> = vec![(0, 0); machine];
    for _ in 0..decisions {
        if rng.gen_bool(0.06) {
            case.ops.push(Op::SchedReset);
        }
        if rng.gen_bool(0.04) {
            // Table rebuild path. The subject re-latches its counter
            // baseline only when the SM count changes, and that is the
            // only situation in which real hardware counters restart —
            // so a rebuild here must genuinely change the machine size.
            let next = rng.gen_range(2usize..=7);
            machine = if next >= machine { next + 1 } else { next };
            counters = vec![(0, 0); machine];
        }
        let sms = counters
            .iter_mut()
            .map(|(hits, accesses)| {
                let da = rng.gen_range(0u64..60);
                let dh = rng.gen_range(0..=da);
                *accesses += da;
                *hits += dh;
                (rng.gen_range(0u8..=2), *hits, *accesses)
            })
            .collect();
        case.ops.push(Op::Pick { sms });
    }
}

/// The adversarial scenarios (see module docs). Each returns the
/// `(vpn, tb, asid)` for one step; churn/concurrency side effects are
/// pushed directly.
fn gen_tlb_ops(rng: &mut SmallRng, case: &mut TraceCase) {
    let scenario = match case.mutation {
        // Spill storms and TB churn corner the skip-flag-reset mutant.
        Mutation::SkipFlagReset => [1, 3][rng.gen_range(0..2usize)],
        // Only co-runs can expose a dropped ASID tag.
        Mutation::DropAsidTag => [6, 7][rng.gen_range(0..2usize)],
        _ => rng.gen_range(0u32..8),
    };
    // Co-running address spaces: always ≥ 2 for the multi-tenant
    // scenarios, occasionally sprinkled into the classic ones so every
    // regime also runs tagged.
    let napps: u16 = if scenario >= 6 {
        rng.gen_range(2u16..=4)
    } else if case.mutation == Mutation::None && rng.gen_bool(0.25) {
        rng.gen_range(2u16..=3)
    } else {
        1
    };
    let n_ops = 48 + rng.gen_range(0u64..112);
    let vpn_space = 1 + rng.gen_range(0u64..64);
    let hot_tb = rng.gen_range(0u8..4);
    let stride = [1u64, 2, 4, 8, 16][rng.gen_range(0..5usize)];
    for i in 0..n_ops {
        let (vpn, tb) = match scenario {
            // Single-set pressure: one hot TB hammers a dense range.
            2 => (rng.gen_range(0..vpn_space.min(16)), hot_tb),
            // Neighbour-spill storm: one TB overfills its partition
            // while its successor looks on.
            3 => {
                if rng.gen_bool(0.75) {
                    (rng.gen_range(0..vpn_space), hot_tb)
                } else {
                    (rng.gen_range(0..vpn_space), hot_tb.wrapping_add(1))
                }
            }
            // Pathological strides across the set index space.
            4 => ((i * stride) % 64, (i % 4) as u8),
            // Cross-app set pressure: every app hammers the same dense
            // VPN range, so the same (set, tag-sans-ASID) keeps
            // colliding across address spaces.
            6 => (rng.gen_range(0..vpn_space.min(8)), hot_tb),
            // Uniform churn (0), TB churn (1), concurrency churn (5),
            // ASID-striped TB churn (7).
            _ => (rng.gen_range(0..vpn_space), rng.gen_range(0u8..20)),
        };
        let asid: u16 = match scenario {
            // Stripe apps across TB slots: finishes below use the same
            // keying, so (asid, tb) licence resets get exercised.
            7 => u16::from(tb) % napps,
            _ if napps > 1 => rng.gen_range(0..napps),
            _ => 0,
        };
        if rng.gen_bool(0.45) {
            // Mostly identity-plus-offset mappings, *per address space* —
            // apps map the same VPN to different frames, so a cross-app
            // leak surfaces as a wrong PPN rather than a lucky match. A
            // sprinkle of remaps exercises the incoherent-refresh path
            // (and under compression, run-breaking literals).
            let ppn = if rng.gen_bool(0.08) {
                rng.gen_range(5000u64..6000) + 10_000 * u64::from(asid)
            } else {
                1000 + vpn + 7777 * u64::from(asid)
            };
            case.ops.push(Op::Insert { vpn, tb, ppn, asid });
        } else {
            case.ops.push(Op::Lookup { vpn, tb, asid });
        }
        if (scenario == 1 || scenario == 7) && rng.gen_bool(0.1) {
            let ftb = rng.gen_range(0u8..20);
            case.ops.push(Op::Finish {
                tb: ftb,
                asid: if napps > 1 { u16::from(ftb) % napps } else { 0 },
            });
        }
        if scenario == 5 && rng.gen_bool(0.05) {
            case.ops.push(Op::Concurrency {
                tbs: CONCURRENCIES[rng.gen_range(0..CONCURRENCIES.len())],
            });
        }
        if rng.gen_bool(0.015) {
            case.ops.push(Op::Flush);
        }
        if i % 16 == 15 {
            case.ops.push(Op::Check);
        }
    }
    case.ops.push(Op::Check);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The harness's own sensitivity proof: every deliberately-broken
    /// subject is caught by fuzzing and shrinks to a replayable case.
    #[test]
    fn mutants_are_caught_and_shrunk() {
        for mutation in [
            Mutation::EvictMru,
            Mutation::SkipFlagReset,
            Mutation::DropAsidTag,
        ] {
            let mut found = None;
            for seed in 0..4u64 {
                let report = fuzz_seed(seed, 40, mutation, false);
                if report.divergence.is_some() {
                    found = report.divergence;
                    break;
                }
            }
            let (case, d) = found.unwrap_or_else(|| panic!("{mutation:?} must be caught"));
            // The shrunk case is a standalone reproducer...
            assert!(run_case(&case).is_some(), "{mutation:?} shrunk case replays");
            // ...that round-trips through the text format.
            let reparsed = Case::parse(&case.serialize()).expect("serializes");
            assert_eq!(run_case(&reparsed).as_ref(), Some(&d));
        }
    }

    /// The real implementations survive a quick fuzz burst.
    #[test]
    fn clean_implementations_are_quiet() {
        for seed in 0..4u64 {
            let report = fuzz_seed(seed, 30, Mutation::None, false);
            assert_eq!(
                report.divergence.as_ref().map(|(c, d)| (c.serialize(), d.to_string())),
                None,
                "seed {seed}"
            );
        }
    }

    /// Byte-for-byte determinism: the same seed yields the same report.
    #[test]
    fn fuzzing_is_deterministic() {
        let a = fuzz_seed(3, 20, Mutation::EvictMru, false);
        let b = fuzz_seed(3, 20, Mutation::EvictMru, false);
        assert_eq!(a, b);
    }
}
