//! Failure shrinking: reduce a diverging case to a minimal reproducer
//! before it is written to disk, so checked-in `.case` files read like
//! hand-written regression tests.
//!
//! Trace cases go through ddmin-style delta debugging — remove chunks of
//! operations at halving granularity while the divergence persists —
//! followed by a one-op-at-a-time sweep. Engine cases only have one
//! shrinkable axis, the machine size, which is halved while the
//! divergence survives. The predicate is arbitrary (`reproduces`), so
//! shrinking works the same for real divergences, mutant self-tests and
//! unit tests with synthetic predicates.

use crate::case::{Case, TraceCase};

/// Shrinks `case` to a (locally) minimal case still satisfying
/// `reproduces`. The input case itself must reproduce, otherwise it is
/// returned unchanged.
pub fn shrink(case: &Case, reproduces: impl Fn(&Case) -> bool) -> Case {
    if !reproduces(case) {
        return case.clone();
    }
    match case {
        Case::Trace(t) => Case::Trace(shrink_trace(t, |t| reproduces(&Case::Trace(t.clone())))),
        Case::Engine(e) => {
            let mut best = e.clone();
            while best.sms > 1 {
                let mut candidate = best.clone();
                candidate.sms /= 2;
                if reproduces(&Case::Engine(candidate.clone())) {
                    best = candidate;
                } else {
                    break;
                }
            }
            Case::Engine(best)
        }
    }
}

fn shrink_trace(case: &TraceCase, reproduces: impl Fn(&TraceCase) -> bool) -> TraceCase {
    let mut best = case.clone();

    // ddmin: drop contiguous chunks, halving the chunk size whenever no
    // chunk of the current size can be removed.
    let mut chunk = (best.ops.len() / 2).max(1);
    while chunk >= 1 {
        let mut removed_any = true;
        while removed_any {
            removed_any = false;
            let mut start = 0;
            while start < best.ops.len() {
                let end = (start + chunk).min(best.ops.len());
                let mut candidate = best.clone();
                candidate.ops.drain(start..end);
                if reproduces(&candidate) {
                    best = candidate;
                    removed_any = true;
                    // Do not advance: the next chunk now sits at `start`.
                } else {
                    start = end;
                }
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }

    // Final one-at-a-time sweep (ddmin with chunk 1 already does this,
    // but a removal late in the trace can unlock one earlier, so sweep
    // until a fixed point).
    loop {
        let mut shrunk = false;
        let mut i = 0;
        while i < best.ops.len() {
            let mut candidate = best.clone();
            candidate.ops.remove(i);
            if reproduces(&candidate) {
                best = candidate;
                shrunk = true;
            } else {
                i += 1;
            }
        }
        if !shrunk {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::{EngineCase, ModelKind, Op};

    fn trace_with(ops: Vec<Op>) -> TraceCase {
        TraceCase {
            model: ModelKind::SetAssoc,
            ops,
            ..TraceCase::default()
        }
    }

    /// A synthetic predicate ("the trace still contains both marker
    /// ops") shrinks a 100-op trace down to exactly the two markers.
    #[test]
    fn shrinks_to_the_minimal_witness() {
        let mut ops: Vec<Op> = (0..100u64).map(|i| Op::Lookup { vpn: i, tb: 0 }).collect();
        ops[17] = Op::Flush;
        ops[83] = Op::Check;
        let case = Case::Trace(trace_with(ops));
        let needs_both = |c: &Case| {
            let Case::Trace(t) = c else { return false };
            t.ops.contains(&Op::Flush) && t.ops.contains(&Op::Check)
        };
        let Case::Trace(small) = shrink(&case, needs_both) else {
            panic!("trace in, trace out");
        };
        assert_eq!(small.ops, vec![Op::Flush, Op::Check]);
    }

    #[test]
    fn non_reproducing_case_is_returned_unchanged() {
        let case = Case::Trace(trace_with(vec![Op::Check]));
        assert_eq!(shrink(&case, |_| false), case);
    }

    #[test]
    fn engine_cases_shrink_their_machine() {
        let case = Case::Engine(EngineCase {
            bench: "gemm".to_owned(),
            mechanism: "baseline".to_owned(),
            sms: 16,
            seed: 0,
            trace: None,
        });
        // Divergence "survives" down to 4 SMs but not below.
        let Case::Engine(small) = shrink(&case, |c| {
            let Case::Engine(e) = c else { return false };
            e.sms >= 4
        }) else {
            panic!("engine in, engine out");
        };
        assert_eq!(small.sms, 4);
    }
}
