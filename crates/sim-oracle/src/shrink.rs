//! Failure shrinking: reduce a diverging case to a minimal reproducer
//! before it is written to disk, so checked-in `.case` files read like
//! hand-written regression tests.
//!
//! Trace cases go through ddmin-style delta debugging — remove chunks of
//! operations at halving granularity while the divergence persists —
//! followed by a one-op-at-a-time sweep. Engine cases shrink along two
//! axes: the co-run mix is narrowed first (solo if possible, else one
//! app at a time down to a pair), then the machine size is halved while
//! the divergence survives. The predicate is arbitrary (`reproduces`), so
//! shrinking works the same for real divergences, mutant self-tests and
//! unit tests with synthetic predicates.

use crate::case::{Case, TraceCase};

/// Shrinks `case` to a (locally) minimal case still satisfying
/// `reproduces`. The input case itself must reproduce, otherwise it is
/// returned unchanged.
pub fn shrink(case: &Case, reproduces: impl Fn(&Case) -> bool) -> Case {
    if !reproduces(case) {
        return case.clone();
    }
    match case {
        Case::Trace(t) => Case::Trace(shrink_trace(t, |t| reproduces(&Case::Trace(t.clone())))),
        Case::Engine(e) => {
            let mut best = e.clone();
            if !best.apps.is_empty() {
                let mut solo = best.clone();
                solo.apps.clear();
                if reproduces(&Case::Engine(solo.clone())) {
                    best = solo;
                } else {
                    let mut i = 0;
                    while best.apps.len() > 2 && i < best.apps.len() {
                        let mut candidate = best.clone();
                        candidate.apps.remove(i);
                        if reproduces(&Case::Engine(candidate.clone())) {
                            best = candidate;
                        } else {
                            i += 1;
                        }
                    }
                }
            }
            while best.sms > 1 {
                let mut candidate = best.clone();
                candidate.sms /= 2;
                if reproduces(&Case::Engine(candidate.clone())) {
                    best = candidate;
                } else {
                    break;
                }
            }
            Case::Engine(best)
        }
    }
}

fn shrink_trace(case: &TraceCase, reproduces: impl Fn(&TraceCase) -> bool) -> TraceCase {
    let mut best = case.clone();

    // ddmin: drop contiguous chunks, halving the chunk size whenever no
    // chunk of the current size can be removed.
    let mut chunk = (best.ops.len() / 2).max(1);
    while chunk >= 1 {
        let mut removed_any = true;
        while removed_any {
            removed_any = false;
            let mut start = 0;
            while start < best.ops.len() {
                let end = (start + chunk).min(best.ops.len());
                let mut candidate = best.clone();
                candidate.ops.drain(start..end);
                if reproduces(&candidate) {
                    best = candidate;
                    removed_any = true;
                    // Do not advance: the next chunk now sits at `start`.
                } else {
                    start = end;
                }
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }

    // Final one-at-a-time sweep (ddmin with chunk 1 already does this,
    // but a removal late in the trace can unlock one earlier, so sweep
    // until a fixed point).
    loop {
        let mut shrunk = false;
        let mut i = 0;
        while i < best.ops.len() {
            let mut candidate = best.clone();
            candidate.ops.remove(i);
            if reproduces(&candidate) {
                best = candidate;
                shrunk = true;
            } else {
                i += 1;
            }
        }
        if !shrunk {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::{EngineCase, ModelKind, Op};

    fn trace_with(ops: Vec<Op>) -> TraceCase {
        TraceCase {
            model: ModelKind::SetAssoc,
            ops,
            ..TraceCase::default()
        }
    }

    /// A synthetic predicate ("the trace still contains both marker
    /// ops") shrinks a 100-op trace down to exactly the two markers.
    #[test]
    fn shrinks_to_the_minimal_witness() {
        let mut ops: Vec<Op> = (0..100u64).map(|i| Op::Lookup { vpn: i, tb: 0, asid: 0 }).collect();
        ops[17] = Op::Flush;
        ops[83] = Op::Check;
        let case = Case::Trace(trace_with(ops));
        let needs_both = |c: &Case| {
            let Case::Trace(t) = c else { return false };
            t.ops.contains(&Op::Flush) && t.ops.contains(&Op::Check)
        };
        let Case::Trace(small) = shrink(&case, needs_both) else {
            panic!("trace in, trace out");
        };
        assert_eq!(small.ops, vec![Op::Flush, Op::Check]);
    }

    #[test]
    fn non_reproducing_case_is_returned_unchanged() {
        let case = Case::Trace(trace_with(vec![Op::Check]));
        assert_eq!(shrink(&case, |_| false), case);
    }

    #[test]
    fn engine_cases_shrink_their_machine() {
        let case = Case::Engine(EngineCase {
            bench: "gemm".to_owned(),
            apps: Vec::new(),
            mechanism: "baseline".to_owned(),
            sms: 16,
            seed: 0,
            trace: None,
        });
        // Divergence "survives" down to 4 SMs but not below.
        let Case::Engine(small) = shrink(&case, |c| {
            let Case::Engine(e) = c else { return false };
            e.sms >= 4
        }) else {
            panic!("engine in, engine out");
        };
        assert_eq!(small.sms, 4);
    }

    #[test]
    fn corun_engine_cases_narrow_their_mix_before_their_machine() {
        let case = Case::Engine(EngineCase {
            bench: "gemm".to_owned(),
            apps: ["gemm", "bfs", "mvt", "atax"].iter().map(|s| s.to_string()).collect(),
            mechanism: "baseline".to_owned(),
            sms: 8,
            seed: 0,
            trace: None,
        });
        // Divergence needs bfs co-running with at least one other app
        // (so a solo replay never reproduces) and at least 2 SMs.
        let Case::Engine(small) = shrink(&case, |c| {
            let Case::Engine(e) = c else { return false };
            e.apps.iter().any(|a| a == "bfs") && e.apps.len() >= 2 && e.sms >= 2
        }) else {
            panic!("engine in, engine out");
        };
        assert_eq!(small.apps, vec!["bfs".to_owned(), "atax".to_owned()]);
        assert_eq!(small.sms, 2);
    }

    #[test]
    fn corun_engine_cases_shrink_to_solo_when_the_mix_is_irrelevant() {
        let case = Case::Engine(EngineCase {
            bench: "gemm".to_owned(),
            apps: vec!["gemm".to_owned(), "bfs".to_owned()],
            mechanism: "baseline".to_owned(),
            sms: 4,
            seed: 0,
            trace: None,
        });
        let Case::Engine(small) = shrink(&case, |c| matches!(c, Case::Engine(_))) else {
            panic!("engine in, engine out");
        };
        assert!(small.apps.is_empty(), "mix should collapse to solo");
        assert_eq!(small.sms, 1);
    }
}
