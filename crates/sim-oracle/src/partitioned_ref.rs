//! Clarity-first reference model of the paper's TB-id-partitioned L1
//! TLB with dynamic adjacent set sharing (§IV-B, Figures 8 and 9).
//!
//! Written literally from the prose: explicit per-set slot arrays, an
//! explicit 16-bit sharing register, explicit spill counters. Every rule
//! the optimized [`orchestrated_tlb::PartitionedTlb`] implements is
//! restated here as a plain loop over slots:
//!
//! - set ownership `⌊i·S/N⌋ .. ⌊(i+1)·S/N⌋` with footnote-1 aliasing
//!   when TBs outnumber sets, and `tb % N` normalization of out-of-range
//!   hardware slot ids;
//! - lookups probing the own group plus (flag engaged) the successor
//!   TB's group, in ascending set order, paying one base latency per
//!   probed set when the multi-set overhead is modelled;
//! - insertion refreshing an already-resident page in place — with
//!   compression off the refresh is *unconditional* (last writer wins;
//!   no payload comparison, the property that licenses the engine's
//!   deferred fills), under compression only when run-coherent — then
//!   preferring the VPN-chosen candidate set, then any empty way in the
//!   group, then rescuing the candidate set's LRU victim into the
//!   neighbour's sets when the displacement margin licenses it (setting
//!   the spiller's sharing flag), and only then truly evicting;
//! - PACT'20 run compression (merge into a coherent run of the own
//!   group, decompress latency on multi-page hits);
//! - sharing-flag reset and entry adoption when the TB occupying the
//!   shared sets finishes, and whole-register reset on concurrency
//!   changes.
//!
//! One deliberately non-obvious piece of fidelity: **a slot keeps its
//! recency stamp after its entry is invalidated** (coherence clears and
//! whole-TLB flushes drop the entry but not the stamp), and spill-slot
//! selection prefers the invalid slot with the *smallest stale stamp*,
//! first-in-scan-order on ties. These dead stamps are observable — they
//! decide which slot a rescued victim lands in, which in turn decides
//! later victims — so the reference models slot positions exactly.

use orchestrated_tlb::SharingPolicy;
use std::collections::BTreeMap;
use tlb::{PerAsidStats, TlbConfig, TlbOutcome, TlbRequest, TlbStats};
use vmem::{Asid, Ppn, Vpn};

/// Configuration of the reference model (mirrors
/// `PartitionedTlbConfig`, flattened to plain fields).
#[derive(Copy, Clone, Debug)]
pub struct OraclePartitionedConfig {
    /// Geometry: entries, ways per set, base lookup latency.
    pub geometry: TlbConfig,
    /// Set-sharing policy under test.
    pub sharing: SharingPolicy,
    /// Charge one base latency per probed set.
    pub per_set_lookup_overhead: bool,
    /// Minimum idleness advantage a neighbour entry must have over the
    /// victim before a spill may displace it.
    pub displacement_margin: u64,
    /// PACT'20 compression as `(degree, decompress_latency)`.
    pub compression: Option<(usize, u64)>,
}

/// One resident translation (a compressed run of `degree` pages, or a
/// single literal page).
#[derive(Copy, Clone, Debug)]
struct Entry {
    /// Address space the run belongs to: part of the tag compare, so one
    /// app never hits (or merges into) another app's runs.
    asid: Asid,
    base_vpn: Vpn,
    base_ppn: Ppn,
    /// Valid pages within the run (bit 0 alone when uncompressed).
    mask: u32,
    /// PPN is `base_ppn` verbatim rather than run base + offset.
    literal: bool,
    /// TB slot whose placement licence covers this entry.
    owner: u8,
}

/// One physical way: an optional entry, plus a recency stamp that
/// *survives* the entry's invalidation (see module docs).
#[derive(Copy, Clone, Debug, Default)]
struct Slot {
    entry: Option<Entry>,
    stamp: u64,
}

/// One app's dynamic-sharing state: the §IV-B register word and the
/// `AdjacentCounter` spill counters, keyed by `(asid, tb)` exactly like
/// the subject — one app's spills never widen another app's reach, and a
/// finished TB only releases its own app's licences.
#[derive(Copy, Clone, Debug, Default)]
struct ShareWord {
    flags: u16,
    counters: [u8; 16],
}

/// Reference model of the TB-id-partitioned TLB.
///
/// # Example
///
/// ```
/// use orchestrated_tlb::SharingPolicy;
/// use sim_oracle::partitioned_ref::{OraclePartitionedConfig, OraclePartitionedTlb};
/// use tlb::{TlbConfig, TlbRequest};
/// use vmem::{Ppn, Vpn};
///
/// let mut oracle = OraclePartitionedTlb::new(OraclePartitionedConfig {
///     geometry: TlbConfig::dac23_l1(),
///     sharing: SharingPolicy::Adjacent,
///     per_set_lookup_overhead: true,
///     displacement_margin: 512,
///     compression: None,
/// });
/// oracle.set_concurrent_tbs(16);
/// let req = TlbRequest::new(Vpn::new(42), 3);
/// oracle.insert(&req, Ppn::new(7));
/// assert!(oracle.lookup(&req).hit);
/// assert!(!oracle.lookup(&TlbRequest::new(Vpn::new(42), 4)).hit);
/// ```
#[derive(Debug, Clone)]
pub struct OraclePartitionedTlb {
    cfg: OraclePartitionedConfig,
    /// `sets()` arrays of `associativity` slots each.
    sets: Vec<Vec<Slot>>,
    concurrent_tbs: u8,
    /// Per-app sharing registers (see [`ShareWord`]).
    share: BTreeMap<Asid, ShareWord>,
    clock: u64,
    stats: TlbStats,
    /// Per-app stats mirror: evictions to the victim's app, the rest to
    /// the requester's. Sums to `stats`.
    per_asid: PerAsidStats,
    spills: u64,
}

impl OraclePartitionedTlb {
    /// Creates an empty reference TLB (16 concurrent TBs until told
    /// otherwise, matching the subject).
    pub fn new(cfg: OraclePartitionedConfig) -> Self {
        OraclePartitionedTlb {
            sets: vec![vec![Slot::default(); cfg.geometry.associativity]; cfg.geometry.sets()],
            cfg,
            concurrent_tbs: 16,
            share: BTreeMap::new(),
            clock: 0,
            stats: TlbStats::default(),
            per_asid: PerAsidStats::default(),
            spills: 0,
        }
    }

    fn degree(&self) -> u64 {
        self.cfg.compression.map(|(d, _)| d as u64).unwrap_or(1)
    }

    fn run_base(&self, vpn: Vpn) -> Vpn {
        Vpn::new(vpn.raw() & !(self.degree() - 1))
    }

    fn run_offset(&self, vpn: Vpn) -> u32 {
        // simlint: allow(lossy-cast, reason = "modulo compression degree (a small power of two) bounds the offset well below u32")
        (vpn.raw() % self.degree()) as u32
    }

    fn groups(&self) -> usize {
        usize::from(self.concurrent_tbs).max(1)
    }

    /// Out-of-range hardware slot ids alias onto the live groups.
    fn norm_slot(&self, tb: u8) -> u8 {
        (usize::from(tb) % self.groups()) as u8
    }

    /// The sets TB `tb` owns: an equal share of the geometry, or a
    /// single aliased set when TBs outnumber sets (footnote 1).
    fn group_of(&self, tb: u8) -> Vec<usize> {
        let sets = self.cfg.geometry.sets();
        let n = self.groups();
        let tb = usize::from(tb);
        if n >= sets {
            vec![tb % sets]
        } else {
            (tb * sets / n..(tb + 1) * sets / n).collect()
        }
    }

    /// The smallest TB slot whose group contains `set`.
    fn home_tb(&self, set: usize) -> u8 {
        let n = self.groups();
        if n >= self.cfg.geometry.sets() {
            set as u8
        } else {
            (0..n as u8)
                .find(|&tb| self.group_of(tb).contains(&set))
                .unwrap_or(0)
        }
    }

    /// Whether app `asid`'s flag for TB `tb` is engaged — each app reads
    /// only its own register word.
    fn flag_engaged(&self, asid: Asid, tb: u8) -> bool {
        let word = self.share.get(&asid).copied().unwrap_or_default();
        match self.cfg.sharing {
            SharingPolicy::None => false,
            SharingPolicy::Adjacent => word.flags & (1 << (u16::from(tb) % 16)) != 0,
            SharingPolicy::AdjacentCounter { threshold } => {
                word.counters[usize::from(tb) % 16] >= threshold
            }
            SharingPolicy::AllToAll => true,
            // SharingPolicy is non_exhaustive upstream-style matching is
            // not needed: the enum is ours to mirror exhaustively.
        }
    }

    /// Sets a lookup from app `asid`'s TB `tb` probes, in probe order.
    fn searchable_sets(&self, asid: Asid, tb: u8) -> Vec<usize> {
        if self.cfg.sharing == SharingPolicy::AllToAll {
            return (0..self.cfg.geometry.sets()).collect();
        }
        let mut sets = self.group_of(tb);
        if self.flag_engaged(asid, tb) {
            let successor = ((usize::from(tb) + 1) % self.groups()) as u8;
            sets.extend(self.group_of(successor));
            sets.sort_unstable();
            sets.dedup();
        }
        sets
    }

    fn lookup_latency(&self, sets_probed: usize, compressed_hit: bool) -> u64 {
        let base = self.cfg.geometry.lookup_latency;
        let probe = if self.cfg.per_set_lookup_overhead {
            base * sets_probed.max(1) as u64
        } else {
            base
        };
        let decompress = if compressed_hit {
            self.cfg.compression.map(|(_, l)| l).unwrap_or(0)
        } else {
            0
        };
        probe + decompress
    }

    /// First slot (in probe order) holding app `asid`'s `vpn`, as
    /// `(set, way)`. The ASID is part of the tag compare.
    fn find(&self, asid: Asid, sets: &[usize], vpn: Vpn) -> Option<(usize, usize)> {
        let base = self.run_base(vpn);
        let off = self.run_offset(vpn);
        for &set in sets {
            for (way, slot) in self.sets[set].iter().enumerate() {
                if let Some(e) = slot.entry {
                    if e.asid == asid && e.base_vpn == base && e.mask & (1 << off) != 0 {
                        return Some((set, way));
                    }
                }
            }
        }
        None
    }

    fn ppn_of(&self, e: &Entry, vpn: Vpn) -> Ppn {
        if e.literal {
            e.base_ppn
        } else {
            Ppn::new(e.base_ppn.raw() + u64::from(self.run_offset(vpn)))
        }
    }

    /// Probes the TLB, updating recency and stats.
    pub fn lookup(&mut self, req: &TlbRequest) -> TlbOutcome {
        let tb = self.norm_slot(req.tb_slot);
        self.clock += 1;
        let sets = self.searchable_sets(req.asid, tb);
        match self.find(req.asid, &sets, req.vpn) {
            Some((set, way)) => {
                let e = self.sets[set][way].entry.expect("find returns live slots");
                let compressed = e.mask.count_ones() > 1;
                let latency = self.lookup_latency(sets.len(), compressed);
                self.sets[set][way].stamp = self.clock;
                self.stats.record(true);
                self.per_asid.entry(req.asid).record(true);
                TlbOutcome::hit(self.ppn_of(&e, req.vpn), latency)
            }
            None => {
                self.stats.record(false);
                self.per_asid.entry(req.asid).record(false);
                TlbOutcome::miss(self.lookup_latency(sets.len(), false))
            }
        }
    }

    /// Installs a translation, spelling out the full §IV-B insertion
    /// procedure (refresh, compression merge, empty way, victim rescue
    /// into the neighbour, eviction).
    pub fn insert(&mut self, req: &TlbRequest, ppn: Ppn) {
        let tb = self.norm_slot(req.tb_slot);
        self.clock += 1;
        let clock = self.clock;
        let base = self.run_base(req.vpn);
        let off = self.run_offset(req.vpn);
        // The PPN the run base would need for `ppn` to sit at `off`.
        let expected_base_ppn = ppn.raw().checked_sub(u64::from(off));

        // 1. Already reachable? Without compression the refresh is
        //    *unconditional* — last writer wins, no payload comparison —
        //    which is exactly what makes the subject's compression-off
        //    insert deferred-fill eligible (a sentinel PPN must steer
        //    replacement identically to the real one). Under compression
        //    the base-delta predicate is inherently payload-dependent:
        //    refresh only when coherent, otherwise drop the stale page
        //    from its run (the slot's stamp survives even if the run
        //    empties).
        if let Some((set, way)) = self.find(req.asid, &self.searchable_sets(req.asid, tb), req.vpn) {
            let slot = &mut self.sets[set][way];
            let e = slot.entry.as_mut().expect("find returns live slots");
            if self.cfg.compression.is_none() {
                e.base_ppn = ppn;
                slot.stamp = clock;
                return;
            }
            let coherent = if e.literal {
                e.mask == 1 << off && e.base_ppn == ppn
            } else {
                Some(e.base_ppn.raw()) == expected_base_ppn
            };
            if coherent {
                slot.stamp = clock;
                return;
            }
            e.mask &= !(1 << off);
            if e.mask == 0 {
                slot.entry = None;
            }
        }

        // 2. Compression: extend a coherent run already in the own group.
        //    Runs never compress across address spaces: the candidate
        //    must carry the requester's ASID.
        if self.cfg.compression.is_some() {
            if let Some(expected) = expected_base_ppn {
                for set in self.group_of(tb) {
                    for slot in &mut self.sets[set] {
                        if let Some(e) = slot.entry.as_mut() {
                            if e.asid == req.asid
                                && !e.literal
                                && e.base_vpn == base
                                && e.base_ppn.raw() == expected
                            {
                                e.mask |= 1 << off;
                                slot.stamp = clock;
                                return;
                            }
                        }
                    }
                }
            }
        }

        // 3. A new entry is needed.
        self.stats.insertions += 1;
        self.per_asid.entry(req.asid).insertions += 1;
        let new_entry = match expected_base_ppn {
            Some(expected) if self.cfg.compression.is_some() => Entry {
                asid: req.asid,
                base_vpn: base,
                base_ppn: Ppn::new(expected),
                mask: 1 << off,
                literal: false,
                owner: tb,
            },
            // No compression, or the run-base PPN would underflow:
            // store the single page literally.
            _ => Entry {
                asid: req.asid,
                base_vpn: base,
                base_ppn: ppn,
                mask: 1 << off,
                literal: true,
                owner: tb,
            },
        };

        // Candidate set inside the own group, sub-indexed by VPN.
        let own = self.group_of(tb);
        let candidate = own[((req.vpn.raw() / self.degree()) % own.len() as u64) as usize];

        // 3a. An empty way: candidate set first, then the rest of the
        //     group in set order.
        let mut empty = None;
        for way in 0..self.cfg.geometry.associativity {
            if self.sets[candidate][way].entry.is_none() {
                empty = Some((candidate, way));
                break;
            }
        }
        if empty.is_none() {
            'group: for &set in &own {
                for way in 0..self.cfg.geometry.associativity {
                    if self.sets[set][way].entry.is_none() {
                        empty = Some((set, way));
                        break 'group;
                    }
                }
            }
        }
        if let Some((set, way)) = empty {
            self.sets[set][way] = Slot {
                entry: Some(new_entry),
                stamp: clock,
            };
            return;
        }

        // 3b. The group is full: the candidate set's LRU way is the
        //     victim (stamps are unique among live entries, so the
        //     minimum is unambiguous).
        let victim_way = (0..self.cfg.geometry.associativity)
            .min_by_key(|&w| self.sets[candidate][w].stamp)
            .expect("associativity is non-zero");
        let victim = self.sets[candidate][victim_way];

        // 3c. Dynamic sharing: rescue the victim into the successor
        //     TB's sets (anywhere outside the own group under
        //     all-to-all) if a slot there is empty, or holds an entry
        //     idle for `displacement_margin` longer than the victim.
        //     Empty slots win over live ones; among equals the lowest
        //     stamp wins, first in scan order on ties (dead stamps made
        //     this matter — see module docs).
        // Rescue is gated on the victim belonging to the spilling app:
        // the licence it would sit under is `(req.asid, tb)`, which
        // another app's lookups never consult — a cross-app rescue would
        // be permanently unreachable. Cross-app victims die in place.
        let victim_is_ours = victim
            .entry
            .is_some_and(|e| e.asid == req.asid);
        let mut rescued = false;
        if self.cfg.sharing != SharingPolicy::None && victim_is_ours {
            let spill_sets: Vec<usize> = if self.cfg.sharing == SharingPolicy::AllToAll {
                (0..self.cfg.geometry.sets())
                    .filter(|s| !own.contains(s))
                    .collect()
            } else {
                let successor = ((usize::from(tb) + 1) % self.groups()) as u8;
                self.group_of(successor)
            };
            let mut best: Option<(bool, u64, usize, usize)> = None;
            for &set in &spill_sets {
                for way in 0..self.cfg.geometry.associativity {
                    let slot = &self.sets[set][way];
                    let key = (slot.entry.is_some(), slot.stamp);
                    if best.is_none_or(|(live, stamp, _, _)| key < (live, stamp)) {
                        best = Some((key.0, key.1, set, way));
                    }
                }
            }
            if let Some((live, stamp, set, way)) = best {
                let displaceable =
                    !live || stamp.saturating_add(self.cfg.displacement_margin) < victim.stamp;
                if displaceable {
                    if live {
                        let displaced_asid = self.sets[set][way]
                            .entry
                            .expect("live slot has an entry")
                            .asid;
                        self.stats.evictions += 1;
                        self.per_asid.entry(displaced_asid).evictions += 1;
                    }
                    // The rescued entry moves with its stamp, re-owned
                    // by the spilling TB whose flag licenses the spot.
                    let mut moved = victim;
                    if let Some(e) = moved.entry.as_mut() {
                        e.owner = tb;
                    }
                    self.sets[set][way] = moved;
                    let word = self.share.entry(req.asid).or_default();
                    word.flags |= 1 << (u16::from(tb) % 16);
                    let c = &mut word.counters[usize::from(tb) % 16];
                    *c = c.saturating_add(1);
                    self.spills += 1;
                    rescued = true;
                }
            }
        }
        if !rescued {
            let victim_asid = victim
                .entry
                .map(|e| e.asid)
                .unwrap_or_default();
            self.stats.evictions += 1;
            self.per_asid.entry(victim_asid).evictions += 1;
        }
        self.sets[candidate][victim_way] = Slot {
            entry: Some(new_entry),
            stamp: clock,
        };
    }

    /// Non-perturbing content probe as app `asid`'s TB `tb_slot` would
    /// see it.
    pub fn peek(&self, asid: Asid, vpn: Vpn, tb_slot: u8) -> Option<Ppn> {
        let tb = self.norm_slot(tb_slot);
        let sets = self.searchable_sets(asid, tb);
        self.find(asid, &sets, vpn).map(|(set, way)| {
            let e = self.sets[set][way].entry.expect("find returns live slots");
            self.ppn_of(&e, vpn)
        })
    }

    /// App `asid`'s TB occupying `tb_slot` finished: clear its
    /// *predecessor's* sharing flag (the TB spilling INTO the finished
    /// TB's sets) in that app's register word only, and hand entries the
    /// predecessor parked abroad — this app's entries only — to each
    /// set's natural owner. Entries are kept; other apps' licences into
    /// the same sets survive (their TBs are still running).
    pub fn on_tb_finish(&mut self, asid: Asid, tb_slot: u8) {
        let tb = self.norm_slot(tb_slot);
        let n = self.groups() as u16;
        let pred = (u16::from(tb) + n - 1) % n;
        if let Some(word) = self.share.get_mut(&asid) {
            word.flags &= !(1 << (pred % 16));
            word.counters[usize::from(pred % 16)] = 0;
        }
        for set in 0..self.cfg.geometry.sets() {
            for way in 0..self.cfg.geometry.associativity {
                let Some(e) = self.sets[set][way].entry else {
                    continue;
                };
                if e.asid != asid || u16::from(e.owner) % 16 != pred % 16 {
                    continue;
                }
                if !self.group_of(e.owner).contains(&set) {
                    let home = self.home_tb(set);
                    self.sets[set][way].entry.as_mut().expect("checked").owner = home;
                }
            }
        }
    }

    /// Concurrency change at kernel launch: set groups move, so sharing
    /// state resets and every entry is adopted by its set's new owner.
    pub fn set_concurrent_tbs(&mut self, tbs: u8) {
        let tbs = tbs.max(1);
        if tbs == self.concurrent_tbs {
            return;
        }
        self.concurrent_tbs = tbs;
        self.share.clear();
        for set in 0..self.cfg.geometry.sets() {
            let home = self.home_tb(set);
            for slot in &mut self.sets[set] {
                if let Some(e) = slot.entry.as_mut() {
                    e.owner = home;
                }
            }
        }
    }

    /// Invalidates every entry and clears the sharing state; slot
    /// stamps and the clock are kept (matching the subject, where they
    /// remain observable through later spill-slot choices).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            for slot in set {
                slot.entry = None;
            }
        }
        self.share.clear();
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Union of every app's sharing register word — single-app callers
    /// see exactly the pre-multi-tenant value.
    pub fn sharing_flags(&self) -> u16 {
        self.share.values().fold(0, |acc, w| acc | w.flags)
    }

    /// One app's sharing register word (0 if the app never spilled).
    pub fn sharing_flags_of(&self, asid: Asid) -> u16 {
        self.share.get(&asid).map_or(0, |w| w.flags)
    }

    /// Per-app breakdown of the cumulative statistics (mirrors
    /// [`tlb::TranslationBuffer::stats_by_asid`]).
    pub fn stats_by_asid(&self) -> Vec<(Asid, TlbStats)> {
        self.per_asid.non_empty()
    }

    /// Victims rescued into a neighbour's sets so far.
    pub fn spills(&self) -> u64 {
        self.spills
    }

    /// Number of live entries.
    pub fn occupancy(&self) -> usize {
        self.sets
            .iter()
            .flatten()
            .filter(|s| s.entry.is_some())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestrated_tlb::{PartitionedTlb, PartitionedTlbConfig};
    use tlb::TranslationBuffer;

    fn pair(sharing: SharingPolicy, compression: Option<(usize, u64)>) -> (OraclePartitionedTlb, PartitionedTlb) {
        let geometry = TlbConfig::new(16, 2, 1); // 8 sets x 2 ways
        let oracle = OraclePartitionedTlb::new(OraclePartitionedConfig {
            geometry,
            sharing,
            per_set_lookup_overhead: true,
            displacement_margin: 4,
            compression,
        });
        let subject = PartitionedTlb::new(PartitionedTlbConfig {
            geometry,
            sharing,
            per_set_lookup_overhead: true,
            displacement_margin: 4,
            compression: compression.map(|(degree, decompress_latency)| tlb::CompressionConfig {
                degree,
                decompress_latency,
            }),
        });
        (oracle, subject)
    }

    /// Reference and subject agree op-for-op across every sharing
    /// policy on a churning multi-TB workload with TB completions — the
    /// oracle's own smoke test (the full differential harness lives in
    /// `diff`).
    #[test]
    fn tracks_the_optimized_tlb_across_policies() {
        for sharing in [
            SharingPolicy::None,
            SharingPolicy::Adjacent,
            SharingPolicy::AdjacentCounter { threshold: 2 },
            SharingPolicy::AllToAll,
        ] {
            let (mut oracle, mut subject) = pair(sharing, None);
            oracle.set_concurrent_tbs(4);
            subject.set_concurrent_tbs(4);
            for i in 0..400u64 {
                let vpn = Vpn::new(i * 13 % 37);
                let tb = (i % 5) as u8; // slot 4 exercises norm_slot aliasing
                let r = TlbRequest::new(vpn, tb);
                let a = oracle.lookup(&r);
                let b = subject.lookup(&r);
                assert_eq!(a, b, "{sharing:?} lookup {i}");
                if !a.hit {
                    oracle.insert(&r, Ppn::new(500 + vpn.raw()));
                    subject.insert(&r, Ppn::new(500 + vpn.raw()));
                }
                if i % 53 == 52 {
                    oracle.on_tb_finish(Asid::default(), tb);
                    subject.on_tb_finish(Asid::default(), tb);
                }
                assert_eq!(oracle.stats(), subject.stats(), "{sharing:?} stats {i}");
                assert_eq!(
                    oracle.sharing_flags(),
                    subject.sharing_flags(),
                    "{sharing:?} flags {i}"
                );
                assert_eq!(oracle.spills(), subject.spills(), "{sharing:?} spills {i}");
            }
            subject.check_invariants().expect("subject stays sound");
        }
    }

    #[test]
    fn tracks_the_optimized_tlb_under_compression() {
        let (mut oracle, mut subject) = pair(SharingPolicy::Adjacent, Some((4, 2)));
        oracle.set_concurrent_tbs(4);
        subject.set_concurrent_tbs(4);
        for i in 0..300u64 {
            let vpn = Vpn::new(i % 24);
            let tb = (i / 24 % 4) as u8;
            let r = TlbRequest::new(vpn, tb);
            let a = oracle.lookup(&r);
            let b = subject.lookup(&r);
            assert_eq!(a, b, "lookup {i}");
            if !a.hit {
                // Mostly contiguous mappings so runs merge, with a
                // deterministic sprinkle of run-breaking remaps.
                let ppn = if i % 7 == 3 { 9000 + i } else { 2000 + vpn.raw() };
                oracle.insert(&r, Ppn::new(ppn));
                subject.insert(&r, Ppn::new(ppn));
            }
            assert_eq!(oracle.stats(), subject.stats(), "stats {i}");
        }
    }

    /// Reference and subject agree op-for-op when two apps co-run on the
    /// same partitioned TLB: tag isolation, per-app sharing licences,
    /// per-app stats attribution, and (asid, tb)-scoped finish resets.
    #[test]
    fn tracks_the_optimized_tlb_across_address_spaces() {
        for sharing in [
            SharingPolicy::None,
            SharingPolicy::Adjacent,
            SharingPolicy::AdjacentCounter { threshold: 2 },
            SharingPolicy::AllToAll,
        ] {
            let (mut oracle, mut subject) = pair(sharing, None);
            oracle.set_concurrent_tbs(4);
            subject.set_concurrent_tbs(4);
            for i in 0..600u64 {
                let asid = Asid::new((i % 3) as u16);
                let vpn = Vpn::new(i * 13 % 37);
                let tb = (i % 5) as u8;
                let r = TlbRequest::new(vpn, tb).with_asid(asid);
                let a = oracle.lookup(&r);
                let b = subject.lookup(&r);
                assert_eq!(a, b, "{sharing:?} asid {asid} lookup {i}");
                if !a.hit {
                    // Per-app frames: the same VPN maps differently in
                    // each address space, so a tag-isolation bug would
                    // surface as a wrong PPN, not a coincidental match.
                    let ppn = Ppn::new(500 + vpn.raw() + 10_000 * asid.raw() as u64);
                    oracle.insert(&r, ppn);
                    subject.insert(&r, ppn);
                }
                if i % 53 == 52 {
                    oracle.on_tb_finish(asid, tb);
                    subject.on_tb_finish(asid, tb);
                }
                assert_eq!(oracle.stats(), subject.stats(), "{sharing:?} stats {i}");
                assert_eq!(
                    oracle.stats_by_asid(),
                    subject.stats_by_asid(),
                    "{sharing:?} per-asid stats {i}"
                );
                for a in 0..3u16 {
                    assert_eq!(
                        oracle.sharing_flags_of(Asid::new(a)),
                        subject.sharing_flags_of(Asid::new(a)),
                        "{sharing:?} asid {a} flags {i}"
                    );
                }
                assert_eq!(oracle.spills(), subject.spills(), "{sharing:?} spills {i}");
            }
            subject.check_invariants().expect("subject stays sound");
            let sum = oracle
                .stats_by_asid()
                .into_iter()
                .fold(TlbStats::default(), |a, (_, s)| a + s);
            assert_eq!(sum, oracle.stats(), "per-ASID stats sum to aggregate");
        }
    }

    #[test]
    fn dead_stamps_steer_spill_slots() {
        // Two TBs, 2 sets x 2 ways. TB 1's set gains entries, loses them
        // to a flush-free invalidation path (coherence clear), and the
        // surviving dead stamps must steer TB 0's later spills exactly
        // as in the subject.
        let (mut oracle, mut subject) = pair(SharingPolicy::Adjacent, None);
        oracle.set_concurrent_tbs(2);
        subject.set_concurrent_tbs(2);
        let ops: &[(u64, u8, Option<u64>)] = &[
            (100, 1, Some(1)), // TB 1 fills its set
            (101, 1, Some(2)),
            (100, 1, Some(50)), // remap: refreshes in place (last writer wins)
            (1, 0, Some(10)),   // TB 0 fills its set...
            (2, 0, Some(11)),
            (3, 0, Some(12)), // ...set is 2-way: overflow spills into TB 1
            (4, 0, Some(13)),
        ];
        for &(vpn, tb, ppn) in ops {
            let r = TlbRequest::new(Vpn::new(vpn), tb);
            if let Some(p) = ppn {
                oracle.insert(&r, Ppn::new(p));
                subject.insert(&r, Ppn::new(p));
            }
        }
        assert_eq!(oracle.spills(), subject.spills());
        assert_eq!(oracle.sharing_flags(), subject.sharing_flags());
        for vpn in [1u64, 2, 3, 4, 100, 101] {
            for tb in 0..2u8 {
                assert_eq!(
                    oracle.peek(Asid::default(), Vpn::new(vpn), tb),
                    subject.peek(Asid::default(), Vpn::new(vpn), tb),
                    "vpn {vpn} tb {tb}"
                );
            }
        }
    }
}
