//! Whole-simulation differential replay: one benchmark × mechanism ×
//! machine size, executed serially and at 2 and 4 engine worker
//! threads — the 4-thread run once more with the sharded phase-B drain
//! forced on every round — reports diffed field by field.
//!
//! The engine's determinism contract says thread count (and the
//! serial-vs-sharded drain choice) is invisible: the two-phase event
//! execution makes every statistic byte-identical regardless of how
//! SMs are spread across workers or how phase B is parallelized. This
//! module is that contract as an executable check, with the runtime
//! sanitizer and the mem-hier accounting cross-checks enabled so
//! internal invariants are audited along the way. (The forced-sharded
//! replay runs unsanitized — the sanitizer's per-cycle hook pins the
//! engine to the serial drain — which is itself a report-identity
//! check: the sanitizer must never perturb a simulation.)

use crate::case::EngineCase;
use crate::diff::Divergence;
use gpu_sim::{GpuConfig, SimReport};
use orchestrated_tlb::Mechanism;
use workloads::format::{file_hash, TraceSource};
use workloads::{registry, Scale};

fn setup_error(what: String) -> Divergence {
    Divergence {
        op_index: None,
        field: "setup".to_owned(),
        expected: "a replayable engine case".to_owned(),
        actual: what,
    }
}

/// Runs one simulation of the case at the given thread count. `shard`
/// forces the sharded phase-B drain on every round (and turns the
/// sanitizer off, since its per-cycle hook pins the serial drain).
fn simulate(case: &EngineCase, threads: usize, shard: bool) -> Result<SimReport, Divergence> {
    let benches = registry();
    let spec = benches
        .iter()
        .find(|s| s.name == case.bench)
        .cloned()
        .ok_or_else(|| setup_error(format!("unknown benchmark {:?}", case.bench)))?;
    let mechanism = Mechanism::all()
        .into_iter()
        .find(|m| m.label() == case.mechanism)
        .ok_or_else(|| setup_error(format!("unknown mechanism {:?}", case.mechanism)))?;
    let config = GpuConfig {
        num_sms: case.sms.max(1),
        shard_threshold: if shard { 1 } else { 0 },
        ..GpuConfig::dac23_baseline()
    };
    let mut sim = mechanism
        .simulator(config)
        .with_sim_threads(threads)
        .with_sanitizer(!shard);
    // A co-run case replays an app-interleaved mix of address spaces:
    // each named app is generated at the case seed and gets its own
    // ASID. Trace streaming does not apply — the merged TB stream is
    // regenerated from names + seed, which pins it just as hard.
    if case.apps.len() >= 2 {
        if case.trace.is_some() {
            return Err(setup_error("co-run cases cannot stream a trace".to_owned()));
        }
        let apps = case
            .apps
            .iter()
            .map(|name| {
                benches
                    .iter()
                    .find(|s| s.name == *name)
                    .map(|s| s.generate(Scale::Test, case.seed))
                    .ok_or_else(|| setup_error(format!("unknown co-run app {name:?}")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        return Ok(sim.run_corun(apps));
    }
    // A trace reference pins the replay input by content hash: refuse
    // to run (as a setup divergence) rather than silently diverge
    // against different bytes, and stream from the file on a match.
    if let Some(t) = &case.trace {
        let path = std::path::Path::new(&t.path);
        let actual = file_hash(path)
            .map_err(|e| setup_error(format!("trace file {}: {e}", t.path)))?;
        if actual != t.hash {
            return Err(setup_error(format!(
                "trace file {} hash {actual:016x} does not match recorded {:016x}",
                t.path, t.hash
            )));
        }
        let source = TraceSource::open(path)
            .map_err(|e| setup_error(format!("trace file {}: {e}", t.path)))?;
        return sim
            .run_source(source)
            .map_err(|e| setup_error(format!("trace replay of {}: {e}", t.path)));
    }
    let workload = spec.generate(Scale::Test, case.seed);
    Ok(sim.run(workload))
}

/// Diffs `threaded` against the serial reference; `tag` labels the
/// replay configuration in the divergence's field name.
fn diff_reports(serial: &SimReport, threaded: &SimReport, tag: &str) -> Option<Divergence> {
    let diff = |field: String, expected: String, actual: String| {
        Some(Divergence {
            op_index: None,
            field,
            expected,
            actual,
        })
    };
    if serial.total_cycles != threaded.total_cycles {
        return diff(
            format!("total-cycles@{tag}"),
            serial.total_cycles.to_string(),
            threaded.total_cycles.to_string(),
        );
    }
    for (sm, (a, b)) in serial.l1_tlb.iter().zip(&threaded.l1_tlb).enumerate() {
        if a != b {
            return diff(
                format!("l1-tlb[{sm}]@{tag}"),
                format!("{a:?}"),
                format!("{b:?}"),
            );
        }
    }
    if serial.l2_tlb != threaded.l2_tlb {
        return diff(
            format!("l2-tlb@{tag}"),
            format!("{:?}", serial.l2_tlb),
            format!("{:?}", threaded.l2_tlb),
        );
    }
    if serial.per_app.len() != threaded.per_app.len() {
        return diff(
            format!("per-app-count@{tag}"),
            serial.per_app.len().to_string(),
            threaded.per_app.len().to_string(),
        );
    }
    for (k, (a, b)) in serial.per_app.iter().zip(&threaded.per_app).enumerate() {
        if a != b {
            return diff(
                format!("per-app[{k}]@{tag}"),
                format!("{a:?}"),
                format!("{b:?}"),
            );
        }
    }
    // The CSV row folds in every remaining aggregate (walks, per-stage
    // latency attribution, ...): one comparison covers them all.
    let (a, b) = (serial.to_csv_row(), threaded.to_csv_row());
    if a != b {
        return diff(format!("csv-row@{tag}"), a, b);
    }
    None
}

/// Replays the case at 2 and 4 worker threads (plus the forced-sharded
/// drain at 1 and 4 threads) and returns the first report field where
/// any replay disagrees with its serial reference.
///
/// The forced-shard replays use a *different config* (`shard_threshold`
/// 1, sanitizer off), and the [`SimReport::sharded_rounds`] counter
/// deliberately reflects the configured policy — so they are diffed
/// against a serial run of the same forced config (where the counter
/// must be thread-count-identical), and that serial forced run is in
/// turn diffed against the sanitized reference with only the
/// `sharded_rounds` counter exempted: neither the shard policy nor the
/// sanitizer may perturb any simulated statistic.
pub fn run_engine(case: &EngineCase) -> Option<Divergence> {
    let serial = match simulate(case, 1, false) {
        Ok(r) => r,
        Err(d) => return Some(d),
    };
    for (threads, tag) in [(2, "2t"), (4, "4t")] {
        let threaded = match simulate(case, threads, false) {
            Ok(r) => r,
            Err(d) => return Some(d),
        };
        if let Some(d) = diff_reports(&serial, &threaded, tag) {
            return Some(d);
        }
    }
    let serial_sharded = match simulate(case, 1, true) {
        Ok(r) => r,
        Err(d) => return Some(d),
    };
    let mut masked = serial_sharded.clone();
    masked.sharded_rounds = serial.sharded_rounds;
    if let Some(d) = diff_reports(&serial, &masked, "1t-sharded") {
        return Some(d);
    }
    let sharded = match simulate(case, 4, true) {
        Ok(r) => r,
        Err(d) => return Some(d),
    };
    diff_reports(&serial_sharded, &sharded, "4t-sharded")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_counts_agree_on_a_small_case() {
        let case = EngineCase {
            bench: "gemm".to_owned(),
            apps: Vec::new(),
            mechanism: "sched+part+share".to_owned(),
            sms: 2,
            seed: 11,
            trace: None,
        };
        assert_eq!(run_engine(&case), None);
    }

    /// A co-run engine case (two address spaces, MASK fill tokens so
    /// the token gate sits on the replayed path) is byte-identical
    /// across thread counts and the forced-sharded drain, end to end.
    #[test]
    fn corun_cases_are_thread_equivalent() {
        let case = EngineCase {
            bench: "gemm".to_owned(),
            apps: vec!["gemm".to_owned(), "bfs".to_owned()],
            mechanism: "ours+mask-tokens".to_owned(),
            sms: 2,
            seed: 11,
            trace: None,
        };
        assert_eq!(run_engine(&case), None);
    }

    #[test]
    fn corun_cases_refuse_unknown_apps_and_trace_refs() {
        use crate::case::TraceRef;

        let case = EngineCase {
            bench: "gemm".to_owned(),
            apps: vec!["gemm".to_owned(), "no-such-app".to_owned()],
            mechanism: "baseline".to_owned(),
            sms: 2,
            seed: 0,
            trace: None,
        };
        let d = run_engine(&case).expect("must not replay");
        assert_eq!(d.field, "setup");
        assert!(d.actual.contains("no-such-app"), "{d}");

        let with_trace = EngineCase {
            apps: vec!["gemm".to_owned(), "bfs".to_owned()],
            trace: Some(TraceRef { hash: 0, path: "x.trace".to_owned() }),
            ..case
        };
        let d = run_engine(&with_trace).expect("must not replay");
        assert_eq!(d.field, "setup");
        assert!(d.actual.contains("cannot stream"), "{d}");
    }

    #[test]
    fn unknown_names_become_setup_divergences() {
        let case = EngineCase {
            bench: "no-such-bench".to_owned(),
            apps: Vec::new(),
            mechanism: "baseline".to_owned(),
            sms: 2,
            seed: 0,
            trace: None,
        };
        let d = run_engine(&case).expect("must not replay");
        assert_eq!(d.field, "setup");
    }

    #[test]
    fn trace_backed_cases_replay_and_verify_their_hash() {
        use crate::case::TraceRef;

        let spec = registry().into_iter().find(|s| s.name == "gemm").unwrap();
        let workload = spec.generate(Scale::Test, 11);
        let path = std::env::temp_dir()
            .join(format!("oracle-engine-{}.trace", std::process::id()));
        workloads::format::write_workload(&path, &workload, "gemm", Some(Scale::Test), 11)
            .unwrap();
        let hash = file_hash(&path).unwrap();

        // The streamed replay agrees across thread counts like the
        // generated one.
        let case = EngineCase {
            bench: "gemm".to_owned(),
            apps: Vec::new(),
            mechanism: "sched+part+share".to_owned(),
            sms: 2,
            seed: 11,
            trace: Some(TraceRef {
                hash,
                path: path.display().to_string(),
            }),
        };
        assert_eq!(run_engine(&case), None);

        // A wrong hash is a refusal, not a replay of the wrong bytes.
        let tampered = EngineCase {
            trace: Some(TraceRef {
                hash: hash ^ 1,
                path: path.display().to_string(),
            }),
            ..case
        };
        let d = run_engine(&tampered).expect("hash mismatch must not replay");
        assert_eq!(d.field, "setup");
        assert!(d.actual.contains("does not match"), "{d}");

        std::fs::remove_file(&path).unwrap();
    }
}
