//! Whole-simulation differential replay: one benchmark × mechanism ×
//! machine size, executed with 1 and 2 engine worker threads, reports
//! diffed field by field.
//!
//! The engine's determinism contract says thread count is invisible:
//! the two-phase event execution makes every statistic byte-identical
//! regardless of how SMs are spread across workers. This module is that
//! contract as an executable check, with the runtime sanitizer and the
//! mem-hier accounting cross-checks enabled so internal invariants are
//! audited along the way.

use crate::case::EngineCase;
use crate::diff::Divergence;
use gpu_sim::{GpuConfig, SimReport};
use orchestrated_tlb::Mechanism;
use workloads::{registry, Scale};

fn setup_error(what: String) -> Divergence {
    Divergence {
        op_index: None,
        field: "setup".to_owned(),
        expected: "a replayable engine case".to_owned(),
        actual: what,
    }
}

/// Runs one simulation of the case at the given thread count.
fn simulate(case: &EngineCase, threads: usize) -> Result<SimReport, Divergence> {
    let spec = registry()
        .into_iter()
        .find(|s| s.name == case.bench)
        .ok_or_else(|| setup_error(format!("unknown benchmark {:?}", case.bench)))?;
    let mechanism = Mechanism::all()
        .into_iter()
        .find(|m| m.label() == case.mechanism)
        .ok_or_else(|| setup_error(format!("unknown mechanism {:?}", case.mechanism)))?;
    let config = GpuConfig {
        num_sms: case.sms.max(1),
        ..GpuConfig::dac23_baseline()
    };
    let workload = spec.generate(Scale::Test, case.seed);
    Ok(mechanism
        .simulator(config)
        .with_sim_threads(threads)
        .with_sanitizer(true)
        .run(workload))
}

/// Replays the case with 1 and 2 worker threads and returns the first
/// report field where the runs disagree.
pub fn run_engine(case: &EngineCase) -> Option<Divergence> {
    let serial = match simulate(case, 1) {
        Ok(r) => r,
        Err(d) => return Some(d),
    };
    let threaded = match simulate(case, 2) {
        Ok(r) => r,
        Err(d) => return Some(d),
    };
    let diff = |field: &str, expected: String, actual: String| {
        Some(Divergence {
            op_index: None,
            field: field.to_owned(),
            expected,
            actual,
        })
    };
    if serial.total_cycles != threaded.total_cycles {
        return diff(
            "total-cycles",
            serial.total_cycles.to_string(),
            threaded.total_cycles.to_string(),
        );
    }
    for (sm, (a, b)) in serial.l1_tlb.iter().zip(&threaded.l1_tlb).enumerate() {
        if a != b {
            return diff(&format!("l1-tlb[{sm}]"), format!("{a:?}"), format!("{b:?}"));
        }
    }
    if serial.l2_tlb != threaded.l2_tlb {
        return diff(
            "l2-tlb",
            format!("{:?}", serial.l2_tlb),
            format!("{:?}", threaded.l2_tlb),
        );
    }
    // The CSV row folds in every remaining aggregate (walks, per-stage
    // latency attribution, ...): one comparison covers them all.
    let (a, b) = (serial.to_csv_row(), threaded.to_csv_row());
    if a != b {
        return diff("csv-row", a, b);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_counts_agree_on_a_small_case() {
        let case = EngineCase {
            bench: "gemm".to_owned(),
            mechanism: "sched+part+share".to_owned(),
            sms: 2,
            seed: 11,
        };
        assert_eq!(run_engine(&case), None);
    }

    #[test]
    fn unknown_names_become_setup_divergences() {
        let case = EngineCase {
            bench: "no-such-bench".to_owned(),
            mechanism: "baseline".to_owned(),
            sms: 2,
            seed: 0,
        };
        let d = run_engine(&case).expect("must not replay");
        assert_eq!(d.field, "setup");
    }
}
