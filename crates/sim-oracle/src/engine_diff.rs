//! Whole-simulation differential replay: one benchmark × mechanism ×
//! machine size, executed serially and at 2 and 4 engine worker
//! threads — the 4-thread run once more with the sharded phase-B drain
//! forced on every round — reports diffed field by field.
//!
//! The engine's determinism contract says thread count (and the
//! serial-vs-sharded drain choice) is invisible: the two-phase event
//! execution makes every statistic byte-identical regardless of how
//! SMs are spread across workers or how phase B is parallelized. This
//! module is that contract as an executable check, with the runtime
//! sanitizer and the mem-hier accounting cross-checks enabled so
//! internal invariants are audited along the way. (The forced-sharded
//! replay runs unsanitized — the sanitizer's per-cycle hook pins the
//! engine to the serial drain — which is itself a report-identity
//! check: the sanitizer must never perturb a simulation.)

use crate::case::EngineCase;
use crate::diff::Divergence;
use gpu_sim::{GpuConfig, SimReport};
use orchestrated_tlb::Mechanism;
use workloads::format::{file_hash, TraceSource};
use workloads::{registry, Scale};

fn setup_error(what: String) -> Divergence {
    Divergence {
        op_index: None,
        field: "setup".to_owned(),
        expected: "a replayable engine case".to_owned(),
        actual: what,
    }
}

/// Runs one simulation of the case at the given thread count. `shard`
/// forces the sharded phase-B drain on every round (and turns the
/// sanitizer off, since its per-cycle hook pins the serial drain).
fn simulate(case: &EngineCase, threads: usize, shard: bool) -> Result<SimReport, Divergence> {
    let spec = registry()
        .into_iter()
        .find(|s| s.name == case.bench)
        .ok_or_else(|| setup_error(format!("unknown benchmark {:?}", case.bench)))?;
    let mechanism = Mechanism::all()
        .into_iter()
        .find(|m| m.label() == case.mechanism)
        .ok_or_else(|| setup_error(format!("unknown mechanism {:?}", case.mechanism)))?;
    let config = GpuConfig {
        num_sms: case.sms.max(1),
        shard_threshold: if shard { 1 } else { 0 },
        ..GpuConfig::dac23_baseline()
    };
    let mut sim = mechanism
        .simulator(config)
        .with_sim_threads(threads)
        .with_sanitizer(!shard);
    // A trace reference pins the replay input by content hash: refuse
    // to run (as a setup divergence) rather than silently diverge
    // against different bytes, and stream from the file on a match.
    if let Some(t) = &case.trace {
        let path = std::path::Path::new(&t.path);
        let actual = file_hash(path)
            .map_err(|e| setup_error(format!("trace file {}: {e}", t.path)))?;
        if actual != t.hash {
            return Err(setup_error(format!(
                "trace file {} hash {actual:016x} does not match recorded {:016x}",
                t.path, t.hash
            )));
        }
        let source = TraceSource::open(path)
            .map_err(|e| setup_error(format!("trace file {}: {e}", t.path)))?;
        return sim
            .run_source(source)
            .map_err(|e| setup_error(format!("trace replay of {}: {e}", t.path)));
    }
    let workload = spec.generate(Scale::Test, case.seed);
    Ok(sim.run(workload))
}

/// Diffs `threaded` against the serial reference; `tag` labels the
/// replay configuration in the divergence's field name.
fn diff_reports(serial: &SimReport, threaded: &SimReport, tag: &str) -> Option<Divergence> {
    let diff = |field: String, expected: String, actual: String| {
        Some(Divergence {
            op_index: None,
            field,
            expected,
            actual,
        })
    };
    if serial.total_cycles != threaded.total_cycles {
        return diff(
            format!("total-cycles@{tag}"),
            serial.total_cycles.to_string(),
            threaded.total_cycles.to_string(),
        );
    }
    for (sm, (a, b)) in serial.l1_tlb.iter().zip(&threaded.l1_tlb).enumerate() {
        if a != b {
            return diff(
                format!("l1-tlb[{sm}]@{tag}"),
                format!("{a:?}"),
                format!("{b:?}"),
            );
        }
    }
    if serial.l2_tlb != threaded.l2_tlb {
        return diff(
            format!("l2-tlb@{tag}"),
            format!("{:?}", serial.l2_tlb),
            format!("{:?}", threaded.l2_tlb),
        );
    }
    // The CSV row folds in every remaining aggregate (walks, per-stage
    // latency attribution, ...): one comparison covers them all.
    let (a, b) = (serial.to_csv_row(), threaded.to_csv_row());
    if a != b {
        return diff(format!("csv-row@{tag}"), a, b);
    }
    None
}

/// Replays the case at 2 and 4 worker threads (plus 4 threads with the
/// sharded drain forced) and returns the first report field where any
/// replay disagrees with the serial run.
pub fn run_engine(case: &EngineCase) -> Option<Divergence> {
    let serial = match simulate(case, 1, false) {
        Ok(r) => r,
        Err(d) => return Some(d),
    };
    for (threads, shard, tag) in [(2, false, "2t"), (4, false, "4t"), (4, true, "4t-sharded")] {
        let threaded = match simulate(case, threads, shard) {
            Ok(r) => r,
            Err(d) => return Some(d),
        };
        if let Some(d) = diff_reports(&serial, &threaded, tag) {
            return Some(d);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_counts_agree_on_a_small_case() {
        let case = EngineCase {
            bench: "gemm".to_owned(),
            mechanism: "sched+part+share".to_owned(),
            sms: 2,
            seed: 11,
            trace: None,
        };
        assert_eq!(run_engine(&case), None);
    }

    #[test]
    fn unknown_names_become_setup_divergences() {
        let case = EngineCase {
            bench: "no-such-bench".to_owned(),
            mechanism: "baseline".to_owned(),
            sms: 2,
            seed: 0,
            trace: None,
        };
        let d = run_engine(&case).expect("must not replay");
        assert_eq!(d.field, "setup");
    }

    #[test]
    fn trace_backed_cases_replay_and_verify_their_hash() {
        use crate::case::TraceRef;

        let spec = registry().into_iter().find(|s| s.name == "gemm").unwrap();
        let workload = spec.generate(Scale::Test, 11);
        let path = std::env::temp_dir()
            .join(format!("oracle-engine-{}.trace", std::process::id()));
        workloads::format::write_workload(&path, &workload, "gemm", Some(Scale::Test), 11)
            .unwrap();
        let hash = file_hash(&path).unwrap();

        // The streamed replay agrees across thread counts like the
        // generated one.
        let case = EngineCase {
            bench: "gemm".to_owned(),
            mechanism: "sched+part+share".to_owned(),
            sms: 2,
            seed: 11,
            trace: Some(TraceRef {
                hash,
                path: path.display().to_string(),
            }),
        };
        assert_eq!(run_engine(&case), None);

        // A wrong hash is a refusal, not a replay of the wrong bytes.
        let tampered = EngineCase {
            trace: Some(TraceRef {
                hash: hash ^ 1,
                path: path.display().to_string(),
            }),
            ..case
        };
        let d = run_engine(&tampered).expect("hash mismatch must not replay");
        assert_eq!(d.field, "setup");
        assert!(d.actual.contains("does not match"), "{d}");

        std::fs::remove_file(&path).unwrap();
    }
}
