//! The differential replay core: run one [`Case`] through the optimized
//! subject and the reference oracle side by side, and report the first
//! point where they disagree.
//!
//! Per operation the harness compares the full lookup outcome (verdict,
//! PPN, latency), the five statistics counters, and — for the
//! partitioned model — the sharing register and the spill count. Every
//! subject hit is additionally checked against the [`InfiniteTlb`]
//! soundness bound (a TLB may serve stale translations, never invented
//! ones). `op check` directives and the end of the trace trigger a full
//! content sweep through non-perturbing probes, which is what makes
//! eviction-victim bugs observable even when every counter agrees, plus
//! a run of the subject's own `check_invariants`.

use crate::case::{Case, ModelKind, Mutation, Op, TraceCase};
use crate::mutate::{DropAsidTag, EvictMruTlb, SkipFlagReset};
use crate::partitioned_ref::{OraclePartitionedConfig, OraclePartitionedTlb};
use crate::reference::{InfiniteTlb, OracleSetAssocTlb};
use crate::sched_ref::OracleScheduler;
use gpu_sim::{SmSnapshot, TbScheduler};
use orchestrated_tlb::{PartitionedTlb, PartitionedTlbConfig, TlbAwareScheduler};
use std::collections::BTreeSet;
use std::fmt;
use tlb::{CompressionConfig, SetAssocTlb, TlbConfig, TlbRequest, TranslationBuffer};
use vmem::{Asid, Ppn, Vpn};

/// The first point where subject and oracle disagreed on a case.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Divergence {
    /// Index of the operation that exposed the disagreement (`None` for
    /// end-of-trace checks and whole-simulation diffs).
    pub op_index: Option<usize>,
    /// Which observable disagreed (`outcome`, `stats`, `sharing-flags`,
    /// `spills`, `content`, `soundness`, `invariant`, `decision`,
    /// `csv-row`, ...).
    pub field: String,
    /// What the oracle (or the other run) said.
    pub expected: String,
    /// What the subject said.
    pub actual: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.op_index {
            Some(i) => write!(
                f,
                "divergence at op {i} in `{}`: oracle says {}, subject says {}",
                self.field, self.expected, self.actual
            ),
            None => write!(
                f,
                "divergence in `{}`: oracle says {}, subject says {}",
                self.field, self.expected, self.actual
            ),
        }
    }
}

impl Divergence {
    fn new(
        op_index: Option<usize>,
        field: &str,
        expected: impl fmt::Debug,
        actual: impl fmt::Debug,
    ) -> Self {
        Divergence {
            op_index,
            field: field.to_owned(),
            expected: format!("{expected:?}"),
            actual: format!("{actual:?}"),
        }
    }
}

/// The optimized implementation under test (possibly a mutant).
enum Subject {
    Set(SetAssocTlb),
    EvictMru(EvictMruTlb),
    DropAsid(DropAsidTag),
    Part(PartitionedTlb),
    NoFlagReset(SkipFlagReset),
}

impl Subject {
    fn build(case: &TraceCase) -> Subject {
        let (entries, associativity, lookup_latency) = case.geometry;
        let geometry = TlbConfig::new(entries, associativity, lookup_latency);
        match case.model {
            ModelKind::SetAssoc => match case.mutation {
                Mutation::EvictMru => Subject::EvictMru(EvictMruTlb::new(geometry)),
                Mutation::DropAsidTag => Subject::DropAsid(DropAsidTag::new(geometry)),
                _ => Subject::Set(SetAssocTlb::new(geometry)),
            },
            ModelKind::Partitioned | ModelKind::Scheduler => {
                let cfg = PartitionedTlbConfig {
                    geometry,
                    sharing: case.sharing,
                    per_set_lookup_overhead: case.overhead,
                    displacement_margin: case.margin,
                    compression: case.compression.map(|(degree, decompress_latency)| {
                        CompressionConfig {
                            degree,
                            decompress_latency,
                        }
                    }),
                };
                let mut tlb = PartitionedTlb::new(cfg);
                tlb.set_concurrent_tbs(case.concurrency);
                if case.mutation == Mutation::SkipFlagReset {
                    Subject::NoFlagReset(SkipFlagReset(tlb))
                } else {
                    Subject::Part(tlb)
                }
            }
        }
    }

    fn as_tb(&mut self) -> &mut dyn TranslationBuffer {
        match self {
            Subject::Set(t) => t,
            Subject::EvictMru(t) => t,
            Subject::DropAsid(t) => t,
            Subject::Part(t) => t,
            Subject::NoFlagReset(t) => t,
        }
    }

    fn as_tb_ref(&self) -> &dyn TranslationBuffer {
        match self {
            Subject::Set(t) => t,
            Subject::EvictMru(t) => t,
            Subject::DropAsid(t) => t,
            Subject::Part(t) => t,
            Subject::NoFlagReset(t) => t,
        }
    }

    /// `(sharing_flags, spills)` for partitioned subjects.
    fn sharing_state(&self) -> Option<(u16, u64)> {
        match self {
            Subject::Part(t) => Some((t.sharing_flags(), t.spills())),
            Subject::NoFlagReset(t) => Some((t.sharing_flags(), t.spills())),
            _ => None,
        }
    }
}

/// The clarity-first reference the subject is diffed against.
enum Oracle {
    Set(OracleSetAssocTlb),
    Part(OraclePartitionedTlb),
}

impl Oracle {
    fn build(case: &TraceCase) -> Oracle {
        let (entries, associativity, lookup_latency) = case.geometry;
        let geometry = TlbConfig::new(entries, associativity, lookup_latency);
        match case.model {
            ModelKind::SetAssoc => Oracle::Set(OracleSetAssocTlb::new(geometry)),
            ModelKind::Partitioned | ModelKind::Scheduler => {
                let mut tlb = OraclePartitionedTlb::new(OraclePartitionedConfig {
                    geometry,
                    sharing: case.sharing,
                    per_set_lookup_overhead: case.overhead,
                    displacement_margin: case.margin,
                    compression: case.compression,
                });
                tlb.set_concurrent_tbs(case.concurrency);
                Oracle::Part(tlb)
            }
        }
    }

    fn lookup(&mut self, req: &TlbRequest) -> tlb::TlbOutcome {
        match self {
            Oracle::Set(t) => t.lookup(req),
            Oracle::Part(t) => t.lookup(req),
        }
    }

    fn insert(&mut self, req: &TlbRequest, ppn: Ppn) {
        match self {
            Oracle::Set(t) => t.insert(req, ppn),
            Oracle::Part(t) => t.insert(req, ppn),
        }
    }

    fn flush(&mut self) {
        match self {
            Oracle::Set(t) => t.flush(),
            Oracle::Part(t) => t.flush(),
        }
    }

    fn on_tb_finish(&mut self, asid: Asid, tb: u8) {
        if let Oracle::Part(t) = self {
            t.on_tb_finish(asid, tb);
        }
    }

    fn set_concurrent_tbs(&mut self, tbs: u8) {
        if let Oracle::Part(t) = self {
            t.set_concurrent_tbs(tbs);
        }
    }

    fn peek(&self, asid: Asid, vpn: Vpn, tb: u8) -> Option<Ppn> {
        match self {
            Oracle::Set(t) => t.peek(asid, vpn),
            Oracle::Part(t) => t.peek(asid, vpn, tb),
        }
    }

    fn stats_by_asid(&self) -> Vec<(Asid, tlb::TlbStats)> {
        match self {
            Oracle::Set(t) => t.stats_by_asid(),
            Oracle::Part(t) => t.stats_by_asid(),
        }
    }

    fn stats(&self) -> tlb::TlbStats {
        match self {
            Oracle::Set(t) => t.stats(),
            Oracle::Part(t) => t.stats(),
        }
    }

    fn sharing_state(&self) -> Option<(u16, u64)> {
        match self {
            Oracle::Part(t) => Some((t.sharing_flags(), t.spills())),
            Oracle::Set(_) => None,
        }
    }
}

/// Replays a case and returns the first divergence, or `None` when the
/// subject and oracle agree on every observable.
pub fn run_case(case: &Case) -> Option<Divergence> {
    match case {
        Case::Trace(t) if t.model == ModelKind::Scheduler => run_scheduler_trace(t),
        Case::Trace(t) => run_tlb_trace(t),
        Case::Engine(e) => crate::engine_diff::run_engine(e),
    }
}

fn run_scheduler_trace(case: &TraceCase) -> Option<Divergence> {
    let mut oracle = OracleScheduler::new();
    let mut subject = TlbAwareScheduler::new();
    for (i, op) in case.ops.iter().enumerate() {
        match op {
            Op::Pick { sms } => {
                let sms: Vec<SmSnapshot> = sms
                    .iter()
                    .map(|&(free_slots, tlb_hits, tlb_accesses)| SmSnapshot {
                        free_slots,
                        tlb_hits,
                        tlb_accesses,
                    })
                    .collect();
                let want = oracle.pick_sm(&sms);
                let got = subject.pick_sm(&sms);
                if want != got {
                    return Some(Divergence::new(Some(i), "decision", want, got));
                }
                if let Err(e) = subject.check_invariants(sms.len()) {
                    return Some(Divergence::new(Some(i), "invariant", "Ok", e));
                }
            }
            Op::SchedReset => {
                oracle.reset();
                subject.reset();
            }
            // TLB ops are meaningless against a scheduler; the fuzzer
            // never generates them, and hand-written cases that mix them
            // in simply have them skipped.
            _ => {}
        }
    }
    None
}

fn run_tlb_trace(case: &TraceCase) -> Option<Divergence> {
    let mut subject = Subject::build(case);
    let mut oracle = Oracle::build(case);
    let mut infinite = InfiniteTlb::new();
    // Every (asid, vpn) the trace mentioned: the content-sweep universe.
    let mut seen: BTreeSet<(u16, u64)> = BTreeSet::new();
    let partitioned = case.model == ModelKind::Partitioned;

    for (i, op) in case.ops.iter().enumerate() {
        match *op {
            Op::Lookup { vpn, tb, asid } => {
                seen.insert((asid, vpn));
                let req = TlbRequest::new(Vpn::new(vpn), tb).with_asid(Asid::new(asid));
                let want = oracle.lookup(&req);
                let got = subject.as_tb().lookup(&req);
                if want != got {
                    return Some(Divergence::new(Some(i), "outcome", want, got));
                }
                if got.hit {
                    if let Err(e) = infinite.check_hit(req.asid, req.vpn, got.ppn) {
                        return Some(Divergence::new(Some(i), "soundness", "a sound hit", e));
                    }
                }
            }
            Op::Insert { vpn, tb, ppn, asid } => {
                seen.insert((asid, vpn));
                let req = TlbRequest::new(Vpn::new(vpn), tb).with_asid(Asid::new(asid));
                oracle.insert(&req, Ppn::new(ppn));
                subject.as_tb().insert(&req, Ppn::new(ppn));
                infinite.insert(req.asid, req.vpn, Ppn::new(ppn));
            }
            Op::Finish { tb, asid } => {
                oracle.on_tb_finish(Asid::new(asid), tb);
                subject.as_tb().on_tb_finish(Asid::new(asid), tb);
            }
            Op::Concurrency { tbs } => {
                oracle.set_concurrent_tbs(tbs);
                subject.as_tb().set_concurrent_tbs(tbs);
            }
            Op::Flush => {
                oracle.flush();
                subject.as_tb().flush();
                infinite.flush();
            }
            Op::Check => {
                if let Some(d) = full_check(Some(i), &subject, &oracle, &seen, partitioned) {
                    return Some(d);
                }
            }
            // Scheduler ops inside a TLB trace are skipped (see above).
            Op::Pick { .. } | Op::SchedReset => {}
        }
        let want = oracle.stats();
        let got = subject.as_tb_ref().stats();
        if want != got {
            return Some(Divergence::new(Some(i), "stats", want, got));
        }
        if let (Some(want), Some(got)) = (oracle.sharing_state(), subject.sharing_state()) {
            if want.0 != got.0 {
                return Some(Divergence::new(Some(i), "sharing-flags", want.0, got.0));
            }
            if want.1 != got.1 {
                return Some(Divergence::new(Some(i), "spills", want.1, got.1));
            }
        }
    }
    full_check(None, &subject, &oracle, &seen, partitioned)
}

/// Content sweep + subject invariants: for every (ASID, VPN) the trace
/// touched, from every TB viewpoint, the subject's non-perturbing probe
/// must agree with the oracle's; the per-ASID stats breakdowns must
/// match entry for entry and sum back to the aggregate.
fn full_check(
    op_index: Option<usize>,
    subject: &Subject,
    oracle: &Oracle,
    seen: &BTreeSet<(u16, u64)>,
    partitioned: bool,
) -> Option<Divergence> {
    let viewpoints: &[u8] = if partitioned {
        &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15]
    } else {
        &[0]
    };
    for &(asid, vpn) in seen {
        for &tb in viewpoints {
            let req = TlbRequest::new(Vpn::new(vpn), tb).with_asid(Asid::new(asid));
            let Some(got) = subject.as_tb_ref().probe(&req) else {
                continue;
            };
            let want = oracle.peek(req.asid, req.vpn, tb);
            if want != got {
                return Some(Divergence {
                    op_index,
                    field: "content".to_owned(),
                    expected: format!("asid {asid} vpn {vpn:#x} via tb {tb} -> {want:?}"),
                    actual: format!("asid {asid} vpn {vpn:#x} via tb {tb} -> {got:?}"),
                });
            }
        }
    }
    let want = oracle.stats_by_asid();
    let got = subject.as_tb_ref().stats_by_asid();
    if want != got {
        return Some(Divergence::new(op_index, "per-asid-stats", want, got));
    }
    let sum = got
        .iter()
        .fold(tlb::TlbStats::default(), |a, &(_, s)| a + s);
    let aggregate = subject.as_tb_ref().stats();
    if sum != aggregate {
        return Some(Divergence::new(op_index, "per-asid-sum", aggregate, sum));
    }
    if let Err(e) = subject.as_tb_ref().check_invariants() {
        return Some(Divergence::new(op_index, "invariant", "Ok", e.to_string()));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestrated_tlb::SharingPolicy;

    #[test]
    fn clean_trace_has_no_divergence() {
        let case = Case::Trace(TraceCase {
            model: ModelKind::Partitioned,
            geometry: (16, 2, 1),
            sharing: SharingPolicy::Adjacent,
            concurrency: 2,
            margin: 2,
            ops: (0..40u64)
                .flat_map(|i| {
                    [
                        Op::Insert {
                            vpn: i % 11,
                            tb: (i % 3) as u8,
                            ppn: 100 + i % 11,
                            asid: (i % 2) as u16,
                        },
                        Op::Lookup {
                            vpn: (i + 1) % 11,
                            tb: (i % 3) as u8,
                            asid: (i % 2) as u16,
                        },
                    ]
                })
                .chain([Op::Finish { tb: 1, asid: 0 }, Op::Check])
                .collect(),
            ..TraceCase::default()
        });
        assert_eq!(run_case(&case), None);
    }

    #[test]
    fn evict_mru_mutant_is_caught_by_content_sweep() {
        // One set, two ways; touch entry 0 so it is MRU, then overflow.
        // LRU evicts vpn 1, the mutant evicts vpn 0 — counters agree, the
        // sweep does not.
        let case = Case::Trace(TraceCase {
            model: ModelKind::SetAssoc,
            geometry: (2, 2, 1),
            mutation: Mutation::EvictMru,
            ops: vec![
                Op::Insert { vpn: 0, tb: 0, ppn: 10, asid: 0 },
                Op::Insert { vpn: 1, tb: 0, ppn: 11, asid: 0 },
                Op::Lookup { vpn: 0, tb: 0, asid: 0 },
                Op::Insert { vpn: 2, tb: 0, ppn: 12, asid: 0 },
                Op::Check,
            ],
            ..TraceCase::default()
        });
        let d = run_case(&case).expect("mutant must diverge");
        assert_eq!(d.field, "content");
    }

    #[test]
    fn skip_flag_reset_mutant_is_caught() {
        // TB 0 spills into TB 1's sets, then TB 1 finishes: the real
        // implementation clears TB 0's flag, the mutant does not.
        let mut ops: Vec<Op> = (0..5u64)
            .map(|i| Op::Insert {
                vpn: 2000 + i,
                tb: 0,
                ppn: i,
                asid: 0,
            })
            .collect();
        ops.push(Op::Finish { tb: 1, asid: 0 });
        ops.push(Op::Check);
        let case = Case::Trace(TraceCase {
            model: ModelKind::Partitioned,
            geometry: (64, 4, 1),
            sharing: SharingPolicy::Adjacent,
            concurrency: 16,
            mutation: Mutation::SkipFlagReset,
            ops,
            ..TraceCase::default()
        });
        let d = run_case(&case).expect("mutant must diverge");
        assert_eq!(d.field, "sharing-flags");
    }

    #[test]
    fn drop_asid_tag_mutant_is_caught_on_a_corun() {
        // App 1 installs vpn 7, then app 2 asks for the same VPN: the
        // ASID-blind mutant serves app 1's frame where the oracle misses.
        let case = Case::Trace(TraceCase {
            model: ModelKind::SetAssoc,
            geometry: (8, 2, 1),
            mutation: Mutation::DropAsidTag,
            ops: vec![
                Op::Insert { vpn: 7, tb: 0, ppn: 111, asid: 1 },
                Op::Lookup { vpn: 7, tb: 0, asid: 2 },
            ],
            ..TraceCase::default()
        });
        let d = run_case(&case).expect("mutant must diverge");
        assert_eq!(d.field, "outcome");
    }

    #[test]
    fn drop_asid_tag_mutant_survives_a_solo_trace() {
        // The bug is invisible without co-running address spaces — which
        // is exactly why the fuzzer's multi-app scenarios must exist.
        let case = Case::Trace(TraceCase {
            model: ModelKind::SetAssoc,
            geometry: (8, 2, 1),
            mutation: Mutation::DropAsidTag,
            ops: vec![
                Op::Insert { vpn: 7, tb: 0, ppn: 111, asid: 0 },
                Op::Lookup { vpn: 7, tb: 0, asid: 0 },
                Op::Lookup { vpn: 9, tb: 0, asid: 0 },
                Op::Check,
            ],
            ..TraceCase::default()
        });
        assert_eq!(run_case(&case), None, "solo traces cannot kill this mutant");
    }

    #[test]
    fn corun_traces_replay_cleanly_per_asid() {
        // A clean 3-app churn over both models: the per-ASID stats
        // comparison and per-ASID content sweep must stay silent.
        for model in [ModelKind::SetAssoc, ModelKind::Partitioned] {
            let case = Case::Trace(TraceCase {
                model,
                geometry: (16, 2, 1),
                sharing: SharingPolicy::Adjacent,
                concurrency: 4,
                margin: 2,
                ops: (0..120u64)
                    .flat_map(|i| {
                        let asid = (i % 3) as u16;
                        [
                            Op::Insert {
                                vpn: i % 13,
                                tb: (i % 4) as u8,
                                ppn: 100 + i % 13 + 1000 * u64::from(asid),
                                asid,
                            },
                            Op::Lookup {
                                vpn: (i + 1) % 13,
                                tb: (i % 4) as u8,
                                asid,
                            },
                        ]
                    })
                    .chain([Op::Finish { tb: 1, asid: 1 }, Op::Check])
                    .collect(),
                ..TraceCase::default()
            });
            assert_eq!(run_case(&case), None, "{model:?}");
        }
    }

    #[test]
    fn scheduler_trace_replays_cleanly() {
        let case = Case::Trace(TraceCase {
            model: ModelKind::Scheduler,
            ops: vec![
                Op::Pick { sms: vec![(1, 0, 0), (1, 0, 0)] },
                Op::Pick { sms: vec![(1, 10, 100), (1, 90, 100)] },
                Op::SchedReset,
                Op::Pick { sms: vec![(0, 10, 100), (2, 90, 100)] },
            ],
            ..TraceCase::default()
        });
        assert_eq!(run_case(&case), None);
    }
}
