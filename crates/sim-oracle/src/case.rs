//! The `.case` reproducer format: a deterministic operation trace (or
//! engine configuration) small enough to read in a code review and
//! stable enough to check into `crates/bench/tests/corpus/`.
//!
//! A case is plain text, one directive per line, `#` starts a comment:
//!
//! ```text
//! # TB 0 overflows its set and the victim is rescued next door.
//! kind trace
//! model partitioned
//! geometry 16 2 1
//! sharing adjacent
//! overhead 1
//! margin 4
//! compression none
//! concurrency 2
//! mutate none
//! op insert 1 0 101
//! op lookup 1 0
//! op finish 1
//! op check
//! ```
//!
//! `lookup`, `insert` and `finish` take an optional trailing ASID
//! (`op lookup 1 0 2` — app 2's TB 0 translating VPN 1); omitting it
//! means ASID 0, so every pre-multi-tenant case file parses unchanged
//! and solo cases serialize byte-identically to before.
//!
//! Headers may appear in any order before the first `op`; trace headers
//! irrelevant to the model (e.g. `sharing` for `model setassoc`) may be
//! omitted. `kind engine` cases instead carry `bench`, `mechanism`,
//! `sms` and `seed`, and replay a whole simulation per §V mechanism with
//! 1 and 2 worker threads, diffing the reports. An engine case may also
//! carry a `trace <hex16-hash> <path>` directive referencing a
//! `trace/v1` file by its FNV-1a content hash: replay then streams the
//! workload from that file (after verifying the hash) instead of
//! regenerating it, so a reproducer pins the exact bytes it diverged on.

use orchestrated_tlb::SharingPolicy;
use std::fmt::Write as _;

/// Which subject/oracle pair a trace case drives.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ModelKind {
    /// Baseline VPN-indexed set-associative TLB.
    SetAssoc,
    /// The paper's TB-id-partitioned TLB.
    Partitioned,
    /// The §IV-A TB scheduler status table.
    Scheduler,
}

/// A deliberately-broken subject variant (see `mutate`); `None` runs
/// the real implementation.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum Mutation {
    /// The real implementation.
    #[default]
    None,
    /// Set-associative TLB that evicts the most-recently-used way.
    EvictMru,
    /// Partitioned TLB that ignores TB-finish notifications.
    SkipFlagReset,
    /// Set-associative TLB that drops the ASID from its tag compare, so
    /// co-running apps hit each other's translations.
    DropAsidTag,
}

impl Mutation {
    /// Parses a mutation name (as used by `fuzz --mutate`).
    pub fn parse(s: &str) -> Option<Mutation> {
        Some(match s {
            "none" => Mutation::None,
            "evict-mru" => Mutation::EvictMru,
            "skip-flag-reset" => Mutation::SkipFlagReset,
            "drop-asid-tag" => Mutation::DropAsidTag,
            _ => return None,
        })
    }

    /// The name used in case files and on the command line.
    pub fn name(self) -> &'static str {
        match self {
            Mutation::None => "none",
            Mutation::EvictMru => "evict-mru",
            Mutation::SkipFlagReset => "skip-flag-reset",
            Mutation::DropAsidTag => "drop-asid-tag",
        }
    }
}

/// One step of a trace case.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// Translate `vpn` as app `asid`'s TB `tb`.
    Lookup {
        /// Virtual page number.
        vpn: u64,
        /// Hardware TB slot issuing the request.
        tb: u8,
        /// Address space issuing the request (raw [`vmem::Asid`] value).
        asid: u16,
    },
    /// Fill `vpn -> ppn` on behalf of app `asid`'s TB `tb`.
    Insert {
        /// Virtual page number.
        vpn: u64,
        /// Hardware TB slot issuing the fill.
        tb: u8,
        /// Frame number provided by the fill path.
        ppn: u64,
        /// Address space the fill belongs to.
        asid: u16,
    },
    /// App `asid`'s TB in slot `tb` finished.
    Finish {
        /// The released hardware slot.
        tb: u8,
        /// Address space the finished TB ran on behalf of.
        asid: u16,
    },
    /// Kernel-launch concurrency change.
    Concurrency {
        /// New concurrent-TB count.
        tbs: u8,
    },
    /// Invalidate everything.
    Flush,
    /// Sweep resident contents through non-perturbing probes and diff
    /// them against the oracle.
    Check,
    /// Scheduler dispatch over the given SM snapshots, each
    /// `free:hits:accesses`.
    Pick {
        /// Per-SM `(free_slots, tlb_hits, tlb_accesses)` snapshots.
        sms: Vec<(u8, u64, u64)>,
    },
    /// Scheduler kernel-boundary reset.
    SchedReset,
}

/// A deterministic operation trace against one TLB or scheduler model.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceCase {
    /// Subject/oracle pair under test.
    pub model: ModelKind,
    /// `(entries, associativity, lookup_latency)`.
    pub geometry: (usize, usize, u64),
    /// Sharing policy (partitioned model only).
    pub sharing: SharingPolicy,
    /// Per-set lookup overhead (partitioned model only).
    pub overhead: bool,
    /// Displacement margin (partitioned model only).
    pub margin: u64,
    /// PACT'20 compression `(degree, decompress_latency)`.
    pub compression: Option<(usize, u64)>,
    /// Initial concurrent-TB count.
    pub concurrency: u8,
    /// Subject mutation (a harness self-test when not `None`).
    pub mutation: Mutation,
    /// The operations, replayed in order.
    pub ops: Vec<Op>,
}

impl Default for TraceCase {
    fn default() -> Self {
        TraceCase {
            model: ModelKind::SetAssoc,
            geometry: (64, 4, 1),
            sharing: SharingPolicy::Adjacent,
            overhead: true,
            margin: 512,
            compression: None,
            concurrency: 16,
            mutation: Mutation::None,
            ops: Vec::new(),
        }
    }
}

/// A content-addressed reference to a `trace/v1` file: the replay
/// refuses to run unless the file's FNV-1a hash matches, so a checked-in
/// reproducer can never silently diverge against different trace bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceRef {
    /// Expected `workloads::format::file_hash` of the file.
    pub hash: u64,
    /// Path to the trace file (relative paths resolve against the
    /// replaying process's working directory).
    pub path: String,
}

/// A whole-simulation differential case: one benchmark × mechanism ×
/// machine size, replayed with 1 and 2 engine worker threads.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EngineCase {
    /// Benchmark name from the `workloads` registry.
    pub bench: String,
    /// Co-running benchmark names (including `bench` itself). When this
    /// holds two or more names the replay is an app-interleaved co-run —
    /// each app gets its own ASID and address space — instead of a solo
    /// run of `bench`. Empty means solo.
    pub apps: Vec<String>,
    /// Mechanism label (see `Mechanism::label`).
    pub mechanism: String,
    /// Number of SMs.
    pub sms: usize,
    /// Workload generation seed.
    pub seed: u64,
    /// Optional trace file to stream the workload from (hash-verified)
    /// instead of regenerating it from `bench`/`seed`.
    pub trace: Option<TraceRef>,
}

/// Any reproducer the harness can replay.
#[derive(Clone, Debug, PartialEq)]
pub enum Case {
    /// An operation trace against a single model.
    Trace(TraceCase),
    /// A whole-simulation thread-equivalence case.
    Engine(EngineCase),
}

impl Case {
    /// Serializes to the text format (inverse of [`Case::parse`]).
    pub fn serialize(&self) -> String {
        let mut s = String::new();
        match self {
            Case::Trace(t) => {
                s.push_str("kind trace\n");
                let model = match t.model {
                    ModelKind::SetAssoc => "setassoc",
                    ModelKind::Partitioned => "partitioned",
                    ModelKind::Scheduler => "scheduler",
                };
                let _ = writeln!(s, "model {model}");
                let (e, a, l) = t.geometry;
                let _ = writeln!(s, "geometry {e} {a} {l}");
                if t.model == ModelKind::Partitioned {
                    let sharing = match t.sharing {
                        SharingPolicy::None => "none".to_owned(),
                        SharingPolicy::Adjacent => "adjacent".to_owned(),
                        SharingPolicy::AdjacentCounter { threshold } => {
                            format!("counter:{threshold}")
                        }
                        SharingPolicy::AllToAll => "all-to-all".to_owned(),
                    };
                    let _ = writeln!(s, "sharing {sharing}");
                    let _ = writeln!(s, "overhead {}", u8::from(t.overhead));
                    let _ = writeln!(s, "margin {}", t.margin);
                    match t.compression {
                        None => s.push_str("compression none\n"),
                        Some((d, l)) => {
                            let _ = writeln!(s, "compression degree:{d},lat:{l}");
                        }
                    }
                    let _ = writeln!(s, "concurrency {}", t.concurrency);
                }
                let _ = writeln!(s, "mutate {}", t.mutation.name());
                for op in &t.ops {
                    match op {
                        Op::Lookup { vpn, tb, asid } => {
                            let _ = match asid {
                                0 => writeln!(s, "op lookup {vpn} {tb}"),
                                a => writeln!(s, "op lookup {vpn} {tb} {a}"),
                            };
                        }
                        Op::Insert { vpn, tb, ppn, asid } => {
                            let _ = match asid {
                                0 => writeln!(s, "op insert {vpn} {tb} {ppn}"),
                                a => writeln!(s, "op insert {vpn} {tb} {ppn} {a}"),
                            };
                        }
                        Op::Finish { tb, asid } => {
                            let _ = match asid {
                                0 => writeln!(s, "op finish {tb}"),
                                a => writeln!(s, "op finish {tb} {a}"),
                            };
                        }
                        Op::Concurrency { tbs } => {
                            let _ = writeln!(s, "op concurrency {tbs}");
                        }
                        Op::Flush => s.push_str("op flush\n"),
                        Op::Check => s.push_str("op check\n"),
                        Op::Pick { sms } => {
                            s.push_str("op pick");
                            for (f, h, a) in sms {
                                let _ = write!(s, " {f}:{h}:{a}");
                            }
                            s.push('\n');
                        }
                        Op::SchedReset => s.push_str("op sched-reset\n"),
                    }
                }
            }
            Case::Engine(e) => {
                s.push_str("kind engine\n");
                let _ = writeln!(s, "bench {}", e.bench);
                if !e.apps.is_empty() {
                    let _ = writeln!(s, "apps {}", e.apps.join(" "));
                }
                let _ = writeln!(s, "mechanism {}", e.mechanism);
                let _ = writeln!(s, "sms {}", e.sms);
                let _ = writeln!(s, "seed {}", e.seed);
                if let Some(t) = &e.trace {
                    let _ = writeln!(s, "trace {:016x} {}", t.hash, t.path);
                }
            }
        }
        s
    }

    /// Parses the text format; returns a line-tagged error message on
    /// malformed input.
    pub fn parse(text: &str) -> Result<Case, String> {
        let mut kind: Option<&str> = None;
        let mut trace = TraceCase::default();
        let mut engine = EngineCase {
            bench: String::new(),
            apps: Vec::new(),
            mechanism: String::new(),
            sms: 4,
            seed: 0,
            trace: None,
        };
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let err = |what: &str| format!("line {}: {what}: {raw:?}", idx + 1);
            let mut fields = line.split_whitespace();
            let key = fields.next().expect("non-empty line has a first field");
            let rest: Vec<&str> = fields.collect();
            match key {
                "kind" => kind = Some(if rest == ["trace"] { "trace" } else { "engine" }),
                "model" => {
                    trace.model = match rest.first().copied() {
                        Some("setassoc") => ModelKind::SetAssoc,
                        Some("partitioned") => ModelKind::Partitioned,
                        Some("scheduler") => ModelKind::Scheduler,
                        _ => return Err(err("unknown model")),
                    }
                }
                "geometry" => {
                    let nums: Vec<u64> = rest
                        .iter()
                        .map(|v| v.parse::<u64>())
                        .collect::<Result<_, _>>()
                        .map_err(|_| err("geometry wants three integers"))?;
                    if nums.len() != 3 {
                        return Err(err("geometry wants three integers"));
                    }
                    trace.geometry = (nums[0] as usize, nums[1] as usize, nums[2]);
                }
                "sharing" => {
                    trace.sharing = match rest.first().copied() {
                        Some("none") => SharingPolicy::None,
                        Some("adjacent") => SharingPolicy::Adjacent,
                        Some("all-to-all") => SharingPolicy::AllToAll,
                        Some(v) if v.starts_with("counter:") => {
                            let threshold = v["counter:".len()..]
                                .parse()
                                .map_err(|_| err("bad counter threshold"))?;
                            SharingPolicy::AdjacentCounter { threshold }
                        }
                        _ => return Err(err("unknown sharing policy")),
                    }
                }
                "overhead" => trace.overhead = rest.first() == Some(&"1"),
                "margin" => {
                    trace.margin = rest
                        .first()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| err("margin wants an integer"))?;
                }
                "compression" => {
                    trace.compression = match rest.first().copied() {
                        Some("none") | None => None,
                        Some(v) => {
                            let parse = |s: &str, prefix: &str| {
                                s.strip_prefix(prefix).and_then(|n| n.parse::<u64>().ok())
                            };
                            let mut parts = v.split(',');
                            let d = parts.next().and_then(|p| parse(p, "degree:"));
                            let l = parts.next().and_then(|p| parse(p, "lat:"));
                            match (d, l) {
                                (Some(d), Some(l)) => Some((d as usize, l)),
                                _ => return Err(err("compression wants degree:D,lat:L")),
                            }
                        }
                    }
                }
                "concurrency" => {
                    trace.concurrency = rest
                        .first()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| err("concurrency wants an integer"))?;
                }
                "mutate" => {
                    trace.mutation = rest
                        .first()
                        .and_then(|v| Mutation::parse(v))
                        .ok_or_else(|| err("unknown mutation"))?;
                }
                "bench" => engine.bench = rest.first().unwrap_or(&"").to_string(),
                "apps" => {
                    if rest.len() < 2 {
                        return Err(err("apps wants two or more benchmark names"));
                    }
                    engine.apps = rest.iter().map(|v| v.to_string()).collect();
                }
                "mechanism" => engine.mechanism = rest.first().unwrap_or(&"").to_string(),
                "sms" => {
                    engine.sms = rest
                        .first()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| err("sms wants an integer"))?;
                }
                "seed" => {
                    engine.seed = rest
                        .first()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| err("seed wants an integer"))?;
                }
                "trace" => {
                    let hash = rest
                        .first()
                        .filter(|h| h.len() == 16)
                        .and_then(|h| u64::from_str_radix(h, 16).ok())
                        .ok_or_else(|| err("trace wants a 16-hex-digit hash and a path"))?;
                    if rest.len() < 2 {
                        return Err(err("trace wants a 16-hex-digit hash and a path"));
                    }
                    engine.trace = Some(TraceRef {
                        hash,
                        path: rest[1..].join(" "),
                    });
                }
                "op" => {
                    let int = |i: usize, what: &str| {
                        rest.get(i)
                            .and_then(|v| v.parse::<u64>().ok())
                            .ok_or_else(|| err(what))
                    };
                    // A trailing ASID is optional on lookup/insert/finish:
                    // absent means ASID 0 (the solo default).
                    let opt = |i: usize, what: &str| match rest.get(i) {
                        None => Ok(0u16),
                        Some(v) => v.parse::<u16>().map_err(|_| err(what)),
                    };
                    let op = match rest.first().copied() {
                        Some("lookup") => Op::Lookup {
                            vpn: int(1, "lookup wants vpn tb [asid]")?,
                            tb: int(2, "lookup wants vpn tb [asid]")? as u8,
                            asid: opt(3, "lookup wants vpn tb [asid]")?,
                        },
                        Some("insert") => Op::Insert {
                            vpn: int(1, "insert wants vpn tb ppn [asid]")?,
                            tb: int(2, "insert wants vpn tb ppn [asid]")? as u8,
                            ppn: int(3, "insert wants vpn tb ppn [asid]")?,
                            asid: opt(4, "insert wants vpn tb ppn [asid]")?,
                        },
                        Some("finish") => Op::Finish {
                            tb: int(1, "finish wants tb [asid]")? as u8,
                            asid: opt(2, "finish wants tb [asid]")?,
                        },
                        Some("concurrency") => Op::Concurrency {
                            tbs: int(1, "concurrency wants tbs")? as u8,
                        },
                        Some("flush") => Op::Flush,
                        Some("check") => Op::Check,
                        Some("sched-reset") => Op::SchedReset,
                        Some("pick") => {
                            let mut sms = Vec::new();
                            for spec in &rest[1..] {
                                let nums: Vec<u64> = spec
                                    .split(':')
                                    .map(|v| v.parse::<u64>())
                                    .collect::<Result<_, _>>()
                                    .map_err(|_| err("pick wants free:hits:accesses"))?;
                                if nums.len() != 3 {
                                    return Err(err("pick wants free:hits:accesses"));
                                }
                                sms.push((nums[0] as u8, nums[1], nums[2]));
                            }
                            Op::Pick { sms }
                        }
                        _ => return Err(err("unknown op")),
                    };
                    trace.ops.push(op);
                }
                _ => return Err(err("unknown directive")),
            }
        }
        match kind {
            Some("trace") => Ok(Case::Trace(trace)),
            Some("engine") => {
                if engine.bench.is_empty() || engine.mechanism.is_empty() {
                    return Err("engine case needs bench and mechanism".to_owned());
                }
                Ok(Case::Engine(engine))
            }
            _ => Err("missing `kind trace` or `kind engine`".to_owned()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_round_trips() {
        let case = Case::Trace(TraceCase {
            model: ModelKind::Partitioned,
            geometry: (16, 2, 1),
            sharing: SharingPolicy::AdjacentCounter { threshold: 3 },
            overhead: false,
            margin: 7,
            compression: Some((4, 2)),
            concurrency: 2,
            mutation: Mutation::SkipFlagReset,
            ops: vec![
                Op::Insert { vpn: 5, tb: 0, ppn: 50, asid: 0 },
                Op::Insert { vpn: 5, tb: 0, ppn: 90, asid: 2 },
                Op::Lookup { vpn: 5, tb: 1, asid: 0 },
                Op::Lookup { vpn: 5, tb: 1, asid: 2 },
                Op::Finish { tb: 1, asid: 1 },
                Op::Concurrency { tbs: 4 },
                Op::Flush,
                Op::Check,
            ],
        });
        let text = case.serialize();
        assert_eq!(Case::parse(&text), Ok(case));
    }

    #[test]
    fn solo_ops_serialize_without_an_asid_column() {
        // Pre-multi-tenant corpus files must keep parsing, and solo cases
        // must keep serializing byte-identically: ASID 0 is omitted.
        let case = Case::Trace(TraceCase {
            ops: vec![
                Op::Insert { vpn: 5, tb: 0, ppn: 50, asid: 0 },
                Op::Lookup { vpn: 5, tb: 0, asid: 0 },
                Op::Finish { tb: 0, asid: 0 },
            ],
            ..TraceCase::default()
        });
        let text = case.serialize();
        assert!(text.contains("op insert 5 0 50\n"), "{text}");
        assert!(text.contains("op lookup 5 0\n"), "{text}");
        assert!(text.contains("op finish 0\n"), "{text}");
        assert_eq!(Case::parse(&text), Ok(case));
    }

    #[test]
    fn scheduler_round_trips() {
        let case = Case::Trace(TraceCase {
            model: ModelKind::Scheduler,
            ops: vec![
                Op::Pick { sms: vec![(1, 10, 100), (2, 90, 100)] },
                Op::SchedReset,
            ],
            ..TraceCase::default()
        });
        let text = case.serialize();
        assert_eq!(Case::parse(&text), Ok(case));
    }

    #[test]
    fn engine_round_trips() {
        let case = Case::Engine(EngineCase {
            bench: "gemm".to_owned(),
            apps: Vec::new(),
            mechanism: "sched+part+share".to_owned(),
            sms: 4,
            seed: 9,
            trace: None,
        });
        let text = case.serialize();
        assert!(!text.contains("apps"), "solo cases omit the apps line: {text}");
        assert_eq!(Case::parse(&text), Ok(case));
    }

    #[test]
    fn corun_engine_round_trips() {
        let case = Case::Engine(EngineCase {
            bench: "gemm".to_owned(),
            apps: vec!["gemm".to_owned(), "bfs".to_owned(), "mvt".to_owned()],
            mechanism: "ours+mask-tokens".to_owned(),
            sms: 4,
            seed: 3,
            trace: None,
        });
        let text = case.serialize();
        assert!(text.contains("apps gemm bfs mvt\n"), "{text}");
        assert_eq!(Case::parse(&text), Ok(case));
        assert!(
            Case::parse("kind engine\nbench gemm\napps gemm\nmechanism baseline\n").is_err(),
            "a one-app apps line is not a co-run"
        );
    }

    #[test]
    fn engine_trace_ref_round_trips() {
        let case = Case::Engine(EngineCase {
            bench: "bfs".to_owned(),
            apps: Vec::new(),
            mechanism: "baseline".to_owned(),
            sms: 2,
            seed: 7,
            trace: Some(TraceRef {
                hash: 0x0123_4567_89ab_cdef,
                path: "traces/bfs-test-s7-4k.v1.trace".to_owned(),
            }),
        });
        let text = case.serialize();
        assert!(text.contains("trace 0123456789abcdef "), "{text}");
        assert_eq!(Case::parse(&text), Ok(case));
    }

    #[test]
    fn bad_trace_directives_name_their_line() {
        for bad in [
            "kind engine\nbench gemm\nmechanism baseline\ntrace xyz p\n",
            "kind engine\nbench gemm\nmechanism baseline\ntrace 0123456789abcdef\n",
        ] {
            let e = Case::parse(bad).unwrap_err();
            assert!(e.contains("line 4"), "{e}");
        }
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# reproducer\n\nkind trace\nmodel setassoc\ngeometry 8 2 1\n# churn\nop lookup 3 0\n";
        let Case::Trace(t) = Case::parse(text).expect("parses") else {
            panic!("expected trace");
        };
        assert_eq!(t.ops, vec![Op::Lookup { vpn: 3, tb: 0, asid: 0 }]);
    }

    #[test]
    fn malformed_lines_name_their_line() {
        let e = Case::parse("kind trace\nop warble\n").unwrap_err();
        assert!(e.contains("line 2"), "{e}");
    }
}
