//! Clarity-first reference model of the paper's TLB-thrashing-aware TB
//! scheduler (§IV-A, Figure 7).
//!
//! The hardware keeps a 16-entry status table with one `<TLB_hits,
//! TLB_total>` pair per SM; dispatch walks the SMs round-robin but only
//! accepts one whose instantaneous L1 TLB miss rate is at or below the
//! cross-SM mean, falling back to plain round-robin so parallelism is
//! never throttled. The subject is
//! [`orchestrated_tlb::TlbAwareScheduler`].
//!
//! Floating-point fidelity: the EWMA update and the mean are computed
//! with the same operations in the same order as the subject
//! (`α·inst + (1-α)·prev` with α = 0.5, sum-then-divide in SM index
//! order), so verdict comparison is exact, not epsilon-based.

use gpu_sim::SmSnapshot;

/// Smoothing factor of the instantaneous miss-rate estimate (the
/// subject's `EWMA_ALPHA`).
const ALPHA: f64 = 0.5;

/// Reference model of the TB scheduler's status table and dispatch rule.
///
/// # Example
///
/// ```
/// use gpu_sim::SmSnapshot;
/// use sim_oracle::sched_ref::OracleScheduler;
///
/// let mut oracle = OracleScheduler::new();
/// let idle = vec![SmSnapshot { free_slots: 1, ..Default::default() }; 2];
/// oracle.pick_sm(&idle);
/// let sms = vec![
///     SmSnapshot { free_slots: 1, tlb_hits: 10, tlb_accesses: 100 },
///     SmSnapshot { free_slots: 1, tlb_hits: 90, tlb_accesses: 100 },
/// ];
/// assert_eq!(oracle.pick_sm(&sms), Some(1));
/// ```
#[derive(Debug, Clone, Default)]
pub struct OracleScheduler {
    next: usize,
    /// Last observed `<hits, accesses>` per SM.
    table: Vec<(u64, u64)>,
    /// Smoothed instantaneous miss rate per SM.
    ewma: Vec<f64>,
}

impl OracleScheduler {
    /// Creates the model with an empty status table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds counter deltas since the last decision into the per-SM
    /// estimates. A table whose size no longer matches the machine is
    /// rebuilt from scratch with zeroed estimates.
    fn observe(&mut self, sms: &[SmSnapshot]) {
        if self.table.len() != sms.len() {
            self.table = sms.iter().map(|s| (s.tlb_hits, s.tlb_accesses)).collect();
            self.ewma = vec![0.0; sms.len()];
            return;
        }
        for (i, s) in sms.iter().enumerate() {
            let (h0, a0) = self.table[i];
            let dh = s.tlb_hits.saturating_sub(h0);
            let da = s.tlb_accesses.saturating_sub(a0);
            if da > 0 {
                let inst = 1.0 - dh as f64 / da as f64;
                self.ewma[i] = ALPHA * inst + (1.0 - ALPHA) * self.ewma[i];
            }
            self.table[i] = (s.tlb_hits, s.tlb_accesses);
        }
    }

    /// Chooses the SM for the next TB: first pass admits only SMs at or
    /// below the mean estimated miss rate, second pass is plain
    /// round-robin.
    pub fn pick_sm(&mut self, sms: &[SmSnapshot]) -> Option<usize> {
        if sms.is_empty() {
            return None;
        }
        self.observe(sms);
        let mean: f64 = self.ewma.iter().sum::<f64>() / self.ewma.len() as f64;
        for i in 0..sms.len() {
            let sm = (self.next + i) % sms.len();
            if sms[sm].has_room() && self.ewma[sm] <= mean {
                self.next = (sm + 1) % sms.len();
                return Some(sm);
            }
        }
        for i in 0..sms.len() {
            let sm = (self.next + i) % sms.len();
            if sms[sm].has_room() {
                self.next = (sm + 1) % sms.len();
                return Some(sm);
            }
        }
        None
    }

    /// Kernel-boundary reset: the round-robin cursor restarts, the
    /// status table persists (it is hardware state).
    pub fn reset(&mut self) {
        self.next = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::TbScheduler;
    use orchestrated_tlb::TlbAwareScheduler;

    fn snap(free: u8, hits: u64, total: u64) -> SmSnapshot {
        SmSnapshot {
            free_slots: free,
            tlb_hits: hits,
            tlb_accesses: total,
        }
    }

    /// The model and the subject agree decision-for-decision on a long
    /// deterministic sequence covering growth, counter churn, machine
    /// resizes and kernel resets.
    #[test]
    fn tracks_the_subject_decision_for_decision() {
        let mut oracle = OracleScheduler::new();
        let mut subject = TlbAwareScheduler::new();
        for step in 0..500u64 {
            let n = [2usize, 4, 4, 4, 8][(step / 100) as usize % 5];
            let sms: Vec<SmSnapshot> = (0..n as u64)
                .map(|i| {
                    let a = step * (i + 3) % 900;
                    snap(
                        ((step + i) % 3) as u8,
                        a * (i + 1) % (a + 1),
                        a,
                    )
                })
                .collect();
            assert_eq!(oracle.pick_sm(&sms), subject.pick_sm(&sms), "step {step}");
            if step % 97 == 96 {
                oracle.reset();
                subject.reset();
            }
        }
    }

    #[test]
    fn never_throttles_parallelism() {
        let mut oracle = OracleScheduler::new();
        oracle.pick_sm(&[snap(0, 0, 0), snap(0, 0, 0)]);
        // Only the thrashing SM has room: the fallback must place.
        assert_eq!(oracle.pick_sm(&[snap(1, 0, 100), snap(0, 100, 100)]), Some(0));
    }
}
