//! Deliberately-broken subject variants: the harness's own test suite.
//!
//! A differential harness that never fires is indistinguishable from one
//! that cannot fire. These mutants inject the two classic TLB-model bugs
//! — a wrong eviction order and a dropped notification — so tests (and
//! the CI `fuzz-smoke` job) can demonstrate that fuzzing actually
//! catches them and shrinks them to minimal reproducers. See TESTING.md
//! for the workflow.

use orchestrated_tlb::PartitionedTlb;
use tlb::{TlbConfig, TlbOutcome, TlbRequest, TlbStats, TranslationBuffer};
use vmem::{Ppn, Vpn};

/// A set-associative TLB that evicts the **most**-recently-used way — a
/// one-comparison bug (`min` vs `max` over the recency stamps) that
/// leaves every counter identity intact and only shows up in *which*
/// entry survives. Exactly the class of bug only content comparison
/// against an oracle can catch.
#[derive(Debug, Clone)]
pub struct EvictMruTlb {
    cfg: TlbConfig,
    sets: Vec<Vec<(Vpn, Ppn, u64)>>,
    clock: u64,
    stats: TlbStats,
}

impl EvictMruTlb {
    /// Creates the mutant.
    pub fn new(cfg: TlbConfig) -> Self {
        EvictMruTlb {
            sets: vec![Vec::new(); cfg.sets()],
            cfg,
            clock: 0,
            stats: TlbStats::default(),
        }
    }

    fn set_of(&self, vpn: Vpn) -> usize {
        // simlint: allow(lossy-cast, reason = "modulo set count bounds the value below the set-vector length before narrowing")
        (vpn.raw() % self.cfg.sets() as u64) as usize
    }
}

impl TranslationBuffer for EvictMruTlb {
    fn lookup(&mut self, req: &TlbRequest) -> TlbOutcome {
        self.clock += 1;
        let clock = self.clock;
        let latency = self.cfg.lookup_latency;
        let set = self.set_of(req.vpn);
        for e in &mut self.sets[set] {
            if e.0 == req.vpn {
                e.2 = clock;
                self.stats.record(true);
                return TlbOutcome::hit(e.1, latency);
            }
        }
        self.stats.record(false);
        TlbOutcome::miss(latency)
    }

    fn insert(&mut self, req: &TlbRequest, ppn: Ppn) {
        self.clock += 1;
        let clock = self.clock;
        let assoc = self.cfg.associativity;
        let idx = self.set_of(req.vpn);
        let set = &mut self.sets[idx];
        if let Some(e) = set.iter_mut().find(|e| e.0 == req.vpn) {
            e.1 = ppn;
            e.2 = clock;
            return;
        }
        self.stats.insertions += 1;
        if set.len() == assoc {
            // THE BUG: the most-recently-used entry dies instead of the
            // least-recently-used one.
            let mru = set
                .iter()
                .enumerate()
                .max_by_key(|(_, e)| e.2)
                .map(|(i, _)| i)
                .expect("a full set is non-empty");
            set.swap_remove(mru);
            self.stats.evictions += 1;
        }
        set.push((req.vpn, ppn, clock));
    }

    fn stats(&self) -> TlbStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
    }

    fn probe(&self, req: &TlbRequest) -> Option<Option<Ppn>> {
        Some(
            self.sets[self.set_of(req.vpn)]
                .iter()
                .find(|e| e.0 == req.vpn)
                .map(|e| e.1),
        )
    }

    fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    fn capacity(&self) -> usize {
        self.cfg.entries
    }
}

/// A partitioned TLB that silently drops TB-finish notifications, so
/// sharing flags never reset and spilled entries stay reachable past
/// their licence — the paper's §IV-B reset rule, deleted. Stats stay
/// plausible; the sharing register and post-finish hit verdicts betray
/// it.
#[derive(Debug)]
pub struct SkipFlagReset(pub PartitionedTlb);

impl SkipFlagReset {
    /// The sharing register of the wrapped subject.
    pub fn sharing_flags(&self) -> u16 {
        self.0.sharing_flags()
    }

    /// Spill count of the wrapped subject.
    pub fn spills(&self) -> u64 {
        self.0.spills()
    }
}

impl TranslationBuffer for SkipFlagReset {
    fn lookup(&mut self, req: &TlbRequest) -> TlbOutcome {
        self.0.lookup(req)
    }

    fn insert(&mut self, req: &TlbRequest, ppn: Ppn) {
        self.0.insert(req, ppn)
    }

    fn stats(&self) -> TlbStats {
        self.0.stats()
    }

    fn reset_stats(&mut self) {
        self.0.reset_stats()
    }

    fn flush(&mut self) {
        self.0.flush()
    }

    fn capacity(&self) -> usize {
        self.0.capacity()
    }

    fn on_tb_finish(&mut self, _tb_slot: u8) {
        // THE BUG: the notification is dropped on the floor.
    }

    fn set_concurrent_tbs(&mut self, tbs: u8) {
        self.0.set_concurrent_tbs(tbs)
    }

    fn probe(&self, req: &TlbRequest) -> Option<Option<Ppn>> {
        self.0.probe(req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evict_mru_differs_only_in_victim_choice() {
        let cfg = TlbConfig::new(2, 2, 1); // one set, two ways
        let mut mutant = EvictMruTlb::new(cfg);
        let mut real = tlb::SetAssocTlb::new(cfg);
        let r = |vpn: u64| TlbRequest::new(Vpn::new(vpn), 0);
        for t in [&mut mutant as &mut dyn TranslationBuffer, &mut real] {
            t.insert(&r(0), Ppn::new(0));
            t.insert(&r(1), Ppn::new(1));
            let _ = t.lookup(&r(0)); // entry 0 becomes MRU
            t.insert(&r(2), Ppn::new(2));
        }
        // Counters agree — the bug is invisible to stats...
        assert_eq!(mutant.stats(), real.stats());
        // ...but the surviving entry differs.
        assert_eq!(real.probe(&r(0)), Some(Some(Ppn::new(0))));
        assert_eq!(mutant.probe(&r(0)), Some(None), "mutant killed the MRU entry");
    }

    #[test]
    fn skip_flag_reset_keeps_flags_engaged() {
        use orchestrated_tlb::PartitionedTlbConfig;
        let mut mutant = SkipFlagReset(PartitionedTlb::new(PartitionedTlbConfig::with_sharing()));
        mutant.set_concurrent_tbs(16);
        for i in 0..5u64 {
            mutant.insert(&TlbRequest::new(Vpn::new(2000 + i), 0), Ppn::new(i));
        }
        assert_ne!(mutant.sharing_flags() & 1, 0);
        mutant.on_tb_finish(1);
        assert_ne!(mutant.sharing_flags() & 1, 0, "mutant never resets the flag");
    }
}
