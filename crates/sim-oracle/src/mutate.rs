//! Deliberately-broken subject variants: the harness's own test suite.
//!
//! A differential harness that never fires is indistinguishable from one
//! that cannot fire. These mutants inject three classic TLB-model bugs
//! — a wrong eviction order, a dropped notification, and a dropped
//! ASID tag — so tests (and the CI `fuzz-smoke` job) can demonstrate
//! that fuzzing actually catches them and shrinks them to minimal
//! reproducers. See TESTING.md for the workflow.

use orchestrated_tlb::PartitionedTlb;
use tlb::{PerAsidStats, SetAssocTlb, TlbConfig, TlbOutcome, TlbRequest, TlbStats, TranslationBuffer};
use vmem::{Asid, Ppn, Vpn};

/// A set-associative TLB that evicts the **most**-recently-used way — a
/// one-comparison bug (`min` vs `max` over the recency stamps) that
/// leaves every counter identity intact and only shows up in *which*
/// entry survives. Exactly the class of bug only content comparison
/// against an oracle can catch.
#[derive(Debug, Clone)]
pub struct EvictMruTlb {
    cfg: TlbConfig,
    sets: Vec<Vec<(Asid, Vpn, Ppn, u64)>>,
    clock: u64,
    stats: TlbStats,
    per_asid: PerAsidStats,
}

impl EvictMruTlb {
    /// Creates the mutant.
    pub fn new(cfg: TlbConfig) -> Self {
        EvictMruTlb {
            sets: vec![Vec::new(); cfg.sets()],
            cfg,
            clock: 0,
            stats: TlbStats::default(),
            per_asid: PerAsidStats::default(),
        }
    }

    fn set_of(&self, vpn: Vpn) -> usize {
        // simlint: allow(lossy-cast, reason = "modulo set count bounds the value below the set-vector length before narrowing")
        (vpn.raw() % self.cfg.sets() as u64) as usize
    }
}

impl TranslationBuffer for EvictMruTlb {
    fn lookup(&mut self, req: &TlbRequest) -> TlbOutcome {
        self.clock += 1;
        let clock = self.clock;
        let latency = self.cfg.lookup_latency;
        let set = self.set_of(req.vpn);
        for e in &mut self.sets[set] {
            if e.0 == req.asid && e.1 == req.vpn {
                e.3 = clock;
                self.stats.record(true);
                self.per_asid.entry(req.asid).record(true);
                return TlbOutcome::hit(e.2, latency);
            }
        }
        self.stats.record(false);
        self.per_asid.entry(req.asid).record(false);
        TlbOutcome::miss(latency)
    }

    fn insert(&mut self, req: &TlbRequest, ppn: Ppn) {
        self.clock += 1;
        let clock = self.clock;
        let assoc = self.cfg.associativity;
        let idx = self.set_of(req.vpn);
        let set = &mut self.sets[idx];
        if let Some(e) = set.iter_mut().find(|e| e.0 == req.asid && e.1 == req.vpn) {
            e.2 = ppn;
            e.3 = clock;
            return;
        }
        self.stats.insertions += 1;
        self.per_asid.entry(req.asid).insertions += 1;
        if set.len() == assoc {
            // THE BUG: the most-recently-used entry dies instead of the
            // least-recently-used one. Attribution still follows the real
            // subject's convention (eviction charged to the victim's
            // ASID) so the bug stays invisible to every counter.
            let mru = set
                .iter()
                .enumerate()
                .max_by_key(|(_, e)| e.3)
                .map(|(i, _)| i)
                .expect("a full set is non-empty");
            let victim_asid = set[mru].0;
            set.swap_remove(mru);
            self.stats.evictions += 1;
            self.per_asid.entry(victim_asid).evictions += 1;
        }
        set.push((req.asid, req.vpn, ppn, clock));
    }

    fn stats(&self) -> TlbStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
        self.per_asid.clear();
    }

    fn stats_by_asid(&self) -> Vec<(Asid, TlbStats)> {
        self.per_asid.non_empty()
    }

    fn probe(&self, req: &TlbRequest) -> Option<Option<Ppn>> {
        Some(
            self.sets[self.set_of(req.vpn)]
                .iter()
                .find(|e| e.0 == req.asid && e.1 == req.vpn)
                .map(|e| e.2),
        )
    }

    fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    fn capacity(&self) -> usize {
        self.cfg.entries
    }
}

/// A partitioned TLB that silently drops TB-finish notifications, so
/// sharing flags never reset and spilled entries stay reachable past
/// their licence — the paper's §IV-B reset rule, deleted. Stats stay
/// plausible; the sharing register and post-finish hit verdicts betray
/// it.
#[derive(Debug)]
pub struct SkipFlagReset(pub PartitionedTlb);

impl SkipFlagReset {
    /// The sharing register of the wrapped subject.
    pub fn sharing_flags(&self) -> u16 {
        self.0.sharing_flags()
    }

    /// Spill count of the wrapped subject.
    pub fn spills(&self) -> u64 {
        self.0.spills()
    }
}

impl TranslationBuffer for SkipFlagReset {
    fn lookup(&mut self, req: &TlbRequest) -> TlbOutcome {
        self.0.lookup(req)
    }

    fn insert(&mut self, req: &TlbRequest, ppn: Ppn) {
        self.0.insert(req, ppn)
    }

    fn stats(&self) -> TlbStats {
        self.0.stats()
    }

    fn reset_stats(&mut self) {
        self.0.reset_stats()
    }

    fn stats_by_asid(&self) -> Vec<(Asid, TlbStats)> {
        self.0.stats_by_asid()
    }

    fn flush(&mut self) {
        self.0.flush()
    }

    fn capacity(&self) -> usize {
        self.0.capacity()
    }

    fn on_tb_finish(&mut self, _asid: Asid, _tb_slot: u8) {
        // THE BUG: the notification is dropped on the floor.
    }

    fn set_concurrent_tbs(&mut self, tbs: u8) {
        self.0.set_concurrent_tbs(tbs)
    }

    fn probe(&self, req: &TlbRequest) -> Option<Option<Ppn>> {
        self.0.probe(req)
    }
}

/// A set-associative TLB that omits the ASID from its tag compare — the
/// multi-tenant bug the paper's co-run scenarios exist to rule out. Every
/// request is silently retargeted at ASID 0, so one application can hit
/// on (and be handed the frame of) another application's translation.
/// Counters for solo traces are untouched; only a co-run exposes it,
/// first as an `outcome` divergence (a cross-app hit the ASID-aware
/// oracle calls a miss) and independently as an [`crate::reference::InfiniteTlb`]
/// soundness violation.
#[derive(Debug, Clone)]
pub struct DropAsidTag(pub SetAssocTlb);

impl DropAsidTag {
    /// Creates the mutant.
    pub fn new(cfg: TlbConfig) -> Self {
        DropAsidTag(SetAssocTlb::new(cfg))
    }

    fn strip(req: &TlbRequest) -> TlbRequest {
        // THE BUG: the ASID never reaches the tag compare.
        req.with_asid(Asid::default())
    }
}

impl TranslationBuffer for DropAsidTag {
    fn lookup(&mut self, req: &TlbRequest) -> TlbOutcome {
        self.0.lookup(&Self::strip(req))
    }

    fn insert(&mut self, req: &TlbRequest, ppn: Ppn) {
        self.0.insert(&Self::strip(req), ppn)
    }

    fn stats(&self) -> TlbStats {
        self.0.stats()
    }

    fn reset_stats(&mut self) {
        self.0.reset_stats()
    }

    fn stats_by_asid(&self) -> Vec<(Asid, TlbStats)> {
        self.0.stats_by_asid()
    }

    fn flush(&mut self) {
        self.0.flush()
    }

    fn capacity(&self) -> usize {
        self.0.capacity()
    }

    fn probe(&self, req: &TlbRequest) -> Option<Option<Ppn>> {
        self.0.probe(&Self::strip(req))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evict_mru_differs_only_in_victim_choice() {
        let cfg = TlbConfig::new(2, 2, 1); // one set, two ways
        let mut mutant = EvictMruTlb::new(cfg);
        let mut real = tlb::SetAssocTlb::new(cfg);
        let r = |vpn: u64| TlbRequest::new(Vpn::new(vpn), 0);
        for t in [&mut mutant as &mut dyn TranslationBuffer, &mut real] {
            t.insert(&r(0), Ppn::new(0));
            t.insert(&r(1), Ppn::new(1));
            let _ = t.lookup(&r(0)); // entry 0 becomes MRU
            t.insert(&r(2), Ppn::new(2));
        }
        // Counters agree — the bug is invisible to stats...
        assert_eq!(mutant.stats(), real.stats());
        assert_eq!(mutant.stats_by_asid(), real.stats_by_asid());
        // ...but the surviving entry differs.
        assert_eq!(real.probe(&r(0)), Some(Some(Ppn::new(0))));
        assert_eq!(mutant.probe(&r(0)), Some(None), "mutant killed the MRU entry");
    }

    #[test]
    fn evict_mru_attributes_evictions_to_the_victim_asid() {
        let cfg = TlbConfig::new(2, 2, 1); // one set, two ways
        let mut mutant = EvictMruTlb::new(cfg);
        let mut real = tlb::SetAssocTlb::new(cfg);
        let r = |vpn: u64, asid: u16| {
            TlbRequest::new(Vpn::new(vpn), 0).with_asid(Asid::new(asid))
        };
        for t in [&mut mutant as &mut dyn TranslationBuffer, &mut real] {
            t.insert(&r(0, 1), Ppn::new(10));
            t.insert(&r(1, 2), Ppn::new(20));
            let _ = t.lookup(&r(1, 2)); // app 2's entry becomes MRU
            // Overflow: the mutant evicts app 2's MRU entry, the real TLB
            // evicts app 1's LRU entry — but each charges the eviction to
            // its own victim, so the aggregate counters still agree.
            t.insert(&r(2, 1), Ppn::new(30));
        }
        assert_eq!(mutant.stats(), real.stats());
        let sum = mutant
            .stats_by_asid()
            .into_iter()
            .fold(TlbStats::default(), |a, (_, s)| a + s);
        assert_eq!(sum, mutant.stats(), "per-ASID stats sum to aggregate");
        // The attribution itself differs because the victims differ —
        // which is exactly what the harness's per-ASID comparison sees.
        assert_ne!(mutant.stats_by_asid(), real.stats_by_asid());
    }

    #[test]
    fn skip_flag_reset_keeps_flags_engaged() {
        use orchestrated_tlb::PartitionedTlbConfig;
        let mut mutant = SkipFlagReset(PartitionedTlb::new(PartitionedTlbConfig::with_sharing()));
        mutant.set_concurrent_tbs(16);
        for i in 0..5u64 {
            mutant.insert(&TlbRequest::new(Vpn::new(2000 + i), 0), Ppn::new(i));
        }
        assert_ne!(mutant.sharing_flags() & 1, 0);
        mutant.on_tb_finish(Asid::default(), 1);
        assert_ne!(mutant.sharing_flags() & 1, 0, "mutant never resets the flag");
    }

    #[test]
    fn drop_asid_tag_leaks_translations_across_apps() {
        let cfg = TlbConfig::new(4, 2, 1);
        let mut mutant = DropAsidTag::new(cfg);
        let mut real = tlb::SetAssocTlb::new(cfg);
        let a = TlbRequest::new(Vpn::new(7), 0).with_asid(Asid::new(1));
        let b = TlbRequest::new(Vpn::new(7), 0).with_asid(Asid::new(2));
        mutant.insert(&a, Ppn::new(111));
        real.insert(&a, Ppn::new(111));
        // App 2 asks for the same VPN: the real TLB misses (different
        // address space), the mutant hands over app 1's frame.
        assert!(!real.lookup(&b).hit);
        let leaked = mutant.lookup(&b);
        assert!(leaked.hit, "mutant hits across the ASID boundary");
        assert_eq!(leaked.ppn, Some(Ppn::new(111)), "with the other app's frame");
        // Solo traffic is indistinguishable from the real subject.
        let solo = TlbRequest::new(Vpn::new(9), 0);
        mutant.insert(&solo, Ppn::new(99));
        assert_eq!(mutant.lookup(&solo), TlbOutcome::hit(Ppn::new(99), 1));
    }
}
