//! The benchmark registry (the paper's Table II).

use crate::format::TraceSource;
use crate::gen;
use crate::scale::Scale;
use crate::trace::Workload;
use std::fmt;
use vmem::PageSize;

/// The benchmark suite a workload comes from.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Suite {
    /// Rodinia (Che et al., IISWC'09).
    Rodinia,
    /// PolyBench-GPU (Grauer-Gray et al., InPar'12).
    PolyBench,
    /// Pannotia (Che et al., IISWC'13).
    Pannotia,
    /// Not in Table II: this reproduction's extension workloads.
    Extension,
}

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Suite::Rodinia => write!(f, "Rodinia"),
            Suite::PolyBench => write!(f, "PolyBench"),
            Suite::Pannotia => write!(f, "Pannotia"),
            Suite::Extension => write!(f, "Extension"),
        }
    }
}

/// One row of Table II: a named, generatable benchmark.
#[derive(Clone)]
pub struct BenchmarkSpec {
    /// Benchmark short name (`"bfs"`, `"gemm"`, …).
    pub name: &'static str,
    /// Originating suite.
    pub suite: Suite,
    /// The application, as described in Table II.
    pub application: &'static str,
    generator: fn(Scale, u64, PageSize) -> Workload,
}

impl BenchmarkSpec {
    /// Generates the workload at `scale` with 4 KiB pages.
    pub fn generate(&self, scale: Scale, seed: u64) -> Workload {
        (self.generator)(scale, seed, PageSize::Small)
    }

    /// Generates the workload with an explicit page size (the paper's
    /// Section V huge-page study).
    pub fn generate_with_page_size(
        &self,
        scale: Scale,
        seed: u64,
        page_size: PageSize,
    ) -> Workload {
        (self.generator)(scale, seed, page_size)
    }

    /// Generates the workload as an in-memory [`TraceSource`] with 4 KiB
    /// pages (file-backed sources come from
    /// [`WorkloadCache::get_source`](crate::WorkloadCache::get_source)).
    pub fn source(&self, scale: Scale, seed: u64) -> TraceSource {
        TraceSource::Generated(self.generate(scale, seed))
    }

    /// Generates the workload as an in-memory [`TraceSource`] with an
    /// explicit page size.
    pub fn source_with_page_size(
        &self,
        scale: Scale,
        seed: u64,
        page_size: PageSize,
    ) -> TraceSource {
        TraceSource::Generated(self.generate_with_page_size(scale, seed, page_size))
    }
}

impl fmt::Debug for BenchmarkSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BenchmarkSpec")
            .field("name", &self.name)
            .field("suite", &self.suite)
            .field("application", &self.application)
            .finish()
    }
}

/// The Table II benchmarks plus the ML extension workloads
/// (`embedding`, `mlp`) the paper's future work names. Figure/table
/// reproductions use [`registry`]; use this for broader sweeps.
pub fn extended_registry() -> Vec<BenchmarkSpec> {
    let mut all = registry();
    all.push(BenchmarkSpec {
        name: "embedding",
        suite: Suite::Extension,
        application: "Embedding-table lookup (recommendation models)",
        generator: gen::ml::embedding,
    });
    all.push(BenchmarkSpec {
        name: "mlp",
        suite: Suite::Extension,
        application: "Multi-layer perceptron forward pass",
        generator: gen::ml::mlp,
    });
    all
}

/// All 10 benchmarks of Table II, in the paper's order.
pub fn registry() -> Vec<BenchmarkSpec> {
    vec![
        BenchmarkSpec {
            name: "bfs",
            suite: Suite::Rodinia,
            application: "Breadth-First Search",
            generator: gen::graph::bfs,
        },
        BenchmarkSpec {
            name: "color",
            suite: Suite::Pannotia,
            application: "Graph coloring centrality",
            generator: gen::graph::color,
        },
        BenchmarkSpec {
            name: "mis",
            suite: Suite::Pannotia,
            application: "Maximal independent set",
            generator: gen::graph::mis,
        },
        BenchmarkSpec {
            name: "nw",
            suite: Suite::Rodinia,
            application: "Needleman-Wunsch",
            generator: gen::nw::generate,
        },
        BenchmarkSpec {
            name: "pagerank",
            suite: Suite::Pannotia,
            application: "Page rank",
            generator: gen::graph::pagerank,
        },
        BenchmarkSpec {
            name: "3dconv",
            suite: Suite::PolyBench,
            application: "3D Convolution",
            generator: gen::conv3d::generate,
        },
        BenchmarkSpec {
            name: "atax",
            suite: Suite::PolyBench,
            application: "Matrix Transpose and Vector Multiplication",
            generator: gen::linalg::atax,
        },
        BenchmarkSpec {
            name: "bicg",
            suite: Suite::PolyBench,
            application: "BiCG Sub Kernel of BiCGStab Linear Solver",
            generator: gen::linalg::bicg,
        },
        BenchmarkSpec {
            name: "gemm",
            suite: Suite::PolyBench,
            application: "Matrix Multiply",
            generator: gen::gemm::generate,
        },
        BenchmarkSpec {
            name: "mvt",
            suite: Suite::PolyBench,
            application: "Matrix Vector Product and Transpose",
            generator: gen::linalg::mvt,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_table2() {
        let r = registry();
        assert_eq!(r.len(), 10);
        let names: Vec<&str> = r.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            [
                "bfs", "color", "mis", "nw", "pagerank", "3dconv", "atax", "bicg", "gemm",
                "mvt"
            ]
        );
        // Suite distribution per Table II: 2 Rodinia, 5 PolyBench,
        // 3 Pannotia.
        let count = |s: Suite| r.iter().filter(|b| b.suite == s).count();
        assert_eq!(count(Suite::Rodinia), 2);
        assert_eq!(count(Suite::PolyBench), 5);
        assert_eq!(count(Suite::Pannotia), 3);
    }

    #[test]
    fn every_benchmark_generates_at_test_scale() {
        for spec in registry() {
            let wl = spec.generate(Scale::Test, 42);
            assert_eq!(wl.name(), spec.name);
            assert!(
                wl.total_warp_ops() > 0,
                "{} generated an empty trace",
                spec.name
            );
            assert!(!wl.kernels().is_empty());
        }
    }

    #[test]
    fn debug_formatting() {
        let s = format!("{:?}", &registry()[0]);
        assert!(s.contains("bfs"));
    }

    #[test]
    fn extended_registry_adds_ml_workloads() {
        let ext = extended_registry();
        assert_eq!(ext.len(), 12);
        assert_eq!(ext[10].name, "embedding");
        assert_eq!(ext[11].name, "mlp");
        for spec in &ext[10..] {
            assert_eq!(spec.suite, Suite::Extension);
            let wl = spec.generate(Scale::Test, 42);
            assert!(wl.total_warp_ops() > 0, "{}", spec.name);
        }
        // Table II registry is unchanged.
        assert_eq!(registry().len(), 10);
    }

    #[test]
    fn huge_page_generation_works() {
        let spec = registry().into_iter().find(|s| s.name == "gemm").unwrap();
        let wl = spec.generate_with_page_size(Scale::Test, 1, PageSize::Large);
        assert_eq!(wl.space().page_size(), PageSize::Large);
        assert!(wl.total_warp_ops() > 0);
    }
}
