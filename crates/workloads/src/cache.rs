//! A concurrency-safe workload cache for experiment grids.
//!
//! The paper's evaluation grid re-runs every benchmark under nine
//! mechanisms (Figure 10), several TLB capacities (Figure 5) and two page
//! sizes (Section V). Trace generation is pure — `(benchmark, scale,
//! seed, page_size)` fully determines the workload — so regenerating the
//! trace for every grid cell is wasted work. [`WorkloadCache`] generates
//! each distinct workload once and hands out cheap clones: the kernels'
//! trace storage is `Arc`-shared ([`Workload`] documents this), and only
//! the pristine address space is deep-copied so each simulation run can
//! demand-page privately.
//!
//! The cache is safe to share across the parallel grid runner's threads:
//! the map lock is held only to find or create a cell, and generation
//! itself runs outside it through [`OnceLock::get_or_init`], so two
//! threads asking for *different* workloads generate concurrently while
//! two threads asking for the *same* workload generate it exactly once.

use std::collections::HashMap; // simlint: allow(hash-iter, reason = "cache keyed by (name, scale, seed, page size); never iterated")
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use vmem::PageSize;

use crate::registry::BenchmarkSpec;
use crate::scale::Scale;
use crate::trace::Workload;

/// Everything that determines a generated workload.
type Key = (&'static str, Scale, u64, PageSize);

/// Hit/miss counters of a [`WorkloadCache`] (one miss per distinct
/// workload generated).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests served from an already-generated workload.
    pub hits: u64,
    /// Requests that generated the workload.
    pub misses: u64,
}

impl CacheStats {
    /// Total requests served.
    pub fn requests(&self) -> u64 {
        self.hits + self.misses
    }
}

/// Generates each distinct `(benchmark, scale, seed, page_size)` workload
/// once and serves shared-storage clones afterwards.
///
/// # Example
///
/// ```
/// use workloads::{registry, Scale, WorkloadCache};
///
/// let cache = WorkloadCache::new();
/// let spec = registry().into_iter().find(|s| s.name == "gemm").unwrap();
/// let first = cache.get(&spec, Scale::Test, 42);
/// let again = cache.get(&spec, Scale::Test, 42);
/// assert_eq!(first.total_warp_ops(), again.total_warp_ops());
/// assert_eq!(cache.stats().misses, 1);
/// assert_eq!(cache.stats().hits, 1);
/// ```
#[derive(Default)]
pub struct WorkloadCache {
    entries: Mutex<HashMap<Key, Arc<OnceLock<Workload>>>>, // simlint: allow(hash-iter, reason = "keyed access only; results never depend on entry order")
    hits: AtomicU64,
    misses: AtomicU64,
}

impl WorkloadCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the workload for `spec` at `scale`/`seed` with 4 KiB
    /// pages, generating it on first request.
    pub fn get(&self, spec: &BenchmarkSpec, scale: Scale, seed: u64) -> Workload {
        self.get_with_page_size(spec, scale, seed, PageSize::Small)
    }

    /// Returns the workload for `spec` at `scale`/`seed`/`page_size`,
    /// generating it on first request.
    pub fn get_with_page_size(
        &self,
        spec: &BenchmarkSpec,
        scale: Scale,
        seed: u64,
        page_size: PageSize,
    ) -> Workload {
        let cell = {
            let mut entries = self.entries.lock().expect("cache lock poisoned");
            Arc::clone(
                entries
                    .entry((spec.name, scale, seed, page_size))
                    .or_insert_with(|| Arc::new(OnceLock::new())),
            )
        };
        // Generate outside the map lock so distinct workloads build in
        // parallel; OnceLock still guarantees one generation per key.
        let mut generated = false;
        let workload = cell.get_or_init(|| {
            generated = true;
            spec.generate_with_page_size(scale, seed, page_size)
        });
        if generated {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        workload.clone()
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of distinct workloads generated so far.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("cache lock poisoned").len()
    }

    /// Whether nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::registry;

    fn spec(name: &str) -> BenchmarkSpec {
        registry().into_iter().find(|s| s.name == name).unwrap()
    }

    #[test]
    fn generates_once_per_key() {
        let cache = WorkloadCache::new();
        let gemm = spec("gemm");
        for _ in 0..5 {
            cache.get(&gemm, Scale::Test, 42);
        }
        assert_eq!(cache.stats(), CacheStats { hits: 4, misses: 1 });
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_get_distinct_workloads() {
        let cache = WorkloadCache::new();
        let gemm = spec("gemm");
        let a = cache.get(&gemm, Scale::Test, 42);
        let b = cache.get(&gemm, Scale::Test, 43);
        let c = cache.get_with_page_size(&gemm, Scale::Test, 42, PageSize::Large);
        assert_eq!(cache.stats().misses, 3);
        assert_eq!(a.name(), b.name());
        assert_eq!(c.space().page_size(), PageSize::Large);
    }

    #[test]
    fn cached_clone_matches_fresh_generation() {
        let cache = WorkloadCache::new();
        let bfs = spec("bfs");
        let cached = cache.get(&bfs, Scale::Test, 42);
        let fresh = bfs.generate(Scale::Test, 42);
        assert_eq!(cached.total_warp_ops(), fresh.total_warp_ops());
        assert_eq!(cached.footprint_bytes(), fresh.footprint_bytes());
        for (a, b) in cached.kernels().iter().zip(fresh.kernels()) {
            assert_eq!(a.tbs, b.tbs);
        }
    }

    #[test]
    fn concurrent_access_generates_each_key_once() {
        let cache = Arc::new(WorkloadCache::new());
        let names = ["gemm", "bfs", "mvt", "atax"];
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for name in names {
                        let wl = cache.get(&spec(name), Scale::Test, 42);
                        assert!(wl.total_warp_ops() > 0);
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.misses, names.len() as u64);
        assert_eq!(stats.requests(), 16);
    }
}
