//! A concurrency-safe workload cache for experiment grids.
//!
//! The paper's evaluation grid re-runs every benchmark under nine
//! mechanisms (Figure 10), several TLB capacities (Figure 5) and two page
//! sizes (Section V). Trace generation is pure — `(benchmark, scale,
//! seed, page_size)` fully determines the workload — so regenerating the
//! trace for every grid cell is wasted work. [`WorkloadCache`] generates
//! each distinct workload once and hands out cheap clones: the kernels'
//! trace storage is `Arc`-shared ([`Workload`] documents this), and only
//! the pristine address space is deep-copied so each simulation run can
//! demand-page privately.
//!
//! The cache is safe to share across the parallel grid runner's threads:
//! the map lock is held only to find or create a cell, and generation
//! itself runs outside it through [`OnceLock::get_or_init`], so two
//! threads asking for *different* workloads generate concurrently while
//! two threads asking for the *same* workload generate it exactly once.

use std::collections::HashMap; // simlint: allow(hash-iter, reason = "cache keyed by (name, scale, seed, page size); never iterated")
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use vmem::PageSize;

use crate::format::{self, TraceError, TraceReader, TraceSource};
use crate::registry::BenchmarkSpec;
use crate::scale::Scale;
use crate::trace::Workload;

/// Everything that determines a generated workload.
type Key = (&'static str, Scale, u64, PageSize);

/// The on-disk cache key: provenance as recorded in a `trace/v1` footer
/// (the scale is its display tag so hand-written traces can join in).
type DiskKey = (String, String, u64, PageSize);

fn disk_key(bench: &str, scale: Scale, seed: u64, page_size: PageSize) -> DiskKey {
    (bench.to_owned(), scale.to_string(), seed, page_size)
}

/// Hit/miss counters of a [`WorkloadCache`] (one miss per distinct
/// workload generated).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests served from an already-generated workload.
    pub hits: u64,
    /// Requests that generated the workload.
    pub misses: u64,
}

impl CacheStats {
    /// Total requests served.
    pub fn requests(&self) -> u64 {
        self.hits + self.misses
    }
}

/// Generates each distinct `(benchmark, scale, seed, page_size)` workload
/// once and serves shared-storage clones afterwards.
///
/// # Example
///
/// ```
/// use workloads::{registry, Scale, WorkloadCache};
///
/// let cache = WorkloadCache::new();
/// let spec = registry().into_iter().find(|s| s.name == "gemm").unwrap();
/// let first = cache.get(&spec, Scale::Test, 42);
/// let again = cache.get(&spec, Scale::Test, 42);
/// assert_eq!(first.total_warp_ops(), again.total_warp_ops());
/// assert_eq!(cache.stats().misses, 1);
/// assert_eq!(cache.stats().hits, 1);
/// ```
#[derive(Default)]
pub struct WorkloadCache {
    entries: Mutex<HashMap<Key, Arc<OnceLock<Workload>>>>, // simlint: allow(hash-iter, reason = "keyed access only; results never depend on entry order")
    hits: AtomicU64,
    misses: AtomicU64,
    /// When set, misses also persist a `trace/v1` file here (and later
    /// requests — in this process or the next — replay it from disk).
    disk: Option<PathBuf>,
    /// Trace files registered explicitly via [`WorkloadCache::preload_trace`]
    /// (`repro --trace FILE`), keyed by their recorded provenance.
    preloaded: Mutex<HashMap<DiskKey, PathBuf>>, // simlint: allow(hash-iter, reason = "keyed access only; results never depend on entry order")
}

impl WorkloadCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a cache backed by an on-disk trace directory: every miss
    /// writes a `trace/v1` file under `dir` (named by its provenance
    /// key), and any process pointing a cache at the same directory
    /// replays those files instead of regenerating. Disk failures fall
    /// back to in-memory generation — the cache never changes results,
    /// only where they come from.
    pub fn with_disk(dir: impl Into<PathBuf>) -> Self {
        WorkloadCache {
            disk: Some(dir.into()),
            ..Self::default()
        }
    }

    /// The trace directory, if this cache is disk-backed.
    pub fn disk_dir(&self) -> Option<&Path> {
        self.disk.as_deref()
    }

    /// Registers an existing trace file: requests whose `(bench, scale,
    /// seed, page_size)` match the file's recorded provenance replay it
    /// instead of generating.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] if the file cannot be opened or its
    /// footer does not parse (corrupt files are rejected up front, not
    /// at replay time).
    pub fn preload_trace(&self, path: &Path) -> Result<TraceReader, TraceError> {
        let reader = TraceReader::open(path)?;
        let key = (
            reader.bench().to_owned(),
            reader.scale_tag().to_owned(),
            reader.seed(),
            reader.page_size(),
        );
        self.preloaded
            .lock()
            .expect("cache lock poisoned")
            .insert(key, path.to_owned());
        Ok(reader)
    }

    /// The canonical file name of a cached trace (readable provenance
    /// plus the format version, so a version bump never replays stale
    /// bytes).
    fn disk_path(&self, bench: &str, scale: Scale, seed: u64, page_size: PageSize) -> Option<PathBuf> {
        let dir = self.disk.as_ref()?;
        let ps = match page_size {
            PageSize::Small => "4k",
            PageSize::Large => "2m",
        };
        Some(dir.join(format!("{bench}-{scale}-s{seed}-{ps}.v{}.trace", format::VERSION)))
    }

    /// The trace file serving `(bench, scale, seed, page_size)`, if any:
    /// a preloaded file wins, then the disk directory.
    fn trace_file(
        &self,
        bench: &str,
        scale: Scale,
        seed: u64,
        page_size: PageSize,
    ) -> Option<PathBuf> {
        let pre = self
            .preloaded
            .lock()
            .expect("cache lock poisoned")
            .get(&disk_key(bench, scale, seed, page_size))
            .cloned();
        pre.or_else(|| self.disk_path(bench, scale, seed, page_size))
    }

    /// Ensures a trace file for `spec` exists on disk and returns its
    /// path, generating and writing it if needed. Writes go through a
    /// temp file + rename, so two processes sharing a directory never
    /// see a half-written trace.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] if this cache has no disk directory and
    /// no matching preloaded file, or if writing fails.
    pub fn ensure_trace_file(
        &self,
        spec: &BenchmarkSpec,
        scale: Scale,
        seed: u64,
        page_size: PageSize,
    ) -> Result<PathBuf, TraceError> {
        let path = self
            .trace_file(spec.name, scale, seed, page_size)
            .ok_or_else(|| TraceError::NotATrace {
                what: "cache has no disk directory (use with_disk or preload_trace)".into(),
            })?;
        if path.exists() {
            return Ok(path);
        }
        if let Some(dir) = &self.disk {
            std::fs::create_dir_all(dir).map_err(|source| TraceError::Io {
                context: format!("create trace dir {}", dir.display()),
                source,
            })?;
        }
        let workload = spec.generate_with_page_size(scale, seed, page_size);
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        format::write_workload(&tmp, &workload, spec.name, Some(scale), seed)?;
        std::fs::rename(&tmp, &path).map_err(|source| TraceError::Io {
            context: format!("rename {} into place", tmp.display()),
            source,
        })?;
        Ok(path)
    }

    /// Returns a [`TraceSource`] for `spec` with 4 KiB pages: a
    /// streaming file source when this cache is disk-backed (or the
    /// trace was preloaded), an in-memory generated workload otherwise.
    pub fn get_source(&self, spec: &BenchmarkSpec, scale: Scale, seed: u64) -> TraceSource {
        self.get_source_with_page_size(spec, scale, seed, PageSize::Small)
    }

    /// Returns a [`TraceSource`] for `spec` at `page_size`. File-backed
    /// sources stream TBs block by block during simulation, so the full
    /// kernel is never resident; if the file cannot be produced or
    /// opened, falls back to in-memory generation (reporting the reason
    /// on stderr) rather than failing the run.
    pub fn get_source_with_page_size(
        &self,
        spec: &BenchmarkSpec,
        scale: Scale,
        seed: u64,
        page_size: PageSize,
    ) -> TraceSource {
        if self.trace_file(spec.name, scale, seed, page_size).is_some() {
            match self
                .ensure_trace_file(spec, scale, seed, page_size)
                .and_then(|path| TraceReader::open(&path))
            {
                Ok(reader) => return TraceSource::File(reader),
                Err(e) => {
                    eprintln!(
                        "warning: trace cache unusable for {} ({scale}, seed {seed}): {e}; regenerating",
                        spec.name
                    );
                }
            }
        }
        TraceSource::Generated(self.get_with_page_size(spec, scale, seed, page_size))
    }

    /// Returns the workload for `spec` at `scale`/`seed` with 4 KiB
    /// pages, generating it on first request.
    pub fn get(&self, spec: &BenchmarkSpec, scale: Scale, seed: u64) -> Workload {
        self.get_with_page_size(spec, scale, seed, PageSize::Small)
    }

    /// Returns the workload for `spec` at `scale`/`seed`/`page_size`,
    /// generating it on first request.
    pub fn get_with_page_size(
        &self,
        spec: &BenchmarkSpec,
        scale: Scale,
        seed: u64,
        page_size: PageSize,
    ) -> Workload {
        let cell = {
            let mut entries = self.entries.lock().expect("cache lock poisoned");
            Arc::clone(
                entries
                    .entry((spec.name, scale, seed, page_size))
                    .or_insert_with(|| Arc::new(OnceLock::new())),
            )
        };
        // Generate outside the map lock so distinct workloads build in
        // parallel; OnceLock still guarantees one generation per key.
        let mut generated = false;
        let workload = cell.get_or_init(|| {
            generated = true;
            self.load_or_generate(spec, scale, seed, page_size)
        });
        if generated {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        workload.clone()
    }

    /// First materialization of a key: replay the trace file when one
    /// is (or can be put) on disk, generate in RAM otherwise.
    fn load_or_generate(
        &self,
        spec: &BenchmarkSpec,
        scale: Scale,
        seed: u64,
        page_size: PageSize,
    ) -> Workload {
        if self.trace_file(spec.name, scale, seed, page_size).is_some() {
            let loaded = self
                .ensure_trace_file(spec, scale, seed, page_size)
                .and_then(|path| TraceReader::open(&path))
                .and_then(|reader| reader.read_workload());
            match loaded {
                Ok(workload) => return workload,
                Err(e) => {
                    eprintln!(
                        "warning: trace cache unusable for {} ({scale}, seed {seed}): {e}; regenerating",
                        spec.name
                    );
                }
            }
        }
        spec.generate_with_page_size(scale, seed, page_size)
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of distinct workloads generated so far.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("cache lock poisoned").len()
    }

    /// Whether nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::registry;

    fn spec(name: &str) -> BenchmarkSpec {
        registry().into_iter().find(|s| s.name == name).unwrap()
    }

    #[test]
    fn generates_once_per_key() {
        let cache = WorkloadCache::new();
        let gemm = spec("gemm");
        for _ in 0..5 {
            cache.get(&gemm, Scale::Test, 42);
        }
        assert_eq!(cache.stats(), CacheStats { hits: 4, misses: 1 });
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_get_distinct_workloads() {
        let cache = WorkloadCache::new();
        let gemm = spec("gemm");
        let a = cache.get(&gemm, Scale::Test, 42);
        let b = cache.get(&gemm, Scale::Test, 43);
        let c = cache.get_with_page_size(&gemm, Scale::Test, 42, PageSize::Large);
        assert_eq!(cache.stats().misses, 3);
        assert_eq!(a.name(), b.name());
        assert_eq!(c.space().page_size(), PageSize::Large);
    }

    #[test]
    fn cached_clone_matches_fresh_generation() {
        let cache = WorkloadCache::new();
        let bfs = spec("bfs");
        let cached = cache.get(&bfs, Scale::Test, 42);
        let fresh = bfs.generate(Scale::Test, 42);
        assert_eq!(cached.total_warp_ops(), fresh.total_warp_ops());
        assert_eq!(cached.footprint_bytes(), fresh.footprint_bytes());
        for (a, b) in cached.kernels().iter().zip(fresh.kernels()) {
            assert_eq!(a.tbs, b.tbs);
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("otlb-cache-{tag}-{}", std::process::id()))
    }

    #[test]
    fn disk_cache_replays_the_same_workload() {
        let dir = temp_dir("replay");
        let gemm = spec("gemm");
        let fresh = gemm.generate(Scale::Test, 42);

        let cache = WorkloadCache::with_disk(&dir);
        let first = cache.get(&gemm, Scale::Test, 42); // generates + writes
        let cache2 = WorkloadCache::with_disk(&dir);
        let replayed = cache2.get(&gemm, Scale::Test, 42); // reads the file

        for wl in [&first, &replayed] {
            assert_eq!(wl.name(), fresh.name());
            assert_eq!(wl.summary(), fresh.summary());
            for (a, b) in wl.kernels().iter().zip(fresh.kernels()) {
                assert_eq!(a.tbs, b.tbs);
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_cache_is_deterministic_across_populations() {
        let dir_a = temp_dir("det-a");
        let dir_b = temp_dir("det-b");
        let mvt = spec("mvt");
        let path_a = WorkloadCache::with_disk(&dir_a)
            .ensure_trace_file(&mvt, Scale::Test, 42, PageSize::Small)
            .unwrap();
        let path_b = WorkloadCache::with_disk(&dir_b)
            .ensure_trace_file(&mvt, Scale::Test, 42, PageSize::Small)
            .unwrap();
        assert_eq!(
            crate::format::file_hash(&path_a).unwrap(),
            crate::format::file_hash(&path_b).unwrap(),
            "two populations of the same key must write identical bytes"
        );
        std::fs::remove_dir_all(&dir_a).unwrap();
        std::fs::remove_dir_all(&dir_b).unwrap();
    }

    #[test]
    fn preloaded_trace_serves_matching_requests() {
        let dir = temp_dir("preload");
        std::fs::create_dir_all(&dir).unwrap();
        let bfs = spec("bfs");
        let wl = bfs.generate(Scale::Test, 7);
        let path = dir.join("hand-built.trace");
        crate::format::write_workload(&path, &wl, "bfs", Some(Scale::Test), 7).unwrap();

        let cache = WorkloadCache::new(); // no disk dir
        cache.preload_trace(&path).unwrap();
        match cache.get_source(&bfs, Scale::Test, 7) {
            TraceSource::File(reader) => assert_eq!(reader.seed(), 7),
            TraceSource::Generated(_) => panic!("preloaded trace was ignored"),
        }
        // A different seed misses the preload and generates.
        match cache.get_source(&bfs, Scale::Test, 8) {
            TraceSource::Generated(w) => assert_eq!(w.name(), "bfs"),
            TraceSource::File(_) => panic!("seed 8 must not match the seed-7 trace"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn memory_only_cache_yields_generated_sources() {
        let cache = WorkloadCache::new();
        match cache.get_source(&spec("atax"), Scale::Test, 42) {
            TraceSource::Generated(w) => assert!(w.total_warp_ops() > 0),
            TraceSource::File(_) => panic!("no disk dir, no file source"),
        }
    }

    #[test]
    fn concurrent_access_generates_each_key_once() {
        let cache = Arc::new(WorkloadCache::new());
        let names = ["gemm", "bfs", "mvt", "atax"];
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for name in names {
                        let wl = cache.get(&spec(name), Scale::Test, 42);
                        assert!(wl.total_warp_ops() > 0);
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.misses, names.len() as u64);
        assert_eq!(stats.requests(), 16);
    }
}
