//! `trace/v1` — the versioned binary on-disk trace format.
//!
//! Every run used to regenerate its workload and hold the whole
//! `Workload`/`KernelTrace`/`WarpTrace` tree in RAM. This module is the
//! producer/consumer split that decouples the two: [`TraceWriter`]
//! serializes a trace incrementally (TB by TB, no full-kernel buffer),
//! and [`TraceReader`] streams it back block by block, yielding
//! [`TbTrace`]s without ever materializing a kernel. The engine replays
//! either source through [`TraceSource`] with byte-identical reports.
//!
//! # On-disk contract (`trace/v1`)
//!
//! ```text
//! magic "OTLB.TRC" | version u32 LE | op blocks ... |
//! footer | footer-FNV u64 LE | footer-offset u64 LE | tail "OTLB.END"
//! ```
//!
//! *Op blocks* hold a run of consecutive TBs of one kernel in a
//! struct-of-arrays layout: a structure section (per-TB warp counts,
//! per-warp op counts), a tag section (one byte per op), and an operand
//! section (LEB128 varints). Memory-op base addresses are delta-encoded
//! against the previous address in the block (zigzag + varint);
//! [`LaneAccesses::Strided`] is the run-length form of a warp's lanes
//! (base, stride, active lanes), and gathers chain per-lane deltas. The
//! footer carries an FNV-1a 64 checksum per block, so corruption is
//! detected before a single op reaches the simulator.
//!
//! The *footer* is written last (append-only — the writer never seeks)
//! and holds everything needed without decoding a block: provenance
//! (benchmark, scale, seed, page size), the ordered buffer table that
//! reconstructs the deterministic [`AddressSpace`], the per-kernel block
//! index, and the [`TraceSummary`] accumulated at write time (so
//! `trace-info` and `repro --table2` never pay a full-decode pass).
//!
//! Evolution rule (mirrors the CSV column contract): `trace/v1` fields
//! are append-only. A field may be added at the *end* of the footer —
//! old readers must keep working on new files within the same version —
//! and any layout change to blocks or existing fields bumps the version,
//! which old readers reject with [`TraceError::Version`] instead of
//! misparsing.
//!
//! Every reader error is offset-tagged ([`TraceError`] carries the file
//! position); corrupt or truncated files fail with `Err`, never a panic.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use vmem::{AddressSpace, PageSize, VirtAddr};

use crate::scale::Scale;
use crate::trace::{
    KernelTrace, LaneAccesses, TbTrace, TraceSummary, WarpOp, WarpTrace, Workload,
};

/// Leading file magic of a `trace/v1` file.
pub const MAGIC: &[u8; 8] = b"OTLB.TRC";

/// Trailing file magic (the last 8 bytes of a complete file).
pub const MAGIC_TAIL: &[u8; 8] = b"OTLB.END";

/// The format version this module writes and reads.
pub const VERSION: u32 = 1;

/// Target op count per block: large enough that varint streams compress
/// well, small enough that a decoded block (the streaming reader's whole
/// resident window) stays a few hundred KiB.
const BLOCK_TARGET_OPS: usize = 16 * 1024;

/// Op tag bytes of the block tag section.
const TAG_LOAD_STRIDED: u8 = 0;
const TAG_LOAD_GATHER: u8 = 1;
const TAG_STORE_STRIDED: u8 = 2;
const TAG_STORE_GATHER: u8 = 3;
const TAG_COMPUTE: u8 = 4;

/// Why a trace file could not be written or read.
#[derive(Debug)]
pub enum TraceError {
    /// An underlying I/O failure, tagged with what was being done.
    Io {
        /// What the format layer was doing when the I/O failed.
        context: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The file is not a `trace/v1` file (bad magic, impossible sizes).
    NotATrace {
        /// What looked wrong.
        what: String,
    },
    /// The file is a trace, but of an unsupported format version.
    Version {
        /// Version found in the header.
        found: u32,
        /// Version this reader supports.
        expected: u32,
    },
    /// Structurally invalid bytes at a known file offset.
    Corrupt {
        /// Absolute file offset the problem was detected at.
        offset: u64,
        /// What was expected / found.
        what: String,
    },
    /// The recorded buffer table cannot be replayed into an
    /// [`AddressSpace`] (duplicate names, base mismatch, …).
    Space {
        /// What went wrong during reconstruction.
        what: String,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io { context, source } => write!(f, "{context}: {source}"),
            TraceError::NotATrace { what } => write!(f, "not a trace/v1 file: {what}"),
            TraceError::Version { found, expected } => write!(
                f,
                "unsupported trace version {found} (this reader supports version {expected})"
            ),
            TraceError::Corrupt { offset, what } => write!(f, "offset {offset}: {what}"),
            TraceError::Space { what } => {
                write!(f, "cannot reconstruct the address space: {what}")
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

fn io_err(context: impl Into<String>) -> impl FnOnce(std::io::Error) -> TraceError {
    let context = context.into();
    move |source| TraceError::Io { context, source }
}

// --- primitives ---------------------------------------------------------

/// FNV-1a 64 over `bytes` (std-only content hashing; stable across
/// platforms and processes, unlike `DefaultHasher`).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// FNV-1a 64 of a whole file, streamed in chunks (used for the trace
/// cache's determinism check and `.case` trace references).
///
/// # Errors
///
/// Returns [`TraceError::Io`] if the file cannot be read.
pub fn file_hash(path: &Path) -> Result<u64, TraceError> {
    let mut f = File::open(path).map_err(io_err(format!("open {}", path.display())))?;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut buf = [0u8; 64 * 1024];
    loop {
        let n = f
            .read(&mut buf)
            .map_err(io_err(format!("read {}", path.display())))?;
        if n == 0 {
            return Ok(h);
        }
        for &b in &buf[..n] {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// A bounds-checked cursor over an in-memory byte slice, tagging every
/// failure with the absolute file offset it happened at.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Absolute file offset of `buf[0]`.
    base: u64,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8], base: u64) -> Self {
        Cursor { buf, pos: 0, base }
    }

    fn offset(&self) -> u64 {
        self.base + self.pos as u64
    }

    fn corrupt(&self, what: impl Into<String>) -> TraceError {
        TraceError::Corrupt {
            offset: self.offset(),
            what: what.into(),
        }
    }

    fn u8(&mut self) -> Result<u8, TraceError> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| self.corrupt("truncated: expected another byte"))?;
        self.pos += 1;
        Ok(b)
    }

    fn u64_le(&mut self) -> Result<u64, TraceError> {
        let end = self
            .pos
            .checked_add(8)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| self.corrupt("truncated: expected 8-byte word"))?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.buf[self.pos..end]);
        self.pos = end;
        Ok(u64::from_le_bytes(raw))
    }

    fn varint(&mut self) -> Result<u64, TraceError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift >= 63 && byte > 1 {
                return Err(self.corrupt("varint overflows 64 bits"));
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn str(&mut self) -> Result<String, TraceError> {
        let len = self.varint()?;
        let len = usize::try_from(len).map_err(|_| self.corrupt("string length overflow"))?;
        let end = self
            .pos
            .checked_add(len)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| self.corrupt(format!("truncated: expected {len}-byte string")))?;
        let s = std::str::from_utf8(&self.buf[self.pos..end])
            .map_err(|_| self.corrupt("string is not UTF-8"))?
            .to_owned();
        self.pos = end;
        Ok(s)
    }

    fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }
}

// --- metadata -----------------------------------------------------------

/// One recorded allocation of the workload's address space, in
/// allocation order. Replaying the table through [`AddressSpace::new`]
/// (whose `allocate` is deterministic) reconstructs the exact space the
/// generator produced; the recorded base pins that.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BufferRecord {
    /// Buffer name (unique within the space).
    pub name: String,
    /// Requested size in bytes.
    pub size: u64,
    /// Base virtual address the allocation produced.
    pub base: u64,
}

/// Location and integrity data of one op block (footer index entry).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockIndex {
    /// Absolute file offset of the block's first byte.
    pub offset: u64,
    /// Encoded length in bytes.
    pub len: u64,
    /// Global index (within the kernel) of the block's first TB.
    pub first_tb: u64,
    /// Number of TBs in the block.
    pub tb_count: u64,
    /// Warp ops in the block (for `trace-info` block statistics).
    pub ops: u64,
    /// FNV-1a 64 of the encoded block bytes.
    pub checksum: u64,
}

/// Per-kernel metadata and block index from the trace footer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KernelMeta {
    /// Kernel name.
    pub name: String,
    /// Threads per TB (occupancy accounting).
    pub threads_per_tb: u32,
    /// Compile-time per-SM TB concurrency limit.
    pub max_concurrent_tbs_per_sm: u8,
    /// Number of TBs in the kernel's grid.
    pub tb_count: u64,
    /// The kernel's op blocks, in TB order.
    pub blocks: Vec<BlockIndex>,
}

// --- writer -------------------------------------------------------------

/// Incremental `trace/v1` writer: TBs go in one at a time, blocks are
/// appended as they fill, and the footer (index + summary) is written by
/// [`TraceWriter::finish`]. Peak memory is one partial block, never a
/// kernel.
#[derive(Debug)]
pub struct TraceWriter {
    out: BufWriter<File>,
    path: PathBuf,
    /// Bytes written so far (the writer never seeks).
    pos: u64,
    name: String,
    bench: String,
    scale: String,
    seed: u64,
    page_size: PageSize,
    buffers: Vec<BufferRecord>,
    summary: TraceSummary,
    kernels: Vec<KernelMeta>,
    /// The kernel currently being written (`begin_kernel` ..
    /// `end_kernel`).
    open_kernel: bool,
    tbs_in_kernel: u64,
    // Current block accumulator (struct-of-arrays sections).
    sec_structure: Vec<u8>,
    sec_tags: Vec<u8>,
    sec_operands: Vec<u8>,
    block_first_tb: u64,
    block_tbs: u64,
    block_ops: u64,
    prev_base: u64,
}

impl TraceWriter {
    /// Creates `path` and writes the header. Provenance (`bench`,
    /// `scale`, `seed`) keys the on-disk cache; pass the registry name
    /// and the generation parameters, or `scale = None` for hand-built
    /// workloads. The buffer table is recorded from `space` in
    /// allocation order.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] if the file cannot be created or
    /// written.
    pub fn create(
        path: &Path,
        name: &str,
        bench: &str,
        scale: Option<Scale>,
        seed: u64,
        space: &AddressSpace,
    ) -> Result<Self, TraceError> {
        let file = File::create(path).map_err(io_err(format!("create {}", path.display())))?;
        let mut out = BufWriter::new(file);
        out.write_all(MAGIC)
            .and_then(|()| out.write_all(&VERSION.to_le_bytes()))
            .map_err(io_err(format!("write header to {}", path.display())))?;
        let buffers = space
            .buffers()
            .map(|b| BufferRecord {
                name: b.name().to_owned(),
                size: b.size(),
                base: b.base().raw(),
            })
            .collect();
        Ok(TraceWriter {
            out,
            path: path.to_owned(),
            pos: (MAGIC.len() + 4) as u64,
            name: name.to_owned(),
            bench: bench.to_owned(),
            scale: scale.map(|s| s.to_string()).unwrap_or_default(),
            seed,
            page_size: space.page_size(),
            buffers,
            summary: TraceSummary::default(),
            kernels: Vec::new(),
            open_kernel: false,
            tbs_in_kernel: 0,
            sec_structure: Vec::new(),
            sec_tags: Vec::new(),
            sec_operands: Vec::new(),
            block_first_tb: 0,
            block_tbs: 0,
            block_ops: 0,
            prev_base: 0,
        })
    }

    /// Opens a kernel; TBs written next belong to it.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::NotATrace`] if a kernel is already open.
    pub fn begin_kernel(
        &mut self,
        name: &str,
        threads_per_tb: u32,
        max_concurrent_tbs_per_sm: u8,
    ) -> Result<(), TraceError> {
        if self.open_kernel {
            return Err(TraceError::NotATrace {
                what: "begin_kernel while a kernel is open".into(),
            });
        }
        self.kernels.push(KernelMeta {
            name: name.to_owned(),
            threads_per_tb,
            max_concurrent_tbs_per_sm,
            tb_count: 0,
            blocks: Vec::new(),
        });
        self.open_kernel = true;
        self.tbs_in_kernel = 0;
        Ok(())
    }

    /// Appends one TB to the open kernel, flushing a block to disk when
    /// the accumulator reaches the target op count.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::NotATrace`] outside `begin_kernel` /
    /// `end_kernel`, or [`TraceError::Io`] on a write failure.
    pub fn write_tb(&mut self, tb: &TbTrace) -> Result<(), TraceError> {
        if !self.open_kernel {
            return Err(TraceError::NotATrace {
                what: "write_tb outside begin_kernel/end_kernel".into(),
            });
        }
        if self.block_tbs == 0 {
            self.block_first_tb = self.tbs_in_kernel;
            self.prev_base = 0;
        }
        put_varint(&mut self.sec_structure, tb.warps().len() as u64);
        for warp in tb.warps() {
            put_varint(&mut self.sec_structure, warp.len() as u64);
            for op in warp.ops() {
                self.encode_op(op);
                self.block_ops += 1;
            }
        }
        self.block_tbs += 1;
        self.tbs_in_kernel += 1;
        if self.block_ops as usize >= BLOCK_TARGET_OPS {
            self.flush_block()?;
        }
        Ok(())
    }

    /// Closes the open kernel (flushes its final partial block).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::NotATrace`] if no kernel is open, or
    /// [`TraceError::Io`] on a write failure.
    pub fn end_kernel(&mut self) -> Result<(), TraceError> {
        if !self.open_kernel {
            return Err(TraceError::NotATrace {
                what: "end_kernel without begin_kernel".into(),
            });
        }
        if self.block_tbs > 0 {
            self.flush_block()?;
        }
        if let Some(k) = self.kernels.last_mut() {
            k.tb_count = self.tbs_in_kernel;
        }
        self.open_kernel = false;
        Ok(())
    }

    /// Writes the footer and returns the summary accumulated at write
    /// time (the same numbers [`Workload::summary`] computes).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::NotATrace`] if a kernel is still open, or
    /// [`TraceError::Io`] on a write failure.
    pub fn finish(mut self) -> Result<TraceSummary, TraceError> {
        if self.open_kernel {
            return Err(TraceError::NotATrace {
                what: "finish with an open kernel (call end_kernel)".into(),
            });
        }
        let mut footer = Vec::new();
        put_str(&mut footer, &self.name);
        put_str(&mut footer, &self.bench);
        put_str(&mut footer, &self.scale);
        put_varint(&mut footer, self.seed);
        footer.push(match self.page_size {
            PageSize::Small => 0,
            PageSize::Large => 1,
        });
        let s = self.summary;
        for v in [
            s.loads,
            s.stores,
            s.compute_ops,
            s.compute_cycles,
            s.gather_ops,
            s.strided_ops,
            s.lane_accesses,
        ] {
            put_varint(&mut footer, v);
        }
        put_varint(&mut footer, self.buffers.len() as u64);
        for b in &self.buffers {
            put_str(&mut footer, &b.name);
            put_varint(&mut footer, b.size);
            put_varint(&mut footer, b.base);
        }
        put_varint(&mut footer, self.kernels.len() as u64);
        for k in &self.kernels {
            put_str(&mut footer, &k.name);
            put_varint(&mut footer, u64::from(k.threads_per_tb));
            footer.push(k.max_concurrent_tbs_per_sm);
            put_varint(&mut footer, k.tb_count);
            put_varint(&mut footer, k.blocks.len() as u64);
            for blk in &k.blocks {
                put_varint(&mut footer, blk.offset);
                put_varint(&mut footer, blk.len);
                put_varint(&mut footer, blk.first_tb);
                put_varint(&mut footer, blk.tb_count);
                put_varint(&mut footer, blk.ops);
                footer.extend_from_slice(&blk.checksum.to_le_bytes());
            }
        }
        let footer_off = self.pos;
        let footer_sum = fnv1a(&footer);
        let ctx = format!("write footer to {}", self.path.display());
        self.out
            .write_all(&footer)
            .and_then(|()| self.out.write_all(&footer_sum.to_le_bytes()))
            .and_then(|()| self.out.write_all(&footer_off.to_le_bytes()))
            .and_then(|()| self.out.write_all(MAGIC_TAIL))
            .and_then(|()| self.out.flush())
            .map_err(io_err(ctx))?;
        Ok(self.summary)
    }

    fn encode_op(&mut self, op: &WarpOp) {
        match op {
            WarpOp::Compute { cycles } => {
                self.sec_tags.push(TAG_COMPUTE);
                put_varint(&mut self.sec_operands, u64::from(*cycles));
                self.summary.compute_ops += 1;
                self.summary.compute_cycles += u64::from(*cycles);
            }
            WarpOp::Load(acc) | WarpOp::Store(acc) => {
                let store = op.is_store();
                if store {
                    self.summary.stores += 1;
                } else {
                    self.summary.loads += 1;
                }
                self.summary.lane_accesses += acc.lane_count() as u64;
                match acc {
                    LaneAccesses::Strided {
                        base,
                        stride,
                        active_lanes,
                    } => {
                        self.summary.strided_ops += 1;
                        self.sec_tags.push(if store {
                            TAG_STORE_STRIDED
                        } else {
                            TAG_LOAD_STRIDED
                        });
                        self.put_delta(base.raw());
                        put_varint(&mut self.sec_operands, zigzag(*stride));
                        self.sec_operands.push(*active_lanes);
                    }
                    LaneAccesses::Gather(lanes) => {
                        self.summary.gather_ops += 1;
                        self.sec_tags.push(if store {
                            TAG_STORE_GATHER
                        } else {
                            TAG_LOAD_GATHER
                        });
                        put_varint(&mut self.sec_operands, lanes.len() as u64);
                        for va in lanes {
                            self.put_delta(va.raw());
                        }
                    }
                }
            }
        }
    }

    /// Delta-encodes a base address against the previous one in the
    /// block (wrapping arithmetic keeps it lossless for any u64).
    fn put_delta(&mut self, cur: u64) {
        let delta = cur.wrapping_sub(self.prev_base) as i64;
        put_varint(&mut self.sec_operands, zigzag(delta));
        self.prev_base = cur;
    }

    fn flush_block(&mut self) -> Result<(), TraceError> {
        let mut block = Vec::with_capacity(
            self.sec_structure.len() + self.sec_tags.len() + self.sec_operands.len() + 16,
        );
        put_varint(&mut block, self.sec_structure.len() as u64);
        block.extend_from_slice(&self.sec_structure);
        put_varint(&mut block, self.sec_tags.len() as u64);
        block.extend_from_slice(&self.sec_tags);
        block.extend_from_slice(&self.sec_operands);
        let index = BlockIndex {
            offset: self.pos,
            len: block.len() as u64,
            first_tb: self.block_first_tb,
            tb_count: self.block_tbs,
            ops: self.block_ops,
            checksum: fnv1a(&block),
        };
        self.out
            .write_all(&block)
            .map_err(io_err(format!("write block to {}", self.path.display())))?;
        self.pos += block.len() as u64;
        if let Some(k) = self.kernels.last_mut() {
            k.blocks.push(index);
        }
        self.sec_structure.clear();
        self.sec_tags.clear();
        self.sec_operands.clear();
        self.block_tbs = 0;
        self.block_ops = 0;
        Ok(())
    }
}

/// Writes a whole workload to `path` and returns its summary.
///
/// # Errors
///
/// Returns a [`TraceError`] on any I/O failure.
pub fn write_workload(
    path: &Path,
    workload: &Workload,
    bench: &str,
    scale: Option<Scale>,
    seed: u64,
) -> Result<TraceSummary, TraceError> {
    let mut w = TraceWriter::create(path, workload.name(), bench, scale, seed, workload.space())?;
    for kernel in workload.kernels() {
        w.begin_kernel(
            &kernel.name,
            kernel.threads_per_tb,
            kernel.max_concurrent_tbs_per_sm,
        )?;
        for tb in &kernel.tbs {
            w.write_tb(tb)?;
        }
        w.end_kernel()?;
    }
    w.finish()
}

// --- reader -------------------------------------------------------------

/// A parsed `trace/v1` footer: all metadata, no decoded blocks. Opening
/// a reader reads only the footer; ops stream in through
/// [`TraceReader::stream_kernel`].
#[derive(Clone, Debug)]
pub struct TraceReader {
    path: PathBuf,
    name: String,
    bench: String,
    scale: String,
    seed: u64,
    page_size: PageSize,
    summary: TraceSummary,
    buffers: Vec<BufferRecord>,
    kernels: Vec<KernelMeta>,
}

impl TraceReader {
    /// Opens `path` and parses its footer (magic, version, checksum all
    /// verified).
    ///
    /// # Errors
    ///
    /// [`TraceError::NotATrace`] for a non-trace file,
    /// [`TraceError::Version`] for a version mismatch, and
    /// [`TraceError::Corrupt`]/[`TraceError::Io`] for damaged files.
    pub fn open(path: &Path) -> Result<Self, TraceError> {
        let mut file = File::open(path).map_err(io_err(format!("open {}", path.display())))?;
        let file_len = file
            .metadata()
            .map_err(io_err(format!("stat {}", path.display())))?
            .len();
        let min_len = (MAGIC.len() + 4 + 8 + 8 + MAGIC_TAIL.len()) as u64;
        if file_len < min_len {
            return Err(TraceError::NotATrace {
                what: format!("file is {file_len} bytes; a trace needs at least {min_len}"),
            });
        }
        let mut head = [0u8; 12];
        file.read_exact(&mut head)
            .map_err(io_err(format!("read header of {}", path.display())))?;
        if &head[..8] != MAGIC {
            return Err(TraceError::NotATrace {
                what: format!("bad leading magic {:02x?}", &head[..8]),
            });
        }
        let mut ver = [0u8; 4];
        ver.copy_from_slice(&head[8..12]);
        let version = u32::from_le_bytes(ver);
        if version != VERSION {
            return Err(TraceError::Version {
                found: version,
                expected: VERSION,
            });
        }
        let mut tail = [0u8; 16];
        file.seek(SeekFrom::End(-16))
            .and_then(|_| file.read_exact(&mut tail))
            .map_err(io_err(format!("read tail of {}", path.display())))?;
        if &tail[8..16] != MAGIC_TAIL {
            return Err(TraceError::Corrupt {
                offset: file_len - 8,
                what: format!("bad trailing magic {:02x?} (truncated write?)", &tail[8..16]),
            });
        }
        let mut off = [0u8; 8];
        off.copy_from_slice(&tail[..8]);
        let footer_off = u64::from_le_bytes(off);
        // Footer region: [footer_off, file_len - 16), last 8 bytes are
        // its checksum.
        if footer_off < (MAGIC.len() + 4) as u64 || footer_off + 8 > file_len - 16 {
            return Err(TraceError::Corrupt {
                offset: file_len - 16,
                what: format!("footer offset {footer_off} outside the file"),
            });
        }
        let footer_len = (file_len - 16 - 8 - footer_off) as usize;
        let mut footer = vec![0u8; footer_len + 8];
        file.seek(SeekFrom::Start(footer_off))
            .and_then(|_| file.read_exact(&mut footer))
            .map_err(io_err(format!("read footer of {}", path.display())))?;
        let mut sum = [0u8; 8];
        sum.copy_from_slice(&footer[footer_len..]);
        let stored_sum = u64::from_le_bytes(sum);
        let computed = fnv1a(&footer[..footer_len]);
        if stored_sum != computed {
            return Err(TraceError::Corrupt {
                offset: footer_off,
                what: format!(
                    "footer checksum mismatch (stored {stored_sum:016x}, computed {computed:016x})"
                ),
            });
        }

        let mut c = Cursor::new(&footer[..footer_len], footer_off);
        let name = c.str()?;
        let bench = c.str()?;
        let scale = c.str()?;
        let seed = c.varint()?;
        let page_size = match c.u8()? {
            0 => PageSize::Small,
            1 => PageSize::Large,
            other => return Err(c.corrupt(format!("unknown page-size tag {other}"))),
        };
        let summary = TraceSummary {
            loads: c.varint()?,
            stores: c.varint()?,
            compute_ops: c.varint()?,
            compute_cycles: c.varint()?,
            gather_ops: c.varint()?,
            strided_ops: c.varint()?,
            lane_accesses: c.varint()?,
        };
        let buffer_count = c.varint()?;
        let mut buffers = Vec::new();
        for _ in 0..buffer_count {
            buffers.push(BufferRecord {
                name: c.str()?,
                size: c.varint()?,
                base: c.varint()?,
            });
        }
        let kernel_count = c.varint()?;
        let mut kernels = Vec::new();
        for _ in 0..kernel_count {
            let kname = c.str()?;
            let threads = c.varint()?;
            let threads_per_tb = u32::try_from(threads)
                .map_err(|_| c.corrupt(format!("threads_per_tb {threads} overflows u32")))?;
            let max_concurrent_tbs_per_sm = c.u8()?;
            let tb_count = c.varint()?;
            let block_count = c.varint()?;
            let mut blocks = Vec::new();
            for _ in 0..block_count {
                let blk = BlockIndex {
                    offset: c.varint()?,
                    len: c.varint()?,
                    first_tb: c.varint()?,
                    tb_count: c.varint()?,
                    ops: c.varint()?,
                    checksum: c.u64_le()?,
                };
                if blk.offset + blk.len > footer_off {
                    return Err(c.corrupt(format!(
                        "block [{}, +{}) overlaps the footer at {footer_off}",
                        blk.offset, blk.len
                    )));
                }
                blocks.push(blk);
            }
            kernels.push(KernelMeta {
                name: kname,
                threads_per_tb,
                max_concurrent_tbs_per_sm,
                tb_count,
                blocks,
            });
        }
        // Append-only evolution: trailing bytes a newer same-version
        // writer added are permitted (and ignored); short footers fail
        // above with offset-tagged errors.
        let _ = c.is_empty();
        Ok(TraceReader {
            path: path.to_owned(),
            name,
            bench,
            scale,
            seed,
            page_size,
            summary,
            buffers,
            kernels,
        })
    }

    /// The workload name recorded at write time.
    pub fn workload_name(&self) -> &str {
        &self.name
    }

    /// The registry benchmark this trace was generated from.
    pub fn bench(&self) -> &str {
        &self.bench
    }

    /// The generation scale, if recorded (`None` for hand-built traces).
    pub fn scale(&self) -> Option<Scale> {
        self.scale.parse().ok()
    }

    /// The raw scale tag string (empty when unrecorded).
    pub fn scale_tag(&self) -> &str {
        &self.scale
    }

    /// The generation seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The page size of the recorded address space.
    pub fn page_size(&self) -> PageSize {
        self.page_size
    }

    /// The summary computed at write time (no decoding needed).
    pub fn summary(&self) -> TraceSummary {
        self.summary
    }

    /// The recorded buffer table, in allocation order.
    pub fn buffers(&self) -> &[BufferRecord] {
        &self.buffers
    }

    /// Per-kernel metadata and block indexes.
    pub fn kernels(&self) -> &[KernelMeta] {
        &self.kernels
    }

    /// The path this reader was opened from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Rebuilds the address space by replaying the recorded allocation
    /// sequence through [`AddressSpace::new`] and verifying every base
    /// address matches the recording.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Space`] if an allocation fails or lands at
    /// a different base than recorded.
    pub fn address_space(&self) -> Result<AddressSpace, TraceError> {
        let mut space = AddressSpace::new(self.page_size);
        for rec in &self.buffers {
            let buf = space.allocate(&rec.name, rec.size).map_err(|e| {
                TraceError::Space {
                    what: format!("allocate {:?} ({} bytes): {e}", rec.name, rec.size),
                }
            })?;
            if buf.base().raw() != rec.base {
                return Err(TraceError::Space {
                    what: format!(
                        "buffer {:?} reconstructed at {:#x}, recorded at {:#x}",
                        rec.name,
                        buf.base().raw(),
                        rec.base
                    ),
                });
            }
        }
        Ok(space)
    }

    /// Opens a streaming cursor over kernel `k`'s TBs. Each stream has
    /// its own file handle, so several kernels (or several replays) can
    /// stream concurrently.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::NotATrace`] for an out-of-range kernel
    /// index, or [`TraceError::Io`] if the file cannot be reopened.
    pub fn stream_kernel(&self, k: usize) -> Result<TbStream, TraceError> {
        let meta = self.kernels.get(k).ok_or_else(|| TraceError::NotATrace {
            what: format!("kernel index {k} out of range ({} kernels)", self.kernels.len()),
        })?;
        let file =
            File::open(&self.path).map_err(io_err(format!("reopen {}", self.path.display())))?;
        Ok(TbStream {
            file: BufReader::new(file),
            path: self.path.clone(),
            blocks: meta.blocks.clone(),
            next_block: 0,
            tb_count: meta.tb_count,
            yielded: 0,
            pending: VecDeque::new(),
        })
    }

    /// Materializes the whole trace back into a [`Workload`] (summary
    /// primed from the footer, so [`Workload::summary`] is free).
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] for damaged blocks or reconstruction
    /// failures.
    pub fn read_workload(&self) -> Result<Workload, TraceError> {
        let space = self.address_space()?;
        let mut kernels = Vec::with_capacity(self.kernels.len());
        for (k, meta) in self.kernels.iter().enumerate() {
            let mut stream = self.stream_kernel(k)?;
            let mut tbs = Vec::new();
            while let Some(tb) = stream.next_tb()? {
                tbs.push(tb);
            }
            kernels.push(KernelTrace {
                name: meta.name.clone(),
                tbs,
                max_concurrent_tbs_per_sm: meta.max_concurrent_tbs_per_sm,
                threads_per_tb: meta.threads_per_tb,
            });
        }
        let workload = Workload::new(self.name.clone(), kernels, space);
        workload.prime_summary(self.summary);
        Ok(workload)
    }

    /// Decodes every block of every kernel, verifying checksums and
    /// recounting the summary against the footer. `Ok` means the file's
    /// payload is fully intact.
    ///
    /// # Errors
    ///
    /// Returns the first [`TraceError`] found.
    pub fn verify(&self) -> Result<(), TraceError> {
        let mut counted = TraceSummary::default();
        for (k, meta) in self.kernels.iter().enumerate() {
            let mut stream = self.stream_kernel(k)?;
            let mut tbs = 0u64;
            while let Some(tb) = stream.next_tb()? {
                tbs += 1;
                for warp in tb.warps() {
                    for op in warp.ops() {
                        match op {
                            WarpOp::Compute { cycles } => {
                                counted.compute_ops += 1;
                                counted.compute_cycles += u64::from(*cycles);
                            }
                            WarpOp::Load(acc) | WarpOp::Store(acc) => {
                                if op.is_store() {
                                    counted.stores += 1;
                                } else {
                                    counted.loads += 1;
                                }
                                counted.lane_accesses += acc.lane_count() as u64;
                                match acc {
                                    LaneAccesses::Gather(_) => counted.gather_ops += 1,
                                    LaneAccesses::Strided { .. } => counted.strided_ops += 1,
                                }
                            }
                        }
                    }
                }
            }
            if tbs != meta.tb_count {
                return Err(TraceError::NotATrace {
                    what: format!(
                        "kernel {k} ({}) streamed {tbs} TBs, footer says {}",
                        meta.name, meta.tb_count
                    ),
                });
            }
        }
        if counted != self.summary {
            return Err(TraceError::NotATrace {
                what: format!(
                    "decoded summary {counted:?} disagrees with footer summary {:?}",
                    self.summary
                ),
            });
        }
        Ok(())
    }
}

/// A forward-only streaming cursor over one kernel's TBs. Holds at most
/// one decoded block; earlier blocks are dropped as soon as their TBs
/// are consumed, which is what keeps streamed replay's peak RSS flat.
#[derive(Debug)]
pub struct TbStream {
    file: BufReader<File>,
    path: PathBuf,
    blocks: Vec<BlockIndex>,
    next_block: usize,
    tb_count: u64,
    yielded: u64,
    pending: VecDeque<TbTrace>,
}

impl TbStream {
    /// The next TB in grid order, or `None` past the end.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] for checksum mismatches, truncated
    /// blocks, or undecodable bytes (all offset-tagged).
    pub fn next_tb(&mut self) -> Result<Option<TbTrace>, TraceError> {
        while self.pending.is_empty() {
            let Some(blk) = self.blocks.get(self.next_block).cloned() else {
                if self.yielded != self.tb_count {
                    return Err(TraceError::NotATrace {
                        what: format!(
                            "blocks exhausted after {} of {} TBs",
                            self.yielded, self.tb_count
                        ),
                    });
                }
                return Ok(None);
            };
            self.next_block += 1;
            self.load_block(&blk)?;
        }
        self.yielded += 1;
        Ok(self.pending.pop_front())
    }

    fn load_block(&mut self, blk: &BlockIndex) -> Result<(), TraceError> {
        let len = usize::try_from(blk.len).map_err(|_| TraceError::Corrupt {
            offset: blk.offset,
            what: format!("block length {} overflows this host", blk.len),
        })?;
        let mut raw = vec![0u8; len];
        self.file
            .seek(SeekFrom::Start(blk.offset))
            .and_then(|_| self.file.read_exact(&mut raw))
            .map_err(io_err(format!(
                "read block at offset {} of {}",
                blk.offset,
                self.path.display()
            )))?;
        let computed = fnv1a(&raw);
        if computed != blk.checksum {
            return Err(TraceError::Corrupt {
                offset: blk.offset,
                what: format!(
                    "block checksum mismatch (stored {:016x}, computed {computed:016x})",
                    blk.checksum
                ),
            });
        }
        decode_block(&raw, blk, &mut self.pending)
    }
}

/// Decodes one verified block into TBs (appended to `out`).
fn decode_block(
    raw: &[u8],
    blk: &BlockIndex,
    out: &mut VecDeque<TbTrace>,
) -> Result<(), TraceError> {
    let mut head = Cursor::new(raw, blk.offset);
    let structure_len = head.varint()?;
    let structure_len =
        usize::try_from(structure_len).map_err(|_| head.corrupt("structure length overflow"))?;
    let structure_end = head
        .pos
        .checked_add(structure_len)
        .filter(|&e| e <= raw.len())
        .ok_or_else(|| head.corrupt("structure section runs past the block"))?;
    let mut structure = Cursor::new(&raw[head.pos..structure_end], blk.offset + head.pos as u64);
    let mut tail = Cursor::new(&raw[structure_end..], blk.offset + structure_end as u64);
    let tags_len = tail.varint()?;
    let tags_len = usize::try_from(tags_len).map_err(|_| tail.corrupt("tag length overflow"))?;
    let tags_start = structure_end + tail.pos;
    let tags_end = tags_start
        .checked_add(tags_len)
        .filter(|&e| e <= raw.len())
        .ok_or_else(|| tail.corrupt("tag section runs past the block"))?;
    let mut tags = Cursor::new(&raw[tags_start..tags_end], blk.offset + tags_start as u64);
    let mut operands = Cursor::new(&raw[tags_end..], blk.offset + tags_end as u64);

    let mut prev_base: u64 = 0;
    let mut decode_base = |ops: &mut Cursor<'_>| -> Result<u64, TraceError> {
        let delta = unzigzag(ops.varint()?);
        prev_base = prev_base.wrapping_add(delta as u64);
        Ok(prev_base)
    };

    for _ in 0..blk.tb_count {
        let warp_count = structure.varint()?;
        let mut warps = Vec::with_capacity(
            usize::try_from(warp_count).map_err(|_| structure.corrupt("warp count overflow"))?,
        );
        for _ in 0..warp_count {
            let op_count = structure.varint()?;
            let mut warp = WarpTrace::new();
            for _ in 0..op_count {
                let tag = tags.u8()?;
                let op = match tag {
                    TAG_COMPUTE => {
                        let cycles = operands.varint()?;
                        WarpOp::Compute {
                            cycles: u32::try_from(cycles).map_err(|_| {
                                operands.corrupt(format!("compute cycles {cycles} overflow u32"))
                            })?,
                        }
                    }
                    TAG_LOAD_STRIDED | TAG_STORE_STRIDED => {
                        let base = VirtAddr::new(decode_base(&mut operands)?);
                        let stride = unzigzag(operands.varint()?);
                        let active_lanes = operands.u8()?;
                        let acc = LaneAccesses::Strided {
                            base,
                            stride,
                            active_lanes,
                        };
                        if tag == TAG_STORE_STRIDED {
                            WarpOp::Store(acc)
                        } else {
                            WarpOp::Load(acc)
                        }
                    }
                    TAG_LOAD_GATHER | TAG_STORE_GATHER => {
                        let lane_count = operands.varint()?;
                        let lane_count = usize::try_from(lane_count)
                            .map_err(|_| operands.corrupt("gather lane count overflow"))?;
                        let mut lanes = Vec::with_capacity(lane_count);
                        for _ in 0..lane_count {
                            lanes.push(VirtAddr::new(decode_base(&mut operands)?));
                        }
                        let acc = LaneAccesses::Gather(lanes);
                        if tag == TAG_STORE_GATHER {
                            WarpOp::Store(acc)
                        } else {
                            WarpOp::Load(acc)
                        }
                    }
                    other => return Err(tags.corrupt(format!("unknown op tag {other}"))),
                };
                warp.push(op);
            }
            warps.push(warp);
        }
        out.push_back(TbTrace::from_warps(warps));
    }
    if !structure.is_empty() || !tags.is_empty() || !operands.is_empty() {
        return Err(TraceError::Corrupt {
            offset: blk.offset,
            what: "block has trailing bytes after the indexed TBs".into(),
        });
    }
    Ok(())
}

// --- source abstraction -------------------------------------------------

/// Where a simulation's trace comes from: an in-RAM generated
/// [`Workload`], or a `trace/v1` file streamed from disk. The engine's
/// `run_source` produces byte-identical reports for both.
#[derive(Debug)]
pub enum TraceSource {
    /// A fully materialized, generated workload.
    Generated(Workload),
    /// A trace file, streamed block by block.
    File(TraceReader),
}

impl TraceSource {
    /// Opens a trace file as a source.
    ///
    /// # Errors
    ///
    /// Propagates [`TraceReader::open`] errors.
    pub fn open(path: &Path) -> Result<Self, TraceError> {
        Ok(TraceSource::File(TraceReader::open(path)?))
    }

    /// The workload name.
    pub fn name(&self) -> &str {
        match self {
            TraceSource::Generated(w) => w.name(),
            TraceSource::File(r) => r.workload_name(),
        }
    }

    /// The trace summary (computed lazily for generated workloads, read
    /// from the footer for files).
    pub fn summary(&self) -> TraceSummary {
        match self {
            TraceSource::Generated(w) => w.summary(),
            TraceSource::File(r) => r.summary(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::registry;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("otlb-format-{tag}-{}.trace", std::process::id()))
    }

    fn gemm_test_workload() -> Workload {
        registry()
            .into_iter()
            .find(|s| s.name == "gemm")
            .unwrap()
            .generate(Scale::Test, 42)
    }

    #[test]
    fn varints_round_trip() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &values {
            put_varint(&mut buf, v);
        }
        let mut c = Cursor::new(&buf, 0);
        for &v in &values {
            assert_eq!(c.varint().unwrap(), v);
        }
        assert!(c.is_empty());
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 2, -2, i64::MAX, i64::MIN, -4096, 4096] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn workload_round_trips_through_the_file() {
        let wl = gemm_test_workload();
        let path = temp_path("roundtrip");
        let summary = write_workload(&path, &wl, "gemm", Some(Scale::Test), 42).unwrap();
        assert_eq!(summary, wl.summary());

        let reader = TraceReader::open(&path).unwrap();
        assert_eq!(reader.workload_name(), "gemm");
        assert_eq!(reader.bench(), "gemm");
        assert_eq!(reader.scale(), Some(Scale::Test));
        assert_eq!(reader.seed(), 42);
        assert_eq!(reader.summary(), wl.summary());
        reader.verify().unwrap();

        let back = reader.read_workload().unwrap();
        assert_eq!(back.name(), wl.name());
        assert_eq!(back.kernels().len(), wl.kernels().len());
        for (a, b) in back.kernels().iter().zip(wl.kernels()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.threads_per_tb, b.threads_per_tb);
            assert_eq!(a.max_concurrent_tbs_per_sm, b.max_concurrent_tbs_per_sm);
            assert_eq!(a.tbs, b.tbs);
        }
        // The reconstructed space replays the same allocations.
        let orig: Vec<_> = wl.space().buffers().map(|b| (b.name().to_owned(), b.base())).collect();
        let rebuilt: Vec<_> =
            back.space().buffers().map(|b| (b.name().to_owned(), b.base())).collect();
        assert_eq!(orig, rebuilt);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn streaming_matches_materialized_order() {
        let wl = gemm_test_workload();
        let path = temp_path("stream");
        write_workload(&path, &wl, "gemm", Some(Scale::Test), 42).unwrap();
        let reader = TraceReader::open(&path).unwrap();
        for (k, kernel) in wl.kernels().iter().enumerate() {
            let mut stream = reader.stream_kernel(k).unwrap();
            for (t, tb) in kernel.tbs.iter().enumerate() {
                let got = stream.next_tb().unwrap().unwrap_or_else(|| {
                    panic!("stream ended at TB {t} of kernel {k}");
                });
                assert_eq!(&got, tb, "kernel {k} TB {t}");
            }
            assert!(stream.next_tb().unwrap().is_none());
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wrong_version_is_rejected_not_panicked() {
        let wl = gemm_test_workload();
        let path = temp_path("version");
        write_workload(&path, &wl, "gemm", Some(Scale::Test), 42).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8] = 99; // version little-endian low byte
        std::fs::write(&path, &bytes).unwrap();
        match TraceReader::open(&path) {
            Err(TraceError::Version { found: 99, expected: 1 }) => {}
            other => panic!("expected a version error, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_header_is_rejected_not_panicked() {
        let path = temp_path("header");
        std::fs::write(&path, b"this is not a trace file, just plain prose padding").unwrap();
        match TraceReader::open(&path) {
            Err(TraceError::NotATrace { what }) => {
                assert!(what.contains("magic"), "{what}");
            }
            other => panic!("expected a magic error, got {other:?}"),
        }
        // Too short to even hold the header and tail.
        std::fs::write(&path, b"tiny").unwrap();
        match TraceReader::open(&path) {
            Err(TraceError::NotATrace { what }) => {
                assert!(what.contains("bytes"), "{what}");
            }
            other => panic!("expected a size error, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_file_is_rejected_not_panicked() {
        let wl = gemm_test_workload();
        let path = temp_path("trunc");
        write_workload(&path, &wl, "gemm", Some(Scale::Test), 42).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(TraceReader::open(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn flipped_block_byte_fails_the_checksum() {
        let wl = gemm_test_workload();
        let path = temp_path("blockflip");
        write_workload(&path, &wl, "gemm", Some(Scale::Test), 42).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[20] ^= 0xff; // inside the first block
        std::fs::write(&path, &bytes).unwrap();
        let reader = TraceReader::open(&path).unwrap(); // footer is intact
        let err = reader
            .stream_kernel(0)
            .unwrap()
            .next_tb()
            .expect_err("flipped block byte must fail the checksum");
        let msg = err.to_string();
        assert!(msg.contains("checksum"), "{msg}");
        assert!(msg.contains("offset"), "errors are offset-tagged: {msg}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn summary_is_accumulated_at_write_time() {
        let wl = gemm_test_workload();
        let path = temp_path("summary");
        write_workload(&path, &wl, "gemm", Some(Scale::Test), 42).unwrap();
        let reader = TraceReader::open(&path).unwrap();
        // The footer summary equals the O(ops) pass, without decoding.
        assert_eq!(reader.summary(), wl.summary());
        assert_eq!(reader.summary().total_ops() as usize, wl.total_warp_ops());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_hash_is_deterministic() {
        let wl = gemm_test_workload();
        let a = temp_path("hash-a");
        let b = temp_path("hash-b");
        write_workload(&a, &wl, "gemm", Some(Scale::Test), 42).unwrap();
        write_workload(&b, &wl, "gemm", Some(Scale::Test), 42).unwrap();
        assert_eq!(file_hash(&a).unwrap(), file_hash(&b).unwrap());
        std::fs::remove_file(&a).unwrap();
        std::fs::remove_file(&b).unwrap();
    }

    #[test]
    fn writer_misuse_is_an_error_not_a_panic() {
        let wl = gemm_test_workload();
        let path = temp_path("misuse");
        let mut w =
            TraceWriter::create(&path, "x", "x", None, 0, wl.space()).unwrap();
        assert!(w.write_tb(&TbTrace::with_warps(1)).is_err()); // no open kernel
        w.begin_kernel("k", 32, 16).unwrap();
        assert!(w.begin_kernel("k2", 32, 16).is_err()); // nested
        assert!(w.finish().is_err()); // still open
        std::fs::remove_file(&path).unwrap();
    }
}
