//! Benchmark trace generators (Table II).
//!
//! One module per access-pattern family:
//!
//! * [`gemm`] — tiled dense matrix multiply (PolyBench `gemm`).
//! * [`linalg`] — the matrix-vector family `atax`, `bicg`, `mvt`
//!   (PolyBench): row-striding and column-contiguous sweeps with heavily
//!   reused vectors.
//! * [`conv3d`] — 3D stencil (PolyBench `3dconv`).
//! * [`nw`] — Needleman-Wunsch wavefront DP (Rodinia `nw`).
//! * [`graph`] — CSR traversal kernels over a power-law graph: `bfs`
//!   (Rodinia) and `color`, `mis`, `pagerank` (Pannotia).
//! * [`ml`] — *extension* workloads beyond Table II: embedding-table
//!   lookups and an MLP forward pass (the ML/DL application class the
//!   paper's future work names).
//!
//! All generators are deterministic in `(Scale, seed)`.

pub mod conv3d;
pub mod gemm;
pub mod graph;
pub mod linalg;
pub mod ml;
pub mod nw;

use vmem::{Buffer, VirtAddr};

/// Byte width of the f32/u32 elements used by every benchmark.
pub(crate) const ELEM: u32 = 4;

/// The virtual address of element `idx` in `buf` (4-byte elements).
pub(crate) fn elem_addr(buf: &Buffer, idx: u64) -> VirtAddr {
    buf.addr_of(idx * ELEM as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmem::{AddressSpace, PageSize};

    #[test]
    fn elem_addr_scales_by_element_size() {
        let mut s = AddressSpace::new(PageSize::Small);
        let b = s.allocate("v", 64).unwrap();
        assert_eq!(elem_addr(&b, 0), b.base());
        assert_eq!(elem_addr(&b, 3).raw(), b.base().raw() + 12);
    }
}
