//! Tiled dense matrix multiply (PolyBench `gemm`): `C = A * B`.
//!
//! Each 16×16-thread TB computes a 16×16 tile of `C`, looping over 16-wide
//! `k` tiles of `A` and `B`. Thread blocks along the same tile row share
//! the pages of `A`'s rows, and blocks along the same tile column share
//! `B`'s pages — the intrinsic inter-TB translation reuse the paper's
//! Observation 2 reports for `gemm`.

use crate::gen::{elem_addr, ELEM};
use crate::scale::Scale;
use crate::trace::{KernelTrace, LaneAccesses, TbTrace, WarpOp};
use crate::Workload;
use vmem::{AddressSpace, PageSize};

/// Tile edge (threads per TB = TILE * TILE = 256; 8 warps).
const TILE: usize = 16;

/// Generates the `gemm` workload.
///
/// # Panics
///
/// Panics if the scale's matrix dimension is not a multiple of the 16-wide
/// tile (all presets are).
pub fn generate(scale: Scale, _seed: u64, page_size: PageSize) -> Workload {
    let n = scale.gemm_dim();
    assert!(n.is_multiple_of(TILE), "matrix dim {n} must be a multiple of {TILE}");
    let tiles = n / TILE;

    let mut space = AddressSpace::new(page_size);
    let bytes = (n * n) as u64 * ELEM as u64;
    let a = space.allocate("gemm_a", bytes).expect("fresh space");
    let b = space.allocate("gemm_b", bytes).expect("fresh space");
    let c = space.allocate("gemm_c", bytes).expect("fresh space");

    let mut tbs = Vec::with_capacity(tiles * tiles);
    for ti in 0..tiles {
        for tj in 0..tiles {
            let mut tb = TbTrace::with_warps(TILE * TILE / 32);
            for w in 0..(TILE * TILE / 32) {
                // Warp `w` owns rows `2w` and `2w + 1` of the tile
                // (16 lanes per row).
                let warp = tb.warp_mut(w);
                let r0 = ti * TILE + 2 * w;
                let r1 = r0 + 1;
                for kk in 0..tiles {
                    let k0 = kk * TILE;
                    // A tile rows for this warp: A[r0][k0..k0+16],
                    // A[r1][k0..k0+16].
                    for r in [r0, r1] {
                        warp.push(WarpOp::Load(LaneAccesses::contiguous(
                            elem_addr(&a, (r * n + k0) as u64),
                            ELEM,
                            TILE as u8,
                        )));
                    }
                    // B tile rows this warp loads into shared memory:
                    // B[k0 + 2w][tj*16..], B[k0 + 2w + 1][tj*16..].
                    for kr in [k0 + 2 * w, k0 + 2 * w + 1] {
                        warp.push(WarpOp::Load(LaneAccesses::contiguous(
                            elem_addr(&b, (kr * n + tj * TILE) as u64),
                            ELEM,
                            TILE as u8,
                        )));
                    }
                    // 16 multiply-accumulates per lane on the tile.
                    warp.push(WarpOp::Compute { cycles: 16 });
                }
                // Store the finished C rows.
                for r in [r0, r1] {
                    warp.push(WarpOp::Store(LaneAccesses::contiguous(
                        elem_addr(&c, (r * n + tj * TILE) as u64),
                        ELEM,
                        TILE as u8,
                    )));
                }
            }
            tbs.push(tb);
        }
    }

    let kernel = KernelTrace {
        name: "gemm_tile".into(),
        tbs,
        // Register pressure bounds occupancy: ~16 registers/thread x 256
        // threads against Table III's 64 KB register file leaves four
        // resident TBs per SM.
        max_concurrent_tbs_per_sm: 4,
        threads_per_tb: (TILE * TILE) as u32,
    };
    Workload::new("gemm", vec![kernel], space)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_matches_tiling() {
        let wl = generate(Scale::Test, 0, PageSize::Small);
        let n = Scale::Test.gemm_dim();
        let tiles = n / TILE;
        assert_eq!(wl.kernels().len(), 1);
        assert_eq!(wl.kernels()[0].tbs.len(), tiles * tiles);
        assert_eq!(wl.kernels()[0].threads_per_tb, 256);
    }

    #[test]
    fn all_addresses_fall_in_buffers() {
        let wl = generate(Scale::Test, 0, PageSize::Small);
        for tb in &wl.kernels()[0].tbs {
            for va in tb.all_addresses() {
                assert!(wl.space().is_covered(va), "address {va} outside buffers");
            }
        }
    }

    #[test]
    fn row_sharing_across_tile_row() {
        // Two TBs in the same tile row touch common A pages.
        let wl = generate(Scale::Test, 0, PageSize::Small);
        let n = Scale::Test.gemm_dim();
        let tiles = n / TILE;
        let pages = |tb: &TbTrace| -> std::collections::HashSet<u64> {
            tb.all_addresses().map(|a| a.raw() >> 12).collect()
        };
        let tb0 = &wl.kernels()[0].tbs[0]; // (ti=0, tj=0)
        let tb1 = &wl.kernels()[0].tbs[1]; // (ti=0, tj=1)
        let tb_other_row = &wl.kernels()[0].tbs[tiles * (tiles / 2)];
        let common_same_row = pages(tb0).intersection(&pages(tb1)).count();
        let common_diff_row = pages(tb0).intersection(&pages(tb_other_row)).count();
        assert!(
            common_same_row > common_diff_row,
            "same-tile-row TBs should share more pages ({common_same_row} vs {common_diff_row})"
        );
    }

    #[test]
    fn deterministic() {
        let a = generate(Scale::Test, 1, PageSize::Small);
        let b = generate(Scale::Test, 2, PageSize::Small);
        assert_eq!(a.total_warp_ops(), b.total_warp_ops());
        assert_eq!(a.kernels()[0].tbs, b.kernels()[0].tbs);
    }
}
