//! CSR graph-traversal benchmarks: `bfs` (Rodinia) and `color`, `mis`,
//! `pagerank` (Pannotia).
//!
//! All four share the same skeleton — one thread per node scans its CSR
//! adjacency list and gathers a per-neighbor value — and differ in which
//! arrays they read/write and which nodes are active each iteration. The
//! power-law degree distribution of the synthetic citation graph gives
//! them exactly the properties the paper observes: highly reused hub
//! pages, irregular gathers that defeat stride-based TLB techniques, and
//! strong inter-TB imbalance in translation counts.

use crate::gen::{elem_addr, ELEM};
use crate::graph::{CsrGraph, RmatParams};
use crate::scale::Scale;
use crate::trace::{KernelTrace, LaneAccesses, TbTrace, WarpOp, LANES_PER_WARP};
use crate::Workload;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vmem::{AddressSpace, Buffer, PageSize, VirtAddr};

/// Threads per TB for the graph kernels (2 warps).
const TB_THREADS: usize = 64;

/// What one traversal kernel reads and writes.
struct TraversalSpec<'a> {
    /// Kernel name.
    name: String,
    /// Per-node array read contiguously at the start (flags, ranks, …).
    node_read: Option<&'a Buffer>,
    /// Per-neighbor array gathered through `col_idx` values.
    gather_read: &'a Buffer,
    /// Whether gathered neighbors are also written (e.g. BFS relaxation).
    gather_write: bool,
    /// Per-node array written contiguously at the end.
    node_write: Option<&'a Buffer>,
    /// Which nodes are active this iteration.
    active: &'a [bool],
}

/// Builds one level/iteration kernel over the CSR graph.
fn traversal_kernel(
    graph: &CsrGraph,
    row_ptr_buf: &Buffer,
    col_idx_buf: &Buffer,
    node_stride: u64,
    spec: TraversalSpec<'_>,
) -> KernelTrace {
    let n = graph.num_nodes();
    let warps_per_tb = TB_THREADS / LANES_PER_WARP;
    let num_tbs = n.div_ceil(TB_THREADS);
    let mut tbs = Vec::with_capacity(num_tbs);
    for tb_idx in 0..num_tbs {
        let mut tb = TbTrace::with_warps(warps_per_tb);
        for w in 0..warps_per_tb {
            let n0 = tb_idx * TB_THREADS + w * LANES_PER_WARP;
            if n0 >= n {
                break;
            }
            let lanes = LANES_PER_WARP.min(n - n0) as u8;
            let warp = tb.warp_mut(w);
            // Read the per-node status array for the warp's nodes.
            if let Some(buf) = spec.node_read {
                warp.push(WarpOp::Load(LaneAccesses::Strided {
                    base: buf.addr_of(n0 as u64 * node_stride),
                    stride: node_stride as i64,
                    active_lanes: lanes,
                }));
            }
            // Row pointers for the warp's nodes (plus the fencepost).
            warp.push(WarpOp::Load(LaneAccesses::contiguous(
                elem_addr(row_ptr_buf, n0 as u64),
                ELEM,
                lanes,
            )));
            // Gather the adjacency lists of the *active* nodes.
            let mut edge_addrs: Vec<VirtAddr> = Vec::new();
            let mut neigh_addrs: Vec<VirtAddr> = Vec::new();
            let mut edges = 0usize;
            for node in n0..(n0 + lanes as usize) {
                if !spec.active[node] {
                    continue;
                }
                let start = graph.row_ptr()[node] as u64;
                for (e, &nb) in graph.neighbors(node as u32).iter().enumerate() {
                    edge_addrs.push(elem_addr(col_idx_buf, start + e as u64));
                    neigh_addrs.push(spec.gather_read.addr_of(nb as u64 * node_stride));
                    edges += 1;
                }
            }
            for acc in LaneAccesses::gather_chunks(&edge_addrs) {
                warp.push(WarpOp::Load(acc));
            }
            for acc in LaneAccesses::gather_chunks(&neigh_addrs) {
                warp.push(WarpOp::Load(acc));
            }
            if spec.gather_write {
                for acc in LaneAccesses::gather_chunks(&neigh_addrs) {
                    warp.push(WarpOp::Store(acc));
                }
            }
            if edges > 0 {
                warp.push(WarpOp::Compute {
                    cycles: (edges as u32).max(4),
                });
            }
            if let Some(buf) = spec.node_write {
                warp.push(WarpOp::Store(LaneAccesses::Strided {
                    base: buf.addr_of(n0 as u64 * node_stride),
                    stride: node_stride as i64,
                    active_lanes: lanes,
                }));
            }
        }
        tbs.push(tb);
    }
    KernelTrace {
        name: spec.name,
        tbs,
        max_concurrent_tbs_per_sm: 16,
        threads_per_tb: TB_THREADS as u32,
    }
}

/// Allocates the shared CSR buffers and builds the graph.
fn graph_setup(
    prefix: &str,
    scale: Scale,
    seed: u64,
    page_size: PageSize,
) -> (CsrGraph, AddressSpace, Buffer, Buffer) {
    let n = scale.graph_nodes();
    let e = n * scale.graph_avg_degree();
    // Citation-graph-like structure: clustered destinations with R-MAT
    // hubs (see CsrGraph::clustered_rmat and DESIGN.md).
    let window = (n / 128).max(64);
    let graph = CsrGraph::clustered_rmat(n, e, RmatParams::default(), 0.6, window, seed);
    let mut space = AddressSpace::new(page_size);
    let row_ptr = space
        .allocate(&format!("{prefix}_row_ptr"), (n as u64 + 1) * ELEM as u64)
        .expect("fresh space");
    let col_idx = space
        .allocate(&format!("{prefix}_col_idx"), e as u64 * ELEM as u64)
        .expect("fresh space");
    (graph, space, row_ptr, col_idx)
}

/// Generates `bfs`: level-synchronous breadth-first search from node 0,
/// one kernel per frontier level (real frontiers computed on the graph).
pub fn bfs(scale: Scale, seed: u64, page_size: PageSize) -> Workload {
    let (graph, mut space, row_ptr, col_idx) = graph_setup("bfs", scale, seed, page_size);
    let n = graph.num_nodes();
    let stride = scale.node_stride();
    let level_buf = space
        .allocate("bfs_level", n as u64 * stride)
        .expect("fresh space");

    // Real BFS to obtain the per-level frontiers.
    let mut level = vec![u32::MAX; n];
    level[0] = 0;
    let mut frontier = vec![0u32];
    let mut kernels = Vec::new();
    let max_levels = 5;
    for l in 0..max_levels {
        if frontier.is_empty() {
            break;
        }
        let mut active = vec![false; n];
        for &f in &frontier {
            active[f as usize] = true;
        }
        kernels.push(traversal_kernel(
            &graph,
            &row_ptr,
            &col_idx,
            stride,
            TraversalSpec {
                name: format!("bfs_level_{l}"),
                node_read: Some(&level_buf),
                gather_read: &level_buf,
                gather_write: true,
                node_write: None,
                active: &active,
            },
        ));
        let mut next = Vec::new();
        for &f in &frontier {
            for &nb in graph.neighbors(f) {
                if level[nb as usize] == u32::MAX {
                    level[nb as usize] = l as u32 + 1;
                    next.push(nb);
                }
            }
        }
        frontier = next;
    }
    Workload::new("bfs", kernels, space)
}

/// Generates `pagerank`: every node gathers its neighbors' ranks each
/// iteration (dense traversal, double-buffered rank arrays).
pub fn pagerank(scale: Scale, seed: u64, page_size: PageSize) -> Workload {
    let (graph, mut space, row_ptr, col_idx) = graph_setup("pagerank", scale, seed, page_size);
    let n = graph.num_nodes();
    let stride = scale.node_stride();
    let rank_a = space
        .allocate("pagerank_rank_a", n as u64 * stride)
        .expect("fresh space");
    let rank_b = space
        .allocate("pagerank_rank_b", n as u64 * stride)
        .expect("fresh space");
    let active = vec![true; n];
    let mut kernels = Vec::new();
    for it in 0..scale.graph_iterations() {
        let (src, dst) = if it % 2 == 0 {
            (&rank_a, &rank_b)
        } else {
            (&rank_b, &rank_a)
        };
        kernels.push(traversal_kernel(
            &graph,
            &row_ptr,
            &col_idx,
            stride,
            TraversalSpec {
                name: format!("pagerank_iter_{it}"),
                node_read: Some(src),
                gather_read: src,
                gather_write: false,
                node_write: Some(dst),
                active: &active,
            },
        ));
    }
    Workload::new("pagerank", kernels, space)
}

/// Generates `color` (graph coloring): each iteration, the still-uncolored
/// nodes gather their neighbors' colors; the active set shrinks.
pub fn color(scale: Scale, seed: u64, page_size: PageSize) -> Workload {
    let (graph, mut space, row_ptr, col_idx) = graph_setup("color", scale, seed, page_size);
    let n = graph.num_nodes();
    let stride = scale.node_stride();
    let color_buf = space
        .allocate("color_colors", n as u64 * stride)
        .expect("fresh space");
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xc01);
    let mut active = vec![true; n];
    let mut kernels = Vec::new();
    for it in 0..=scale.graph_iterations() {
        kernels.push(traversal_kernel(
            &graph,
            &row_ptr,
            &col_idx,
            stride,
            TraversalSpec {
                name: format!("color_iter_{it}"),
                node_read: Some(&color_buf),
                gather_read: &color_buf,
                gather_write: false,
                node_write: Some(&color_buf),
                active: &active,
            },
        ));
        // Roughly 60% of the remaining nodes get colored each round
        // (seeded, deterministic).
        for a in active.iter_mut() {
            if *a && rng.gen::<f64>() < 0.6 {
                *a = false;
            }
        }
    }
    Workload::new("color", kernels, space)
}

/// Generates `mis` (maximal independent set): nodes compare random
/// priorities with their neighbors; winners and their neighbors drop out.
pub fn mis(scale: Scale, seed: u64, page_size: PageSize) -> Workload {
    let (graph, mut space, row_ptr, col_idx) = graph_setup("mis", scale, seed, page_size);
    let n = graph.num_nodes();
    let stride = scale.node_stride();
    let priority = space
        .allocate("mis_priority", n as u64 * stride)
        .expect("fresh space");
    let state = space
        .allocate("mis_state", n as u64 * stride)
        .expect("fresh space");
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x315);
    let prios: Vec<u32> = (0..n).map(|_| rng.gen()).collect();
    let mut in_set = vec![false; n];
    let mut removed = vec![false; n];
    let mut kernels = Vec::new();
    for it in 0..=scale.graph_iterations() {
        let active: Vec<bool> = (0..n).map(|i| !in_set[i] && !removed[i]).collect();
        if !active.iter().any(|&a| a) {
            break;
        }
        kernels.push(traversal_kernel(
            &graph,
            &row_ptr,
            &col_idx,
            stride,
            TraversalSpec {
                name: format!("mis_iter_{it}"),
                node_read: Some(&priority),
                gather_read: &priority,
                gather_write: false,
                node_write: Some(&state),
                active: &active,
            },
        ));
        // Luby step: a node joins the set if it beats all live neighbors.
        let winners: Vec<usize> = (0..n)
            .filter(|&i| {
                active[i]
                    && graph.neighbors(i as u32).iter().all(|&nb| {
                        let j = nb as usize;
                        in_set[j]
                            || removed[j]
                            || (prios[i], i) > (prios[j], j)
                    })
            })
            .collect();
        for i in winners {
            in_set[i] = true;
            for &nb in graph.neighbors(i as u32) {
                removed[nb as usize] = true;
            }
        }
    }
    Workload::new("mis", kernels, space)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bfs_levels_grow_then_shrink() {
        let wl = bfs(Scale::Test, 42, PageSize::Small);
        assert!(wl.kernels().len() >= 2, "BFS should have multiple levels");
        // Level 0 has exactly one active node, so its trace is tiny
        // compared to a mid-level.
        let ops: Vec<usize> = wl.kernels().iter().map(|k| k.total_ops()).collect();
        assert!(ops[1] > ops[0], "frontier grows after the root level: {ops:?}");
    }

    #[test]
    fn pagerank_is_dense_every_iteration() {
        let wl = pagerank(Scale::Test, 42, PageSize::Small);
        assert_eq!(wl.kernels().len(), Scale::Test.graph_iterations());
        let n = Scale::Test.graph_nodes();
        let e = n * Scale::Test.graph_avg_degree();
        // Each iteration gathers all edges twice (col_idx + ranks): at
        // least 2*E/32 gather ops.
        let k = &wl.kernels()[0];
        assert!(k.total_ops() >= 2 * e / 32);
    }

    #[test]
    fn color_active_set_shrinks() {
        let wl = color(Scale::Test, 42, PageSize::Small);
        let ops: Vec<usize> = wl.kernels().iter().map(|k| k.total_ops()).collect();
        assert!(ops.len() >= 2);
        assert!(
            ops.last().unwrap() < ops.first().unwrap(),
            "colored nodes drop out: {ops:?}"
        );
    }

    #[test]
    fn mis_terminates_and_generates() {
        let wl = mis(Scale::Test, 42, PageSize::Small);
        assert!(!wl.kernels().is_empty());
        assert!(wl.total_warp_ops() > 0);
    }

    #[test]
    fn all_graph_addresses_valid() {
        for wl in [
            bfs(Scale::Test, 1, PageSize::Small),
            pagerank(Scale::Test, 1, PageSize::Small),
            color(Scale::Test, 1, PageSize::Small),
            mis(Scale::Test, 1, PageSize::Small),
        ] {
            for k in wl.kernels() {
                for tb in &k.tbs {
                    for va in tb.all_addresses() {
                        assert!(wl.space().is_covered(va), "{}: {va}", wl.name());
                    }
                }
            }
        }
    }

    #[test]
    fn hub_pages_reused_across_warps() {
        // In a power-law graph, some gather page must appear in many TBs.
        let wl = pagerank(Scale::Test, 42, PageSize::Small);
        let rank = wl.space().buffer("pagerank_rank_a").unwrap();
        let mut page_tb_counts: std::collections::HashMap<u64, usize> = Default::default();
        for tb in &wl.kernels()[0].tbs {
            let pages: std::collections::HashSet<u64> = tb
                .all_addresses()
                .filter(|a| rank.contains(*a))
                .map(|a| a.raw() >> 12)
                .collect();
            for p in pages {
                *page_tb_counts.entry(p).or_default() += 1;
            }
        }
        let max_tbs = page_tb_counts.values().max().copied().unwrap_or(0);
        assert!(
            max_tbs > wl.kernels()[0].tbs.len() / 2,
            "hub pages should be touched by most TBs ({max_tbs})"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = bfs(Scale::Test, 7, PageSize::Small);
        let b = bfs(Scale::Test, 7, PageSize::Small);
        assert_eq!(a.total_warp_ops(), b.total_warp_ops());
        let c = bfs(Scale::Test, 8, PageSize::Small);
        assert_ne!(a.total_warp_ops(), c.total_warp_ops());
    }
}
