//! Needleman-Wunsch (Rodinia `nw`): wavefront dynamic programming over a
//! score matrix.
//!
//! The alignment matrix is processed in 16×16 blocks along anti-diagonals:
//! one kernel launch per diagonal, one TB per block on that diagonal (the
//! upper-left triangle is swept first, then the lower-right). Each TB
//! reads its block's top halo row, its left halo column (one page per row
//! — the score matrix row pitch exceeds a 4 KiB page at evaluation scale),
//! and its reference-matrix tile, then runs the serial in-block diagonal
//! recurrence (modeled as heavy compute — the paper notes `nw` is
//! compute-bound, which is why its L1 TLB hit-rate gain does not translate
//! into speedup).

use crate::gen::{elem_addr, ELEM};
use crate::scale::Scale;
use crate::trace::{KernelTrace, LaneAccesses, TbTrace, WarpOp, LANES_PER_WARP};
use crate::Workload;
use vmem::{AddressSpace, Buffer, PageSize};

/// DP block edge (Rodinia's BLOCK_SIZE).
const BLOCK: usize = 16;

/// Emits the trace of one 16×16 DP block at block coordinates (bi, bj).
fn block_tb(score: &Buffer, reference: &Buffer, n: usize, bi: usize, bj: usize) -> TbTrace {
    let pitch = n + 1; // score matrix is (n+1) x (n+1)
    let mut tb = TbTrace::with_warps(1);
    let warp = tb.warp_mut(0);
    let r0 = bi * BLOCK; // halo row index
    let c0 = bj * BLOCK;

    // Top halo row: score[r0][c0 .. c0+17] — contiguous.
    warp.push(WarpOp::Load(LaneAccesses::contiguous(
        elem_addr(score, (r0 * pitch + c0) as u64),
        ELEM,
        (BLOCK + 1) as u8,
    )));
    // Left halo column: score[r0+1 .. r0+17][c0] — one page per row at
    // evaluation scale (row pitch > 4 KiB).
    warp.push(WarpOp::Load(LaneAccesses::Strided {
        base: elem_addr(score, ((r0 + 1) * pitch + c0) as u64),
        stride: (pitch * ELEM as usize) as i64,
        active_lanes: BLOCK as u8,
    }));
    // Reference tile rows.
    for r in 0..BLOCK {
        warp.push(WarpOp::Load(LaneAccesses::contiguous(
            elem_addr(reference, ((r0 + r) * n + c0) as u64),
            ELEM,
            BLOCK as u8,
        )));
    }
    // The 2*BLOCK-1 in-block anti-diagonals execute serially.
    warp.push(WarpOp::Compute {
        cycles: (2 * BLOCK as u32 - 1) * 8,
    });
    // Write back the block, one row per store.
    for r in 1..=BLOCK {
        warp.push(WarpOp::Store(LaneAccesses::contiguous(
            elem_addr(score, ((r0 + r) * pitch + c0 + 1) as u64),
            ELEM,
            BLOCK as u8,
        )));
    }
    tb
}

/// Generates the `nw` workload over an `n × n` alignment problem.
///
/// # Panics
///
/// Panics if the scale's matrix dimension is not a multiple of the DP
/// block size (all presets are).
pub fn generate(scale: Scale, _seed: u64, page_size: PageSize) -> Workload {
    let n = scale.matrix_dim();
    assert!(n.is_multiple_of(BLOCK), "dim {n} must be a multiple of {BLOCK}");
    let nb = n / BLOCK;

    let mut space = AddressSpace::new(page_size);
    let score = space
        .allocate("nw_score", ((n + 1) * (n + 1)) as u64 * ELEM as u64)
        .expect("fresh space");
    let reference = space
        .allocate("nw_ref", (n * n) as u64 * ELEM as u64)
        .expect("fresh space");

    let mut kernels = Vec::with_capacity(2 * nb - 1);
    // Upper-left triangle: diagonals with 1..=nb blocks.
    for d in 1..=nb {
        let tbs: Vec<TbTrace> = (0..d)
            .map(|t| block_tb(&score, &reference, n, t, d - 1 - t))
            .collect();
        kernels.push(KernelTrace {
            name: format!("nw_diag_up_{d}"),
            tbs,
            max_concurrent_tbs_per_sm: 16,
            threads_per_tb: LANES_PER_WARP as u32,
        });
    }
    // Lower-right triangle: diagonals with nb-1..=1 blocks.
    for d in (1..nb).rev() {
        let tbs: Vec<TbTrace> = (0..d)
            .map(|t| block_tb(&score, &reference, n, nb - d + t, nb - 1 - t))
            .collect();
        kernels.push(KernelTrace {
            name: format!("nw_diag_down_{d}"),
            tbs,
            max_concurrent_tbs_per_sm: 16,
            threads_per_tb: LANES_PER_WARP as u32,
        });
    }
    Workload::new("nw", kernels, space)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_kernel_structure() {
        let wl = generate(Scale::Test, 0, PageSize::Small);
        let nb = Scale::Test.matrix_dim() / BLOCK;
        assert_eq!(wl.kernels().len(), 2 * nb - 1);
        // Diagonal sizes: 1, 2, ..., nb, nb-1, ..., 1.
        let sizes: Vec<usize> = wl.kernels().iter().map(|k| k.tbs.len()).collect();
        let mut expected: Vec<usize> = (1..=nb).collect();
        expected.extend((1..nb).rev());
        assert_eq!(sizes, expected);
        // Total blocks = nb^2.
        assert_eq!(sizes.iter().sum::<usize>(), nb * nb);
    }

    #[test]
    fn addresses_valid() {
        let wl = generate(Scale::Test, 0, PageSize::Small);
        for k in wl.kernels() {
            for tb in &k.tbs {
                for va in tb.all_addresses() {
                    assert!(wl.space().is_covered(va));
                }
            }
        }
    }

    #[test]
    fn blocks_are_compute_heavy() {
        let wl = generate(Scale::Test, 0, PageSize::Small);
        let tb = &wl.kernels()[0].tbs[0];
        let compute: u32 = tb.warps()[0]
            .ops()
            .iter()
            .map(|o| match o {
                WarpOp::Compute { cycles } => *cycles,
                _ => 0,
            })
            .sum();
        assert!(compute >= 200, "nw must be compute-bound, got {compute}");
    }

    #[test]
    fn wavefront_neighbors_share_halo_pages() {
        // A block's store region overlaps the next diagonal's halo reads.
        let wl = generate(Scale::Test, 0, PageSize::Small);
        let k1 = &wl.kernels()[0]; // diagonal 1: block (0,0)
        let k2 = &wl.kernels()[1]; // diagonal 2: blocks (0,1), (1,0)
        let pages = |tb: &TbTrace| -> std::collections::HashSet<u64> {
            tb.all_addresses().map(|a| a.raw() >> 12).collect()
        };
        let p1 = pages(&k1.tbs[0]);
        assert!(k2.tbs.iter().any(|tb| !pages(tb).is_disjoint(&p1)));
    }
}
