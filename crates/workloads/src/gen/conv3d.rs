//! 3D convolution (PolyBench `3dconv`): a 3×3×3 stencil over a volume.
//!
//! Threads tile the `(i, j)` face — lanes along the contiguous `j`
//! dimension, warps along `i` — and every thread walks the `k` dimension.
//! Per `k` step a warp loads the three `i`-adjacent rows of the incoming
//! plane; adjacent warps (and, at tile borders, adjacent TBs) re-read the
//! same rows, producing the moderate intra-TB translation reuse the paper
//! observes for `3dconv`.

use crate::gen::{elem_addr, ELEM};
use crate::scale::Scale;
use crate::trace::{KernelTrace, LaneAccesses, TbTrace, WarpOp, LANES_PER_WARP};
use crate::Workload;
use vmem::{AddressSpace, PageSize};

/// Warps per TB (TB covers 2 `i`-rows × 32 `j`-lanes = 64 threads, so the
/// stencil halo rows are shared *within* the TB — the intra-TB reuse the
/// paper observes for `3dconv`).
const WARPS_PER_TB: usize = 2;

/// Generates the `3dconv` workload over an `n³` volume.
pub fn generate(scale: Scale, _seed: u64, page_size: PageSize) -> Workload {
    let n = scale.volume_dim();
    let mut space = AddressSpace::new(page_size);
    let bytes = (n * n * n) as u64 * ELEM as u64;
    let input = space.allocate("conv3d_in", bytes).expect("fresh space");
    let output = space.allocate("conv3d_out", bytes).expect("fresh space");

    // Linear index of voxel (k, i, j) with j contiguous.
    let vox = |k: usize, i: usize, j: usize| -> u64 { ((k * n + i) * n + j) as u64 };

    let i_tiles = n.div_ceil(WARPS_PER_TB);
    let j_tiles = n.div_ceil(LANES_PER_WARP);
    let mut tbs = Vec::with_capacity(i_tiles * j_tiles);
    for ti in 0..i_tiles {
        for tj in 0..j_tiles {
            let mut tb = TbTrace::with_warps(WARPS_PER_TB);
            for w in 0..WARPS_PER_TB {
                let i = ti * WARPS_PER_TB + w;
                if i >= n {
                    break;
                }
                let j0 = tj * LANES_PER_WARP;
                let lanes = LANES_PER_WARP.min(n - j0) as u8;
                let warp = tb.warp_mut(w);
                for k in 1..n - 1 {
                    // Incoming plane k+1: the three i-adjacent rows the
                    // stencil needs next (planes k-1 and k were loaded on
                    // previous iterations and are re-read from cache).
                    for di in [-1i64, 0, 1] {
                        let ii = i as i64 + di;
                        if ii < 0 || ii >= n as i64 {
                            continue;
                        }
                        warp.push(WarpOp::Load(LaneAccesses::contiguous(
                            elem_addr(&input, vox(k + 1, ii as usize, j0)),
                            ELEM,
                            lanes,
                        )));
                    }
                    // 27-point weighted sum.
                    warp.push(WarpOp::Compute { cycles: 27 });
                    warp.push(WarpOp::Store(LaneAccesses::contiguous(
                        elem_addr(&output, vox(k, i, j0)),
                        ELEM,
                        lanes,
                    )));
                }
            }
            tbs.push(tb);
        }
    }

    let kernel = KernelTrace {
        name: "conv3d".into(),
        tbs,
        max_concurrent_tbs_per_sm: 16,
        threads_per_tb: (WARPS_PER_TB * LANES_PER_WARP) as u32,
    };
    Workload::new("3dconv", vec![kernel], space)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_face() {
        let wl = generate(Scale::Test, 0, PageSize::Small);
        let n = Scale::Test.volume_dim();
        let expected = n.div_ceil(WARPS_PER_TB) * n.div_ceil(LANES_PER_WARP);
        assert_eq!(wl.kernels()[0].tbs.len(), expected);
    }

    #[test]
    fn addresses_stay_in_volume() {
        let wl = generate(Scale::Test, 0, PageSize::Small);
        for tb in &wl.kernels()[0].tbs {
            for va in tb.all_addresses() {
                assert!(wl.space().is_covered(va));
            }
        }
    }

    #[test]
    fn adjacent_warps_share_rows() {
        let wl = generate(Scale::Test, 0, PageSize::Small);
        let tb = &wl.kernels()[0].tbs[1];
        let warp_pages = |w: usize| -> std::collections::HashSet<u64> {
            tb.warps()[w]
                .ops()
                .iter()
                .filter_map(WarpOp::accesses)
                .flat_map(LaneAccesses::addresses)
                .map(|a| a.raw() >> 12)
                .collect()
        };
        let shared = warp_pages(0).intersection(&warp_pages(1)).count();
        assert!(shared > 0, "stencil halo rows are shared between warps");
    }

    #[test]
    fn deterministic_and_nonempty() {
        let a = generate(Scale::Test, 1, PageSize::Small);
        let b = generate(Scale::Test, 9, PageSize::Small);
        assert_eq!(a.kernels()[0].tbs, b.kernels()[0].tbs);
        assert!(a.total_warp_ops() > 0);
    }
}
