//! Extension workloads: machine-learning kernels.
//!
//! The paper's §IV-B defers counter/threshold exploration "to our future
//! work with other applications (e.g., machine learning and deep learning
//! applications)". These two generators provide that workload class:
//!
//! * [`embedding`] — embedding-table lookups (recommendation-model style):
//!   every warp gathers a batch of table rows selected by a skewed
//!   (Zipf-like) id distribution over a multi-megabyte table. The access
//!   pattern is the extreme version of the graph benchmarks' gathers:
//!   enormous page footprint, hot-row skew, no stride structure.
//! * [`mlp`] — a three-layer MLP forward pass: a chain of tiled
//!   matrix-multiply kernels with shrinking dimensions, i.e. gemm-like
//!   locality with cross-kernel weight reuse.
//!
//! Both are *extensions* — they are not part of the paper's Table II and
//! are exposed through [`crate::extended_registry`] rather than
//! [`crate::registry`].

use crate::gen::{elem_addr, ELEM};
use crate::scale::Scale;
use crate::trace::{KernelTrace, LaneAccesses, TbTrace, WarpOp, LANES_PER_WARP};
use crate::Workload;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vmem::{AddressSpace, PageSize, VirtAddr};

/// Threads per TB for the embedding kernel (2 warps).
const EMB_TB_THREADS: usize = 64;

/// Bytes per embedding row (a 16-float embedding vector).
const EMB_ROW_BYTES: u64 = 64;

/// Table rows and lookups per scale.
fn embedding_dims(scale: Scale) -> (usize, usize) {
    match scale {
        // (table rows, lookups per thread)
        Scale::Test => (1 << 12, 8),
        Scale::Small => (1 << 16, 16),
        Scale::Paper => (1 << 16, 16),
        Scale::Large => (1 << 18, 24),
    }
}

/// Generates the `embedding` extension workload.
///
/// Each thread performs `lookups` gathers from the table at Zipf-skewed
/// row ids and accumulates into an output vector (one row per thread).
pub fn embedding(scale: Scale, seed: u64, page_size: PageSize) -> Workload {
    let (rows, lookups) = embedding_dims(scale);
    // Enough samples that TB dispatch continues long after every SM is
    // saturated (the regime where TB scheduling policies act).
    let batch = rows / 2;
    let mut space = AddressSpace::new(page_size);
    let table = space
        .allocate("emb_table", rows as u64 * EMB_ROW_BYTES)
        .expect("fresh space");
    let out = space
        .allocate("emb_out", batch as u64 * EMB_ROW_BYTES)
        .expect("fresh space");

    let mut rng = SmallRng::seed_from_u64(seed ^ 0xe3b);
    let warps_per_tb = EMB_TB_THREADS / LANES_PER_WARP;
    let num_tbs = batch.div_ceil(EMB_TB_THREADS);
    let mut tbs = Vec::with_capacity(num_tbs);
    for tb_idx in 0..num_tbs {
        let mut tb = TbTrace::with_warps(warps_per_tb);
        for w in 0..warps_per_tb {
            let t0 = tb_idx * EMB_TB_THREADS + w * LANES_PER_WARP;
            if t0 >= batch {
                break;
            }
            let lanes = LANES_PER_WARP.min(batch - t0);
            let warp = tb.warp_mut(w);
            for _ in 0..lookups {
                // One gathered row per lane, Zipf-skewed toward row 0
                // (hot embeddings), cubing a uniform variate.
                let addrs: Vec<VirtAddr> = (0..lanes)
                    .map(|_| {
                        let u: f64 = rng.gen();
                        let row = ((rows as f64) * u * u * u) as u64;
                        table.addr_of(row.min(rows as u64 - 1) * EMB_ROW_BYTES)
                    })
                    .collect();
                warp.push(WarpOp::Load(LaneAccesses::Gather(addrs)));
                warp.push(WarpOp::Compute { cycles: 8 });
            }
            warp.push(WarpOp::Store(LaneAccesses::Strided {
                base: out.addr_of(t0 as u64 * EMB_ROW_BYTES),
                stride: EMB_ROW_BYTES as i64,
                active_lanes: lanes as u8,
            }));
        }
        tbs.push(tb);
    }
    let kernel = KernelTrace {
        name: "embedding_lookup".into(),
        tbs,
        max_concurrent_tbs_per_sm: 16,
        threads_per_tb: EMB_TB_THREADS as u32,
    };
    Workload::new("embedding", vec![kernel], space)
}

/// MLP layer widths per scale (input → h1 → h2 → output).
fn mlp_dims(scale: Scale) -> [usize; 4] {
    match scale {
        Scale::Test => [64, 64, 32, 16],
        Scale::Small => [256, 256, 128, 64],
        Scale::Paper => [256, 256, 128, 64],
        Scale::Large => [512, 512, 256, 128],
    }
}

/// Tile edge for the MLP's gemm kernels.
const TILE: usize = 16;

/// Emits one tiled `C[b][o] = Σ_i X[b][i] * W[i][o]` layer kernel.
fn layer_kernel(
    name: &str,
    x: &vmem::Buffer,
    w: &vmem::Buffer,
    y: &vmem::Buffer,
    batch: usize,
    in_dim: usize,
    out_dim: usize,
) -> KernelTrace {
    let bt = batch.div_ceil(TILE);
    let ot = out_dim.div_ceil(TILE);
    let kt = in_dim.div_ceil(TILE);
    let mut tbs = Vec::with_capacity(bt * ot);
    for tb_b in 0..bt {
        for tb_o in 0..ot {
            let mut tb = TbTrace::with_warps(TILE * TILE / LANES_PER_WARP);
            for wi in 0..(TILE * TILE / LANES_PER_WARP) {
                let warp = tb.warp_mut(wi);
                let r0 = tb_b * TILE + 2 * wi;
                for kk in 0..kt {
                    let k0 = kk * TILE;
                    for r in [r0, r0 + 1] {
                        if r >= batch {
                            continue;
                        }
                        warp.push(WarpOp::Load(LaneAccesses::contiguous(
                            elem_addr(x, (r * in_dim + k0) as u64),
                            ELEM,
                            TILE.min(in_dim - k0) as u8,
                        )));
                    }
                    for kr in [k0 + 2 * wi, k0 + 2 * wi + 1] {
                        if kr >= in_dim {
                            continue;
                        }
                        warp.push(WarpOp::Load(LaneAccesses::contiguous(
                            elem_addr(w, (kr * out_dim + tb_o * TILE) as u64),
                            ELEM,
                            TILE.min(out_dim - tb_o * TILE) as u8,
                        )));
                    }
                    warp.push(WarpOp::Compute { cycles: 16 });
                }
                for r in [r0, r0 + 1] {
                    if r >= batch {
                        continue;
                    }
                    warp.push(WarpOp::Store(LaneAccesses::contiguous(
                        elem_addr(y, (r * out_dim + tb_o * TILE) as u64),
                        ELEM,
                        TILE.min(out_dim - tb_o * TILE) as u8,
                    )));
                }
            }
            tbs.push(tb);
        }
    }
    KernelTrace {
        name: name.into(),
        tbs,
        max_concurrent_tbs_per_sm: 4,
        threads_per_tb: (TILE * TILE) as u32,
    }
}

/// Generates the `mlp` extension workload: three dense layers over a
/// batch equal to the first layer's width.
pub fn mlp(scale: Scale, _seed: u64, page_size: PageSize) -> Workload {
    let [d0, d1, d2, d3] = mlp_dims(scale);
    let batch = d0;
    let mut space = AddressSpace::new(page_size);
    let act = |space: &mut AddressSpace, name: &str, n: usize| {
        space
            .allocate(name, (batch * n) as u64 * ELEM as u64)
            .expect("fresh space")
    };
    let x0 = act(&mut space, "mlp_x0", d0);
    let x1 = act(&mut space, "mlp_x1", d1);
    let x2 = act(&mut space, "mlp_x2", d2);
    let x3 = act(&mut space, "mlp_x3", d3);
    let w1 = space
        .allocate("mlp_w1", (d0 * d1) as u64 * ELEM as u64)
        .expect("fresh space");
    let w2 = space
        .allocate("mlp_w2", (d1 * d2) as u64 * ELEM as u64)
        .expect("fresh space");
    let w3 = space
        .allocate("mlp_w3", (d2 * d3) as u64 * ELEM as u64)
        .expect("fresh space");
    let kernels = vec![
        layer_kernel("mlp_layer1", &x0, &w1, &x1, batch, d0, d1),
        layer_kernel("mlp_layer2", &x1, &w2, &x2, batch, d1, d2),
        layer_kernel("mlp_layer3", &x2, &w3, &x3, batch, d2, d3),
    ];
    Workload::new("mlp", kernels, space)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embedding_generates_valid_addresses() {
        let wl = embedding(Scale::Test, 42, PageSize::Small);
        assert_eq!(wl.kernels().len(), 1);
        for tb in &wl.kernels()[0].tbs {
            for va in tb.all_addresses() {
                assert!(wl.space().is_covered(va));
            }
        }
        assert!(wl.total_warp_ops() > 0);
    }

    #[test]
    fn embedding_is_skewed_toward_hot_rows() {
        let wl = embedding(Scale::Test, 42, PageSize::Small);
        let table = wl.space().buffer("emb_table").unwrap();
        let mut page_counts: std::collections::HashMap<u64, u64> = Default::default();
        for tb in &wl.kernels()[0].tbs {
            for va in tb.all_addresses().filter(|a| table.contains(*a)) {
                *page_counts.entry(va.raw() >> 12).or_default() += 1;
            }
        }
        let total: u64 = page_counts.values().sum();
        let max = page_counts.values().max().copied().unwrap_or(0);
        assert!(
            max as f64 > total as f64 / page_counts.len() as f64 * 4.0,
            "Zipf skew should concentrate accesses on hot pages"
        );
    }

    #[test]
    fn embedding_deterministic_per_seed() {
        let a = embedding(Scale::Test, 1, PageSize::Small);
        let b = embedding(Scale::Test, 1, PageSize::Small);
        assert_eq!(a.kernels()[0].tbs, b.kernels()[0].tbs);
        let c = embedding(Scale::Test, 2, PageSize::Small);
        assert_ne!(a.kernels()[0].tbs, c.kernels()[0].tbs);
    }

    #[test]
    fn mlp_chains_three_layers() {
        let wl = mlp(Scale::Test, 42, PageSize::Small);
        assert_eq!(wl.kernels().len(), 3);
        let [d0, d1, ..] = mlp_dims(Scale::Test);
        assert_eq!(
            wl.kernels()[0].tbs.len(),
            d0.div_ceil(TILE) * d1.div_ceil(TILE)
        );
        for k in wl.kernels() {
            for tb in &k.tbs {
                for va in tb.all_addresses() {
                    assert!(wl.space().is_covered(va), "{}: {va}", k.name);
                }
            }
        }
    }

    #[test]
    fn mlp_layers_share_activation_pages() {
        // Layer 2 reads what layer 1 wrote.
        let wl = mlp(Scale::Test, 42, PageSize::Small);
        let pages = |k: usize| -> std::collections::HashSet<u64> {
            wl.kernels()[k]
                .tbs
                .iter()
                .flat_map(|tb| tb.all_addresses())
                .map(|a| a.raw() >> 12)
                .collect()
        };
        assert!(!pages(0).is_disjoint(&pages(1)));
        assert!(!pages(1).is_disjoint(&pages(2)));
    }
}
