//! The PolyBench matrix-vector family: `atax`, `bicg`, `mvt`.
//!
//! All three benchmarks alternate two sweeps over a tall matrix `A`:
//!
//! * a **row sweep** (`tmp = A·x`): one thread per row walks its row while
//!   a warp's 32 lanes stride `cols * 4` bytes apart — every warp
//!   instruction touches a multi-page column slice of `A`, and the same
//!   slice is re-touched for every 16-column chunk. This is the
//!   stride-access TLB-thrasher whose intra-TB reuses the paper's Figure 5
//!   shows stretched far past the 64-entry L1 reach by inter-TB
//!   interference.
//! * a **column sweep** (`y = Aᵀ·tmp`): one thread per column; warps read
//!   contiguous 32-element row segments while walking down the rows.
//!
//! The vectors (`x`, `tmp`, …) are tiny and shared by *all* TBs — the
//! sizable inter-TB translation reuse the paper's Observation 2 reports
//! for exactly these benchmarks.
//!
//! The column sweep walks rows at page granularity (one representative
//! warp access per page-worth of rows) to bound trace size; the page
//! stream — which is what the TLB sees — is unchanged.

use crate::gen::{elem_addr, ELEM};
use crate::scale::Scale;
use crate::trace::{KernelTrace, LaneAccesses, TbTrace, WarpOp, LANES_PER_WARP};
use crate::Workload;
use vmem::{AddressSpace, Buffer, PageSize};

/// Columns processed per row-sweep inner-loop chunk.
const COL_CHUNK: usize = 16;

/// Threads per TB in the row-sweep kernels (one warp; the real kernels
/// use small 1D blocks, and one warp per TB gives each TB a hot set of a
/// handful of A pages plus the shared vector page — the regime in which
/// the paper reports TB-id partitioning itself helps these benchmarks).
const ROW_TB_THREADS: usize = 32;

/// Threads per TB in the column-sweep kernels.
const COL_TB_THREADS: usize = 64;

/// Emits the row-sweep kernel `out[i] = Σ_j a[i][j] * x[j]`.
fn row_sweep(
    name: &str,
    a: &Buffer,
    x: &Buffer,
    out: &Buffer,
    rows: usize,
    cols: usize,
) -> KernelTrace {
    let warps_per_tb = ROW_TB_THREADS / LANES_PER_WARP;
    let num_tbs = rows.div_ceil(ROW_TB_THREADS);
    let mut tbs = Vec::with_capacity(num_tbs);
    for tb_idx in 0..num_tbs {
        let mut tb = TbTrace::with_warps(warps_per_tb);
        for w in 0..warps_per_tb {
            let warp = tb.warp_mut(w);
            let i0 = tb_idx * ROW_TB_THREADS + w * LANES_PER_WARP;
            if i0 >= rows {
                break;
            }
            let lanes = LANES_PER_WARP.min(rows - i0) as u8;
            for jc in (0..cols).step_by(COL_CHUNK) {
                // 32 lanes read A[i0 + lane][jc]: a column slice strided by
                // the row pitch.
                warp.push(WarpOp::Load(LaneAccesses::Strided {
                    base: elem_addr(a, (i0 * cols + jc) as u64),
                    stride: (cols * ELEM as usize) as i64,
                    active_lanes: lanes,
                }));
                // The 16 x-elements of this chunk live on one page: a
                // broadcast-style read.
                warp.push(WarpOp::Load(LaneAccesses::broadcast(elem_addr(
                    x,
                    jc as u64,
                ))));
                warp.push(WarpOp::Compute {
                    cycles: COL_CHUNK as u32 / 4,
                });
            }
            warp.push(WarpOp::Store(LaneAccesses::contiguous(
                elem_addr(out, i0 as u64),
                ELEM,
                lanes,
            )));
        }
        tbs.push(tb);
    }
    KernelTrace {
        name: name.into(),
        tbs,
        max_concurrent_tbs_per_sm: 16,
        threads_per_tb: ROW_TB_THREADS as u32,
    }
}

/// Emits the column-sweep kernel `out[j] = Σ_i a[i][j] * x[i]`, walking
/// rows at page granularity.
fn col_sweep(
    name: &str,
    a: &Buffer,
    x: &Buffer,
    out: &Buffer,
    rows: usize,
    cols: usize,
    page_size: PageSize,
) -> KernelTrace {
    let warps_per_tb = COL_TB_THREADS / LANES_PER_WARP;
    let num_tbs = cols.div_ceil(COL_TB_THREADS);
    // One representative access per page-worth of rows.
    let rows_per_page = (page_size.bytes() as usize / (cols * ELEM as usize)).max(1);
    let mut tbs = Vec::with_capacity(num_tbs);
    for tb_idx in 0..num_tbs {
        let mut tb = TbTrace::with_warps(warps_per_tb);
        for w in 0..warps_per_tb {
            let warp = tb.warp_mut(w);
            let j0 = tb_idx * COL_TB_THREADS + w * LANES_PER_WARP;
            if j0 >= cols {
                break;
            }
            let lanes = LANES_PER_WARP.min(cols - j0) as u8;
            for i in (0..rows).step_by(rows_per_page) {
                warp.push(WarpOp::Load(LaneAccesses::contiguous(
                    elem_addr(a, (i * cols + j0) as u64),
                    ELEM,
                    lanes,
                )));
                warp.push(WarpOp::Load(LaneAccesses::broadcast(elem_addr(
                    x,
                    i as u64,
                ))));
                warp.push(WarpOp::Compute { cycles: 4 });
            }
            warp.push(WarpOp::Store(LaneAccesses::contiguous(
                elem_addr(out, j0 as u64),
                ELEM,
                lanes,
            )));
        }
        tbs.push(tb);
    }
    KernelTrace {
        name: name.into(),
        tbs,
        max_concurrent_tbs_per_sm: 16,
        threads_per_tb: COL_TB_THREADS as u32,
    }
}

fn dims(scale: Scale) -> (usize, usize) {
    (scale.tall_rows(), scale.narrow_cols())
}

/// Generates `atax`: `y = Aᵀ(A·x)` — a row sweep producing `tmp`, then a
/// column sweep consuming it.
pub fn atax(scale: Scale, _seed: u64, page_size: PageSize) -> Workload {
    let (rows, cols) = dims(scale);
    let mut space = AddressSpace::new(page_size);
    let a = space
        .allocate("atax_a", (rows * cols) as u64 * ELEM as u64)
        .expect("fresh space");
    let x = space
        .allocate("atax_x", cols as u64 * ELEM as u64)
        .expect("fresh space");
    let tmp = space
        .allocate("atax_tmp", rows as u64 * ELEM as u64)
        .expect("fresh space");
    let y = space
        .allocate("atax_y", cols as u64 * ELEM as u64)
        .expect("fresh space");
    let k1 = row_sweep("atax_k1_ax", &a, &x, &tmp, rows, cols);
    let k2 = col_sweep("atax_k2_aty", &a, &tmp, &y, rows, cols, page_size);
    Workload::new("atax", vec![k1, k2], space)
}

/// Generates `bicg`: the BiCGStab sub-kernels `q = A·p` and `s = Aᵀ·r`
/// (two independent sweeps over the same matrix).
pub fn bicg(scale: Scale, _seed: u64, page_size: PageSize) -> Workload {
    let (rows, cols) = dims(scale);
    let mut space = AddressSpace::new(page_size);
    let a = space
        .allocate("bicg_a", (rows * cols) as u64 * ELEM as u64)
        .expect("fresh space");
    let p = space
        .allocate("bicg_p", cols as u64 * ELEM as u64)
        .expect("fresh space");
    let q = space
        .allocate("bicg_q", rows as u64 * ELEM as u64)
        .expect("fresh space");
    let r = space
        .allocate("bicg_r", rows as u64 * ELEM as u64)
        .expect("fresh space");
    let s = space
        .allocate("bicg_s", cols as u64 * ELEM as u64)
        .expect("fresh space");
    let k1 = row_sweep("bicg_k1_q", &a, &p, &q, rows, cols);
    let k2 = col_sweep("bicg_k2_s", &a, &r, &s, rows, cols, page_size);
    Workload::new("bicg", vec![k1, k2], space)
}

/// Generates `mvt`: `x1 += A·y1` and `x2 += Aᵀ·y2`.
pub fn mvt(scale: Scale, _seed: u64, page_size: PageSize) -> Workload {
    let (rows, cols) = dims(scale);
    let mut space = AddressSpace::new(page_size);
    let a = space
        .allocate("mvt_a", (rows * cols) as u64 * ELEM as u64)
        .expect("fresh space");
    let y1 = space
        .allocate("mvt_y1", cols as u64 * ELEM as u64)
        .expect("fresh space");
    let x1 = space
        .allocate("mvt_x1", rows as u64 * ELEM as u64)
        .expect("fresh space");
    let y2 = space
        .allocate("mvt_y2", rows as u64 * ELEM as u64)
        .expect("fresh space");
    let x2 = space
        .allocate("mvt_x2", cols as u64 * ELEM as u64)
        .expect("fresh space");
    let k1 = row_sweep("mvt_k1_x1", &a, &y1, &x1, rows, cols);
    let k2 = col_sweep("mvt_k2_x2", &a, &y2, &x2, rows, cols, page_size);
    Workload::new("mvt", vec![k1, k2], space)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atax_has_two_kernels_with_valid_addresses() {
        let wl = atax(Scale::Test, 0, PageSize::Small);
        assert_eq!(wl.kernels().len(), 2);
        for k in wl.kernels() {
            for tb in &k.tbs {
                for va in tb.all_addresses() {
                    assert!(wl.space().is_covered(va));
                }
            }
        }
    }

    #[test]
    fn row_sweep_grid_size() {
        let wl = atax(Scale::Test, 0, PageSize::Small);
        let rows = Scale::Test.tall_rows();
        assert_eq!(wl.kernels()[0].tbs.len(), rows.div_ceil(ROW_TB_THREADS));
        assert_eq!(wl.kernels()[0].max_concurrent_tbs_per_sm, 16);
    }

    #[test]
    fn row_sweep_strides_across_pages() {
        let wl = atax(Scale::Test, 0, PageSize::Small);
        let k1 = &wl.kernels()[0];
        // The first op of the first warp is a strided load across rows.
        let first = &k1.tbs[0].warps()[0].ops()[0];
        match first {
            WarpOp::Load(LaneAccesses::Strided { stride, .. }) => {
                assert_eq!(
                    *stride,
                    (Scale::Test.narrow_cols() * ELEM as usize) as i64
                );
            }
            other => panic!("expected strided load, got {other:?}"),
        }
    }

    #[test]
    fn vectors_are_shared_across_tbs() {
        // Every TB of the row sweep touches the same x-vector pages.
        let wl = bicg(Scale::Test, 0, PageSize::Small);
        let p_base = wl.space().buffer("bicg_p").unwrap().base();
        let k1 = &wl.kernels()[0];
        for tb in &k1.tbs {
            assert!(
                tb.all_addresses().any(|a| a.align_down(PageSize::Small)
                    == p_base.align_down(PageSize::Small)),
                "every TB reads the shared vector page"
            );
        }
    }

    #[test]
    fn all_three_benchmarks_generate() {
        for (wl, nkernels) in [
            (atax(Scale::Test, 0, PageSize::Small), 2),
            (bicg(Scale::Test, 0, PageSize::Small), 2),
            (mvt(Scale::Test, 0, PageSize::Small), 2),
        ] {
            assert_eq!(wl.kernels().len(), nkernels);
            assert!(wl.total_warp_ops() > 100);
        }
    }

    #[test]
    fn col_sweep_walks_page_granular() {
        let wl = mvt(Scale::Test, 0, PageSize::Small);
        let k2 = &wl.kernels()[1];
        assert!(!k2.tbs.is_empty());
        // Distinct A pages touched by warp 0 should cover the whole column
        // extent of the matrix.
        let rows = Scale::Test.tall_rows();
        let cols = Scale::Test.narrow_cols();
        let a = wl.space().buffer("mvt_a").unwrap();
        let a_pages: std::collections::HashSet<u64> = k2.tbs[0]
            .warps()[0]
            .ops()
            .iter()
            .filter_map(WarpOp::accesses)
            .flat_map(LaneAccesses::addresses)
            .filter(|v| a.contains(*v))
            .map(|v| v.raw() >> 12)
            .collect();
        let matrix_pages = (rows * cols * ELEM as usize) / 4096;
        assert!(
            a_pages.len() >= matrix_pages / 2,
            "column sweep should touch most matrix pages: {} of {}",
            a_pages.len(),
            matrix_pages
        );
    }
}
