//! The trace model: workloads → kernels → thread blocks → warps → ops.
//!
//! Traces are *warp-level*: each [`WarpOp`] is one dynamic warp
//! instruction. Memory instructions carry per-lane addresses in compact
//! form ([`LaneAccesses`]), which the GPU simulator's coalescing unit
//! expands into 128-byte line transactions exactly as the hardware
//! coalescer in Figure 1 of the paper does.

use std::sync::{Arc, OnceLock};

use vmem::{AddressSpace, VirtAddr};

/// Threads per warp (Table III: 32 threads/warp).
pub const LANES_PER_WARP: usize = 32;

/// Per-lane addresses of one warp memory instruction, in compact form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LaneAccesses {
    /// Lane `i` accesses `base + i * stride` for `i < active_lanes`.
    /// `stride == 0` models a broadcast (all lanes read one address).
    Strided {
        /// Address accessed by lane 0.
        base: VirtAddr,
        /// Byte distance between consecutive lanes' addresses.
        stride: i64,
        /// Number of participating lanes (1..=32).
        active_lanes: u8,
    },
    /// Arbitrary per-lane addresses (irregular gather/scatter); inactive
    /// lanes are simply absent.
    Gather(Vec<VirtAddr>),
}

impl LaneAccesses {
    /// A unit-stride access over `active_lanes` elements of `elem_bytes`.
    pub fn contiguous(base: VirtAddr, elem_bytes: u32, active_lanes: u8) -> Self {
        LaneAccesses::Strided {
            base,
            stride: elem_bytes as i64,
            active_lanes,
        }
    }

    /// A broadcast: every lane reads the same address.
    pub fn broadcast(addr: VirtAddr) -> Self {
        LaneAccesses::Strided {
            base: addr,
            stride: 0,
            active_lanes: LANES_PER_WARP as u8,
        }
    }

    /// Number of participating lanes.
    pub fn lane_count(&self) -> usize {
        match self {
            LaneAccesses::Strided { active_lanes, .. } => *active_lanes as usize,
            LaneAccesses::Gather(addrs) => addrs.len(),
        }
    }

    /// Iterates over the per-lane addresses.
    pub fn addresses(&self) -> LaneAddrIter<'_> {
        LaneAddrIter { acc: self, next: 0 }
    }

    /// Splits an arbitrary address list into warp-sized gather ops.
    pub fn gather_chunks(addrs: &[VirtAddr]) -> Vec<LaneAccesses> {
        addrs
            .chunks(LANES_PER_WARP)
            .map(|c| LaneAccesses::Gather(c.to_vec()))
            .collect()
    }
}

/// Iterator over the per-lane addresses of a [`LaneAccesses`].
#[derive(Debug)]
pub struct LaneAddrIter<'a> {
    acc: &'a LaneAccesses,
    next: usize,
}

impl Iterator for LaneAddrIter<'_> {
    type Item = VirtAddr;

    fn next(&mut self) -> Option<VirtAddr> {
        match self.acc {
            LaneAccesses::Strided {
                base,
                stride,
                active_lanes,
            } => {
                if self.next >= *active_lanes as usize {
                    return None;
                }
                let addr =
                    VirtAddr::new((base.raw() as i64 + self.next as i64 * stride) as u64);
                self.next += 1;
                Some(addr)
            }
            LaneAccesses::Gather(addrs) => {
                let a = addrs.get(self.next).copied();
                self.next += 1;
                a
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.acc.lane_count().saturating_sub(self.next);
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for LaneAddrIter<'_> {}

/// One dynamic warp instruction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WarpOp {
    /// A warp-wide load.
    Load(LaneAccesses),
    /// A warp-wide store.
    Store(LaneAccesses),
    /// `cycles` of non-memory work before the next op can issue.
    Compute {
        /// Execution latency in SM cycles.
        cycles: u32,
    },
}

impl WarpOp {
    /// The memory accesses of this op, if it is a memory op.
    pub fn accesses(&self) -> Option<&LaneAccesses> {
        match self {
            WarpOp::Load(a) | WarpOp::Store(a) => Some(a),
            WarpOp::Compute { .. } => None,
        }
    }

    /// Whether this op writes memory.
    pub fn is_store(&self) -> bool {
        matches!(self, WarpOp::Store(_))
    }
}

/// The ordered op stream of one warp.
///
/// Ops live behind an [`Arc`], so cloning a built trace (e.g. when a
/// workload is shared between experiment-grid cells, or when the engine
/// instantiates a resident warp) shares the storage instead of copying
/// it. Building mutates through [`Arc::make_mut`], which is free while
/// the trace is unshared.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WarpTrace {
    ops: Arc<Vec<WarpOp>>,
}

impl WarpTrace {
    /// Creates an empty warp trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an op.
    pub fn push(&mut self, op: WarpOp) {
        Arc::make_mut(&mut self.ops).push(op);
    }

    /// The op stream.
    pub fn ops(&self) -> &[WarpOp] {
        &self.ops
    }

    /// The op stream's shared storage (an `Arc` clone, no copy).
    pub fn shared_ops(&self) -> Arc<Vec<WarpOp>> {
        Arc::clone(&self.ops)
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace has no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// The trace of one thread block: its warps' op streams.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TbTrace {
    warps: Vec<WarpTrace>,
}

impl TbTrace {
    /// Creates a TB trace with `warps` empty warps.
    pub fn with_warps(warps: usize) -> Self {
        TbTrace {
            warps: vec![WarpTrace::new(); warps],
        }
    }

    /// Creates a TB trace from explicit warp traces.
    pub fn from_warps(warps: Vec<WarpTrace>) -> Self {
        TbTrace { warps }
    }

    /// Mutable access to warp `w`.
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range.
    pub fn warp_mut(&mut self, w: usize) -> &mut WarpTrace {
        &mut self.warps[w]
    }

    /// The warps of this TB.
    pub fn warps(&self) -> &[WarpTrace] {
        &self.warps
    }

    /// Total ops across all warps.
    pub fn total_ops(&self) -> usize {
        self.warps.iter().map(WarpTrace::len).sum()
    }

    /// Iterates over every virtual address the TB touches, in warp-major
    /// program order (used by the characterization in `analysis`).
    pub fn all_addresses(&self) -> impl Iterator<Item = VirtAddr> + '_ {
        self.warps.iter().flat_map(|w| {
            w.ops()
                .iter()
                .filter_map(WarpOp::accesses)
                .flat_map(LaneAccesses::addresses)
        })
    }
}

/// One GPU kernel launch: a grid of thread blocks.
#[derive(Clone, Debug, Default)]
pub struct KernelTrace {
    /// Kernel name (e.g. `"gemm_tile"`).
    pub name: String,
    /// Per-TB traces in grid order (the TB scheduler dispatches them in
    /// this order).
    pub tbs: Vec<TbTrace>,
    /// Maximum TBs that fit concurrently on one SM, as determined at
    /// compile time from register/thread/shared-memory usage (paper §IV-B;
    /// capped at 16 by the Kepler hardware limit the paper cites).
    pub max_concurrent_tbs_per_sm: u8,
    /// Threads per TB (for occupancy accounting).
    pub threads_per_tb: u32,
}

impl KernelTrace {
    /// Total warp ops in the kernel.
    pub fn total_ops(&self) -> usize {
        self.tbs.iter().map(TbTrace::total_ops).sum()
    }
}

/// Aggregate shape statistics of a workload's trace (printed by the
/// `repro --table2` report and useful when designing new generators).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Warp-level load instructions.
    pub loads: u64,
    /// Warp-level store instructions.
    pub stores: u64,
    /// Compute instructions.
    pub compute_ops: u64,
    /// Total compute latency cycles.
    pub compute_cycles: u64,
    /// Memory instructions using irregular per-lane gathers.
    pub gather_ops: u64,
    /// Memory instructions using strided/broadcast lane patterns.
    pub strided_ops: u64,
    /// Total participating lanes across memory instructions.
    pub lane_accesses: u64,
}

impl TraceSummary {
    /// Total warp instructions.
    pub fn total_ops(&self) -> u64 {
        self.loads + self.stores + self.compute_ops
    }

    /// Fraction of memory instructions that are irregular gathers.
    pub fn gather_fraction(&self) -> f64 {
        let mem = self.gather_ops + self.strided_ops;
        if mem == 0 {
            0.0
        } else {
            self.gather_ops as f64 / mem as f64
        }
    }
}

/// A complete benchmark: kernels plus the UVM address space their
/// addresses live in.
///
/// Kernels sit behind an [`Arc`], so `clone()` shares the (large) trace
/// storage and deep-copies only the address space — which is cheap while
/// the workload is pristine (nothing demand-paged yet). This is what
/// makes a shared workload cache viable: each simulation run gets its own
/// page table to mutate while every run reads the same trace.
#[derive(Clone, Debug)]
pub struct Workload {
    name: String,
    kernels: Arc<Vec<KernelTrace>>,
    space: AddressSpace,
    /// Cached [`TraceSummary`], computed at most once per trace storage
    /// (clones share it, like the kernels). A trace read back from a
    /// `trace/v1` file is primed from the footer, so `summary()` never
    /// pays the full-decode pass.
    summary: Arc<OnceLock<TraceSummary>>,
}

impl Workload {
    /// Assembles a workload.
    pub fn new(name: impl Into<String>, kernels: Vec<KernelTrace>, space: AddressSpace) -> Self {
        Workload {
            name: name.into(),
            kernels: Arc::new(kernels),
            space,
            summary: Arc::new(OnceLock::new()),
        }
    }

    /// The benchmark name from Table II (`"bfs"`, `"gemm"`, …).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The kernel launch sequence.
    pub fn kernels(&self) -> &[KernelTrace] {
        &self.kernels
    }

    /// The UVM address space backing the trace's addresses.
    pub fn space(&self) -> &AddressSpace {
        &self.space
    }

    /// Mutable address space access (the simulator demand-pages through
    /// it).
    pub fn space_mut(&mut self) -> &mut AddressSpace {
        &mut self.space
    }

    /// Splits the workload into kernels and space (for the simulator).
    /// The kernels keep their shared storage; a cached workload hands the
    /// engine an `Arc` clone, not a trace copy.
    pub fn into_parts(self) -> (String, Arc<Vec<KernelTrace>>, AddressSpace) {
        (self.name, self.kernels, self.space)
    }

    /// Total warp ops across kernels.
    pub fn total_warp_ops(&self) -> usize {
        self.kernels.iter().map(KernelTrace::total_ops).sum()
    }

    /// Total bytes allocated in the address space.
    pub fn footprint_bytes(&self) -> u64 {
        self.space.stats().allocated_bytes
    }

    /// Checks the structural invariants the simulator relies on: every
    /// memory address falls inside an allocated buffer, lane counts stay
    /// within the warp width, and kernels declare sane occupancy hints.
    ///
    /// Generators in this crate always produce valid workloads; call this
    /// when assembling workloads by hand (the simulator will panic on an
    /// unmapped address otherwise).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation found.
    pub fn validate(&self) -> Result<(), String> {
        for (k, kernel) in self.kernels.iter().enumerate() {
            if kernel.max_concurrent_tbs_per_sm == 0 {
                return Err(format!("kernel {k} ({}): zero TB concurrency", kernel.name));
            }
            for (t, tb) in kernel.tbs.iter().enumerate() {
                for (w, warp) in tb.warps().iter().enumerate() {
                    for (o, op) in warp.ops().iter().enumerate() {
                        if let Some(acc) = op.accesses() {
                            let lanes = acc.lane_count();
                            if lanes == 0 || lanes > LANES_PER_WARP {
                                return Err(format!(
                                    "kernel {k} tb {t} warp {w} op {o}: {lanes} lanes"
                                ));
                            }
                            for va in acc.addresses() {
                                if !self.space.is_covered(va) {
                                    return Err(format!(
                                        "kernel {k} ({}) tb {t} warp {w} op {o}: address                                          {va} outside every buffer",
                                        kernel.name
                                    ));
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Aggregate shape statistics of the trace. Computed on first use
    /// (one O(ops) pass) and cached; clones of this workload share the
    /// cache along with the trace storage.
    pub fn summary(&self) -> TraceSummary {
        *self.summary.get_or_init(|| self.compute_summary())
    }

    /// Seeds the summary cache with an externally computed value (the
    /// `trace/v1` reader primes it from the file footer). A no-op if the
    /// summary was already computed.
    pub fn prime_summary(&self, summary: TraceSummary) {
        let _ = self.summary.set(summary);
    }

    fn compute_summary(&self) -> TraceSummary {
        let mut s = TraceSummary::default();
        for kernel in self.kernels.iter() {
            for tb in &kernel.tbs {
                for warp in tb.warps() {
                    for op in warp.ops() {
                        match op {
                            WarpOp::Compute { cycles } => {
                                s.compute_ops += 1;
                                s.compute_cycles += *cycles as u64;
                            }
                            WarpOp::Load(acc) | WarpOp::Store(acc) => {
                                if op.is_store() {
                                    s.stores += 1;
                                } else {
                                    s.loads += 1;
                                }
                                s.lane_accesses += acc.lane_count() as u64;
                                match acc {
                                    LaneAccesses::Gather(_) => s.gather_ops += 1,
                                    LaneAccesses::Strided { .. } => s.strided_ops += 1,
                                }
                            }
                        }
                    }
                }
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmem::PageSize;

    #[test]
    fn strided_addresses() {
        let a = LaneAccesses::Strided {
            base: VirtAddr::new(0x1000),
            stride: 4,
            active_lanes: 4,
        };
        let addrs: Vec<u64> = a.addresses().map(|v| v.raw()).collect();
        assert_eq!(addrs, vec![0x1000, 0x1004, 0x1008, 0x100c]);
        assert_eq!(a.lane_count(), 4);
        assert_eq!(a.addresses().len(), 4);
    }

    #[test]
    fn negative_stride_walks_backwards() {
        let a = LaneAccesses::Strided {
            base: VirtAddr::new(0x1000),
            stride: -8,
            active_lanes: 3,
        };
        let addrs: Vec<u64> = a.addresses().map(|v| v.raw()).collect();
        assert_eq!(addrs, vec![0x1000, 0xff8, 0xff0]);
    }

    #[test]
    fn broadcast_is_single_address() {
        let a = LaneAccesses::broadcast(VirtAddr::new(0x42));
        let addrs: Vec<u64> = a.addresses().map(|v| v.raw()).collect();
        assert_eq!(addrs.len(), LANES_PER_WARP);
        assert!(addrs.iter().all(|&x| x == 0x42));
    }

    #[test]
    fn gather_chunks_splits_at_warp_width() {
        let addrs: Vec<VirtAddr> = (0..70).map(|i| VirtAddr::new(i * 100)).collect();
        let chunks = LaneAccesses::gather_chunks(&addrs);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].lane_count(), 32);
        assert_eq!(chunks[2].lane_count(), 6);
    }

    #[test]
    fn contiguous_helper() {
        let a = LaneAccesses::contiguous(VirtAddr::new(0), 4, 32);
        let last = a.addresses().last().unwrap();
        assert_eq!(last.raw(), 31 * 4);
    }

    #[test]
    fn warp_op_accessors() {
        let load = WarpOp::Load(LaneAccesses::broadcast(VirtAddr::new(1)));
        let store = WarpOp::Store(LaneAccesses::broadcast(VirtAddr::new(2)));
        let compute = WarpOp::Compute { cycles: 10 };
        assert!(load.accesses().is_some());
        assert!(!load.is_store());
        assert!(store.is_store());
        assert!(compute.accesses().is_none());
    }

    #[test]
    fn tb_trace_aggregates() {
        let mut tb = TbTrace::with_warps(2);
        tb.warp_mut(0)
            .push(WarpOp::Load(LaneAccesses::broadcast(VirtAddr::new(0x1000))));
        tb.warp_mut(1).push(WarpOp::Compute { cycles: 5 });
        tb.warp_mut(1)
            .push(WarpOp::Store(LaneAccesses::contiguous(
                VirtAddr::new(0x2000),
                4,
                2,
            )));
        assert_eq!(tb.total_ops(), 3);
        // 32 broadcast lanes + 2 store lanes.
        assert_eq!(tb.all_addresses().count(), 34);
    }

    #[test]
    fn summary_counts_ops_by_kind() {
        let mut space = AddressSpace::new(PageSize::Small);
        let b = space.allocate("x", 4096).unwrap();
        let mut tb = TbTrace::with_warps(1);
        tb.warp_mut(0)
            .push(WarpOp::Load(LaneAccesses::contiguous(b.addr_of(0), 4, 8)));
        tb.warp_mut(0)
            .push(WarpOp::Store(LaneAccesses::Gather(vec![b.addr_of(0), b.addr_of(4)])));
        tb.warp_mut(0).push(WarpOp::Compute { cycles: 7 });
        let kernel = KernelTrace {
            name: "k".into(),
            tbs: vec![tb],
            max_concurrent_tbs_per_sm: 16,
            threads_per_tb: 32,
        };
        let wl = Workload::new("demo", vec![kernel], space);
        let s = wl.summary();
        assert_eq!(s.loads, 1);
        assert_eq!(s.stores, 1);
        assert_eq!(s.compute_ops, 1);
        assert_eq!(s.compute_cycles, 7);
        assert_eq!(s.gather_ops, 1);
        assert_eq!(s.strided_ops, 1);
        assert_eq!(s.lane_accesses, 10);
        assert_eq!(s.total_ops(), 3);
        assert!((s.gather_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(TraceSummary::default().gather_fraction(), 0.0);
    }

    #[test]
    fn validate_catches_out_of_buffer_addresses() {
        let mut space = AddressSpace::new(PageSize::Small);
        let b = space.allocate("x", 4096).unwrap();
        let mut tb = TbTrace::with_warps(1);
        // Strided op runs past the buffer into the guard page.
        tb.warp_mut(0).push(WarpOp::Load(LaneAccesses::Strided {
            base: b.addr_of(0),
            stride: 4096,
            active_lanes: 2,
        }));
        let kernel = KernelTrace {
            name: "bad".into(),
            tbs: vec![tb],
            max_concurrent_tbs_per_sm: 16,
            threads_per_tb: 32,
        };
        let wl = Workload::new("bad", vec![kernel], space);
        let err = wl.validate().unwrap_err();
        assert!(err.contains("outside every buffer"), "{err}");
    }

    #[test]
    fn validate_accepts_good_workloads() {
        let mut space = AddressSpace::new(PageSize::Small);
        let b = space.allocate("x", 4096).unwrap();
        let mut tb = TbTrace::with_warps(1);
        tb.warp_mut(0)
            .push(WarpOp::Load(LaneAccesses::contiguous(b.addr_of(0), 4, 32)));
        let kernel = KernelTrace {
            name: "ok".into(),
            tbs: vec![tb],
            max_concurrent_tbs_per_sm: 16,
            threads_per_tb: 32,
        };
        assert!(Workload::new("ok", vec![kernel], space).validate().is_ok());
    }

    #[test]
    fn validate_rejects_zero_concurrency() {
        let mut space = AddressSpace::new(PageSize::Small);
        space.allocate("x", 16).unwrap();
        let kernel = KernelTrace {
            name: "zero".into(),
            tbs: vec![],
            max_concurrent_tbs_per_sm: 0,
            threads_per_tb: 32,
        };
        let wl = Workload::new("zero", vec![kernel], space);
        assert!(wl.validate().is_err());
    }

    #[test]
    fn workload_assembly() {
        let mut space = AddressSpace::new(PageSize::Small);
        space.allocate("x", 4096).unwrap();
        let kernel = KernelTrace {
            name: "k".into(),
            tbs: vec![TbTrace::with_warps(1)],
            max_concurrent_tbs_per_sm: 16,
            threads_per_tb: 32,
        };
        let wl = Workload::new("demo", vec![kernel], space);
        assert_eq!(wl.name(), "demo");
        assert_eq!(wl.kernels().len(), 1);
        assert_eq!(wl.total_warp_ops(), 0);
        assert_eq!(wl.footprint_bytes(), 4096);
    }
}
