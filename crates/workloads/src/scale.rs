//! Workload scaling presets.
//!
//! The paper runs inputs with up to 107 GB footprints; a cycle-level
//! simulator in CI cannot. What matters for the paper's phenomena is the
//! *ratio* of per-SM working-set pages to L1 TLB reach (64 entries =
//! 256 KiB), so each preset keeps that ratio far above 1 while bounding
//! trace size.

use std::fmt;

/// How large to generate a workload.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Minimal inputs for unit tests (sub-second full-workspace test runs).
    Test,
    /// Mid-size inputs for examples and quick experiments.
    Small,
    /// The evaluation scale used by the benches and EXPERIMENTS.md: page
    /// working sets hundreds of times the L1 TLB reach, as in the paper.
    #[default]
    Paper,
    /// Engine-throughput scale: enough trace volume that one simulation
    /// runs for seconds, so `--sim-threads` wall-clock comparisons (the
    /// engine bench's speedup numbers) measure steady-state behaviour
    /// rather than startup. Translation phenomena match `Paper`; only
    /// the volume grows.
    Large,
}

impl Scale {
    /// Square-matrix dimension for `nw`.
    pub fn matrix_dim(self) -> usize {
        match self {
            Scale::Test => 64,
            Scale::Small => 256,
            Scale::Paper => 512,
            Scale::Large => 1024,
        }
    }

    /// Square-matrix dimension for `gemm`. 256 columns give a 1 KiB row
    /// pitch, so a TB's A/B tile slices stay within a dozen pages — the
    /// regime where gemm keeps its high baseline hit rate (Figure 2) and
    /// the proposal leaves it unharmed.
    pub fn gemm_dim(self) -> usize {
        match self {
            Scale::Test => 64,
            Scale::Small => 128,
            Scale::Paper => 128,
            Scale::Large => 512,
        }
    }

    /// Row count for the tall matrix-vector kernels (`atax`, `bicg`,
    /// `mvt`), which launch one thread per row.
    pub fn tall_rows(self) -> usize {
        match self {
            Scale::Test => 2048,
            Scale::Small => 8192,
            Scale::Paper => 8192,
            Scale::Large => 131072,
        }
    }

    /// Column count for the tall matrix-vector kernels. 96 columns give a
    /// 384-byte row pitch, so one warp's 32-row column slice spans three
    /// 4 KiB pages — together with the shared vector page, a TB-sized hot
    /// set that fits one L1 TLB set.
    pub fn narrow_cols(self) -> usize {
        match self {
            Scale::Test => 64,
            Scale::Small => 96,
            Scale::Paper => 96,
            Scale::Large => 96,
        }
    }

    /// 3D volume edge length for `3dconv`.
    pub fn volume_dim(self) -> usize {
        match self {
            Scale::Test => 16,
            Scale::Small => 48,
            Scale::Paper => 80,
            Scale::Large => 112,
        }
    }

    /// Node count for the graph benchmarks (`bfs`, `color`, `mis`,
    /// `pagerank`).
    pub fn graph_nodes(self) -> usize {
        match self {
            Scale::Test => 1 << 10,
            Scale::Small => 1 << 15,
            Scale::Paper => 1 << 15,
            Scale::Large => 1 << 17,
        }
    }

    /// Average edges per node for the synthetic citation graph.
    pub fn graph_avg_degree(self) -> usize {
        match self {
            Scale::Test => 8,
            Scale::Small => 10,
            Scale::Paper => 12,
            Scale::Large => 12,
        }
    }

    /// Bytes per node record in the graph kernels' node arrays (level,
    /// rank, color, …). The paper's graphs occupy 8-107 GB, so per-node
    /// payloads span far more pages relative to TLB reach than a 4-byte
    /// array at our node counts would; widening the record restores the
    /// paper's pages-per-gather ratio at simulable node counts (see
    /// DESIGN.md).
    pub fn node_stride(self) -> u64 {
        match self {
            Scale::Test => 4,
            Scale::Small => 32,
            Scale::Paper => 32,
            Scale::Large => 32,
        }
    }

    /// Iterations for the iterative graph kernels.
    pub fn graph_iterations(self) -> usize {
        match self {
            Scale::Test => 1,
            Scale::Small => 2,
            Scale::Paper => 2,
            Scale::Large => 3,
        }
    }
}

impl fmt::Display for Scale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scale::Test => write!(f, "test"),
            Scale::Small => write!(f, "small"),
            Scale::Paper => write!(f, "paper"),
            Scale::Large => write!(f, "large"),
        }
    }
}

impl std::str::FromStr for Scale {
    type Err = String;

    /// Parses the [`fmt::Display`] names (used by CLI flags and the
    /// `trace/v1` footer's scale tag).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "test" => Ok(Scale::Test),
            "small" => Ok(Scale::Small),
            "paper" => Ok(Scale::Paper),
            "large" => Ok(Scale::Large),
            other => Err(format!(
                "unknown scale {other:?} (expected test|small|paper|large)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::Test.matrix_dim() < Scale::Small.matrix_dim());
        assert!(Scale::Small.matrix_dim() < Scale::Paper.matrix_dim());
        assert!(Scale::Test.graph_nodes() < Scale::Paper.graph_nodes());
    }

    #[test]
    fn paper_scale_exceeds_tlb_reach() {
        // One matrix at paper scale spans far more pages than the 64-entry
        // L1 TLB covers.
        let dim = Scale::Paper.matrix_dim();
        let pages = (dim * dim * 4) / 4096;
        assert!(pages >= 4 * 64, "matrix pages {pages} must dwarf TLB reach");
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(Scale::default(), Scale::Paper);
    }

    #[test]
    fn display_names() {
        assert_eq!(Scale::Test.to_string(), "test");
        assert_eq!(Scale::Paper.to_string(), "paper");
    }

    #[test]
    fn from_str_round_trips_display() {
        for s in [Scale::Test, Scale::Small, Scale::Paper, Scale::Large] {
            assert_eq!(s.to_string().parse::<Scale>(), Ok(s));
        }
        assert!("huge".parse::<Scale>().is_err());
    }
}
