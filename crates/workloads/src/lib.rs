//! # workloads — synthetic GPU benchmark traces for the DAC'23 reproduction
//!
//! The paper evaluates on 10 UVM-enabled CUDA benchmarks from Rodinia,
//! Polybench and Pannotia (Table II), run under gem5-gpu. Neither the CUDA
//! binaries nor the gem5-gpu runtime are available here, so this crate
//! regenerates each benchmark's *per-thread-block memory access pattern*
//! directly: a [`Workload`] is a set of kernels, each kernel a list of
//! thread-block traces, each thread block a list of warps, each warp an
//! ordered stream of [`WarpOp`]s whose virtual addresses point into
//! buffers of a real [`vmem::AddressSpace`].
//!
//! TLB behaviour is a function of the page-access stream, so reproducing
//! the access functions of each kernel (affine tiling for the Polybench
//! kernels, wavefront for `nw`, CSR traversal over a power-law graph for
//! the Pannotia kernels and `bfs`) preserves the phenomena the paper
//! studies, at a memory footprint scaled from the paper's 100+ GB down to
//! simulable megabytes (see DESIGN.md for the substitution argument).
//!
//! # Example
//!
//! ```
//! use workloads::{registry, Scale};
//!
//! let spec = registry().into_iter().find(|s| s.name == "gemm").unwrap();
//! let wl = spec.generate(Scale::Test, 42);
//! assert!(!wl.kernels().is_empty());
//! assert!(wl.total_warp_ops() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod graph;
mod registry;
mod scale;
mod trace;

pub mod format;
pub mod gen;

pub use cache::{CacheStats, WorkloadCache};
pub use format::{TraceError, TraceReader, TraceSource, TraceWriter};
pub use graph::{CsrGraph, RmatParams};
pub use registry::{extended_registry, registry, BenchmarkSpec, Suite};
pub use scale::Scale;
pub use trace::{
    KernelTrace, LaneAccesses, TbTrace, TraceSummary, WarpOp, WarpTrace, Workload,
    LANES_PER_WARP,
};
