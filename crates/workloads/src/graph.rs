//! Synthetic power-law graph generation (CSR).
//!
//! The paper's graph benchmarks use the DIMACS'10 `coPapersCiteseer`
//! citation graph, which is not redistributable here. An R-MAT generator
//! with the usual skewed partition probabilities reproduces the property
//! that drives the paper's observations on graph workloads: highly skewed
//! degree distributions, which create (a) hub pages that are reused
//! intensively and (b) large inter-TB imbalance in memory-access counts.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// R-MAT quadrant probabilities.
///
/// The defaults `(0.57, 0.19, 0.19, 0.05)` are the standard "social
/// network-like" skew used by Graph500.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct RmatParams {
    /// Probability of recursing into the top-left quadrant.
    pub a: f64,
    /// Probability of the top-right quadrant.
    pub b: f64,
    /// Probability of the bottom-left quadrant.
    pub c: f64,
}

impl RmatParams {
    /// The derived bottom-right probability.
    pub fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }
}

impl Default for RmatParams {
    fn default() -> Self {
        RmatParams {
            a: 0.57,
            b: 0.19,
            c: 0.19,
        }
    }
}

/// A directed graph in compressed sparse row form.
///
/// # Example
///
/// ```
/// use workloads::{CsrGraph, RmatParams};
///
/// let g = CsrGraph::rmat(1 << 10, 8 << 10, RmatParams::default(), 42);
/// assert_eq!(g.num_nodes(), 1 << 10);
/// assert_eq!(g.num_edges(), 8 << 10);
/// let hub = g.max_degree();
/// assert!(hub > 8 * 4, "power-law graphs have hubs: max degree {hub}");
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrGraph {
    /// `row_ptr[i]..row_ptr[i+1]` indexes node `i`'s neighbors in
    /// `col_idx`. Length `num_nodes + 1`.
    row_ptr: Vec<u32>,
    /// Flattened adjacency lists.
    col_idx: Vec<u32>,
}

impl CsrGraph {
    /// Builds a CSR graph from an edge list.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= num_nodes`.
    pub fn from_edges(num_nodes: usize, edges: &[(u32, u32)]) -> Self {
        let mut degree = vec![0u32; num_nodes];
        for &(s, d) in edges {
            assert!(
                (s as usize) < num_nodes && (d as usize) < num_nodes,
                "edge ({s}, {d}) out of range for {num_nodes} nodes"
            );
            degree[s as usize] += 1;
        }
        let mut row_ptr = vec![0u32; num_nodes + 1];
        for i in 0..num_nodes {
            row_ptr[i + 1] = row_ptr[i] + degree[i];
        }
        let mut cursor = row_ptr.clone();
        let mut col_idx = vec![0u32; edges.len()];
        for &(s, d) in edges {
            col_idx[cursor[s as usize] as usize] = d;
            cursor[s as usize] += 1;
        }
        CsrGraph { row_ptr, col_idx }
    }

    /// Generates an R-MAT graph with `num_nodes` (rounded up to a power of
    /// two internally) and exactly `num_edges` directed edges,
    /// deterministically from `seed`.
    pub fn rmat(num_nodes: usize, num_edges: usize, params: RmatParams, seed: u64) -> Self {
        assert!(num_nodes > 1, "graph needs at least two nodes");
        let levels = usize::BITS - (num_nodes - 1).leading_zeros();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut edges = Vec::with_capacity(num_edges);
        while edges.len() < num_edges {
            let (mut src, mut dst) = (0usize, 0usize);
            for _ in 0..levels {
                let r: f64 = rng.gen();
                let (sbit, dbit) = if r < params.a {
                    (0, 0)
                } else if r < params.a + params.b {
                    (0, 1)
                } else if r < params.a + params.b + params.c {
                    (1, 0)
                } else {
                    (1, 1)
                };
                src = (src << 1) | sbit;
                dst = (dst << 1) | dbit;
            }
            if src < num_nodes && dst < num_nodes && src != dst {
                edges.push((src as u32, dst as u32));
            }
        }
        Self::from_edges(num_nodes, &edges)
    }

    /// Generates a *clustered* power-law graph: like [`CsrGraph::rmat`]
    /// but most destination endpoints are drawn from a window around the
    /// source node, as in citation graphs whose node ordering follows
    /// publication clusters (the DIMACS `coPapersCiteseer` input the paper
    /// uses is such a graph). The remaining edges keep the R-MAT
    /// destination, preserving skewed in-degree hubs.
    ///
    /// `locality` is the fraction of edges rewired into the ±`window`
    /// neighbourhood of their source.
    pub fn clustered_rmat(
        num_nodes: usize,
        num_edges: usize,
        params: RmatParams,
        locality: f64,
        window: usize,
        seed: u64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&locality), "locality must be in [0,1]");
        assert!(num_nodes > 1, "graph needs at least two nodes");
        let levels = usize::BITS - (num_nodes - 1).leading_zeros();
        let window = window.max(1);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut edges = Vec::with_capacity(num_edges);
        while edges.len() < num_edges {
            let (mut src, mut dst) = (0usize, 0usize);
            for _ in 0..levels {
                let r: f64 = rng.gen();
                let (sbit, dbit) = if r < params.a {
                    (0, 0)
                } else if r < params.a + params.b {
                    (0, 1)
                } else if r < params.a + params.b + params.c {
                    (1, 0)
                } else {
                    (1, 1)
                };
                src = (src << 1) | sbit;
                dst = (dst << 1) | dbit;
            }
            if src >= num_nodes {
                continue;
            }
            if rng.gen::<f64>() < locality {
                // Rewire into the source's cluster window.
                let delta = rng.gen_range(0..=2 * window) as i64 - window as i64;
                let local = (src as i64 + delta).rem_euclid(num_nodes as i64) as usize;
                dst = local;
            }
            if dst < num_nodes && src != dst {
                edges.push((src as u32, dst as u32));
            }
        }
        Self::from_edges(num_nodes, &edges)
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.col_idx.len()
    }

    /// Out-degree of `node`.
    pub fn degree(&self, node: u32) -> usize {
        let n = node as usize;
        (self.row_ptr[n + 1] - self.row_ptr[n]) as usize
    }

    /// Neighbors of `node`.
    pub fn neighbors(&self, node: u32) -> &[u32] {
        let n = node as usize;
        &self.col_idx[self.row_ptr[n] as usize..self.row_ptr[n + 1] as usize]
    }

    /// The row-pointer array (for address generation over the CSR
    /// buffers).
    pub fn row_ptr(&self) -> &[u32] {
        &self.row_ptr
    }

    /// The column-index array.
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// Maximum out-degree (hub size).
    pub fn max_degree(&self) -> usize {
        (0..self.num_nodes() as u32)
            .map(|n| self.degree(n))
            .max()
            .unwrap_or(0)
    }

    /// Gini-style skew indicator: fraction of edges owned by the top 1% of
    /// nodes by degree.
    pub fn top1pct_edge_share(&self) -> f64 {
        if self.num_edges() == 0 {
            return 0.0;
        }
        let mut degrees: Vec<usize> = (0..self.num_nodes() as u32)
            .map(|n| self.degree(n))
            .collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        let top = (self.num_nodes() / 100).max(1);
        let owned: usize = degrees[..top].iter().sum();
        owned as f64 / self.num_edges() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_builds_correct_csr() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (2, 3), (3, 0)]);
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[] as &[u32]);
        assert_eq!(g.neighbors(2), &[3]);
        assert_eq!(g.degree(3), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_edges_validates_endpoints() {
        let _ = CsrGraph::from_edges(2, &[(0, 5)]);
    }

    #[test]
    fn rmat_is_deterministic() {
        let g1 = CsrGraph::rmat(256, 1024, RmatParams::default(), 7);
        let g2 = CsrGraph::rmat(256, 1024, RmatParams::default(), 7);
        assert_eq!(g1, g2);
        let g3 = CsrGraph::rmat(256, 1024, RmatParams::default(), 8);
        assert_ne!(g1, g3);
    }

    #[test]
    fn rmat_has_requested_shape() {
        let g = CsrGraph::rmat(1000, 5000, RmatParams::default(), 1);
        assert_eq!(g.num_nodes(), 1000);
        assert_eq!(g.num_edges(), 5000);
        // row_ptr is monotone and ends at num_edges.
        assert!(g.row_ptr().windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*g.row_ptr().last().unwrap() as usize, 5000);
    }

    #[test]
    fn rmat_is_skewed() {
        let g = CsrGraph::rmat(1 << 12, 1 << 15, RmatParams::default(), 42);
        let avg = g.num_edges() / g.num_nodes();
        assert!(
            g.max_degree() > 10 * avg,
            "hub degree {} should dwarf average {avg}",
            g.max_degree()
        );
        assert!(
            g.top1pct_edge_share() > 0.05,
            "top 1% share {:.3} should reflect skew",
            g.top1pct_edge_share()
        );
    }

    #[test]
    fn uniform_params_are_not_skewed() {
        let uniform = RmatParams {
            a: 0.25,
            b: 0.25,
            c: 0.25,
        };
        let g = CsrGraph::rmat(1 << 12, 1 << 15, uniform, 42);
        let skewed = CsrGraph::rmat(1 << 12, 1 << 15, RmatParams::default(), 42);
        assert!(g.max_degree() < skewed.max_degree());
        assert!((uniform.d() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn self_loops_excluded() {
        let g = CsrGraph::rmat(128, 512, RmatParams::default(), 3);
        for n in 0..g.num_nodes() as u32 {
            assert!(!g.neighbors(n).contains(&n), "self loop at {n}");
        }
    }
}
