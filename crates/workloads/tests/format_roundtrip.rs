//! Property-based round-trip tests for the `trace/v1` binary format:
//! `Workload` → `TraceWriter` → `TraceReader` must reproduce the
//! original exactly (ops, per-TB boundaries, summaries, buffer table),
//! and random corruption must surface as offset-tagged errors, never
//! panics.

use std::path::PathBuf;

use proptest::prelude::*;
use vmem::{AddressSpace, PageSize, VirtAddr};
use workloads::format::{write_workload, TraceError, TraceReader};
use workloads::{KernelTrace, LaneAccesses, TbTrace, WarpOp, Workload};

/// Raw op stream: per kernel, per TB, per warp, a list of encoded ops.
/// kind 0: compute; kind 1: contiguous load; kind 2: strided store
/// (negative stride when payload is odd); kind 3: gather load; kind 4:
/// broadcast store.
type RawOps = Vec<Vec<Vec<Vec<(u8, u64)>>>>;

fn arb_workload() -> impl Strategy<Value = (RawOps, u8, u64)> {
    let op = (0u8..5, 0u64..1 << 16);
    let warp = proptest::collection::vec(op, 0..8);
    let tb = proptest::collection::vec(warp, 1..4);
    let tbs = proptest::collection::vec(tb, 1..6);
    let kernels = proptest::collection::vec(tbs, 1..3);
    (kernels, 1u8..16, any::<u64>())
}

fn build(spec: &RawOps, max_tbs: u8) -> Workload {
    let mut space = AddressSpace::new(PageSize::Small);
    let buf = space.allocate("data", 1 << 20).expect("fresh space");
    let lo = 64 * 128u64;
    let span = (1 << 20) - 2 * lo;
    let mut kernels = Vec::new();
    for (k, kernel_spec) in spec.iter().enumerate() {
        let mut tbs = Vec::new();
        for tb_spec in kernel_spec {
            let mut tb = TbTrace::with_warps(tb_spec.len());
            for (w, warp_spec) in tb_spec.iter().enumerate() {
                let warp = tb.warp_mut(w);
                for &(kind, payload) in warp_spec {
                    let offset = lo + payload % span;
                    match kind {
                        0 => warp.push(WarpOp::Compute {
                            cycles: (payload % 50 + 1) as u32,
                        }),
                        1 => warp.push(WarpOp::Load(LaneAccesses::contiguous(
                            buf.addr_of(offset),
                            4,
                            (payload % 32 + 1) as u8,
                        ))),
                        2 => warp.push(WarpOp::Store(LaneAccesses::Strided {
                            base: buf.addr_of(offset),
                            stride: if payload % 2 == 1 { -128 } else { 128 },
                            active_lanes: 16,
                        })),
                        3 => {
                            let lanes: Vec<VirtAddr> = (0..(payload % 32 + 1))
                                .map(|i| buf.addr_of(lo + (payload ^ (i * 0x9e37)) % span))
                                .collect();
                            warp.push(WarpOp::Load(LaneAccesses::Gather(lanes)));
                        }
                        _ => warp.push(WarpOp::Store(LaneAccesses::broadcast(
                            buf.addr_of(offset),
                        ))),
                    }
                }
            }
            tbs.push(tb);
        }
        kernels.push(KernelTrace {
            name: format!("k{k}"),
            tbs,
            max_concurrent_tbs_per_sm: max_tbs,
            threads_per_tb: 32 * 4,
        });
    }
    Workload::new("random", kernels, space)
}

fn temp_path(tag: &str, case: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "otlb-roundtrip-{tag}-{}-{case}.trace",
        std::process::id()
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Write → read reproduces ops, per-TB boundaries, and summaries.
    #[test]
    fn round_trip_preserves_everything((spec, max_tbs, seed) in arb_workload()) {
        let wl = build(&spec, max_tbs);
        let path = temp_path("rt", seed);
        let written = write_workload(&path, &wl, "random", None, seed).unwrap();
        prop_assert_eq!(written, wl.summary());

        let reader = TraceReader::open(&path).unwrap();
        prop_assert_eq!(reader.summary(), wl.summary());
        prop_assert_eq!(reader.seed(), seed);
        prop_assert_eq!(reader.scale(), None);
        reader.verify().unwrap();

        // Streaming preserves per-TB boundaries and op equality.
        prop_assert_eq!(reader.kernels().len(), wl.kernels().len());
        for (k, kernel) in wl.kernels().iter().enumerate() {
            prop_assert_eq!(reader.kernels()[k].tb_count as usize, kernel.tbs.len());
            let mut stream = reader.stream_kernel(k).unwrap();
            for tb in &kernel.tbs {
                let got = stream.next_tb().unwrap();
                prop_assert_eq!(got.as_ref(), Some(tb));
            }
            prop_assert!(stream.next_tb().unwrap().is_none());
        }

        // Materializing reproduces the workload (including the space).
        let back = reader.read_workload().unwrap();
        prop_assert_eq!(back.summary(), wl.summary());
        for (a, b) in back.kernels().iter().zip(wl.kernels()) {
            prop_assert_eq!(&a.name, &b.name);
            prop_assert_eq!(a.threads_per_tb, b.threads_per_tb);
            prop_assert_eq!(a.max_concurrent_tbs_per_sm, b.max_concurrent_tbs_per_sm);
            prop_assert_eq!(&a.tbs, &b.tbs);
        }
        let bufs: Vec<(String, u64, u64)> = back
            .space()
            .buffers()
            .map(|b| (b.name().to_owned(), b.base().raw(), b.size()))
            .collect();
        let orig: Vec<(String, u64, u64)> = wl
            .space()
            .buffers()
            .map(|b| (b.name().to_owned(), b.base().raw(), b.size()))
            .collect();
        prop_assert_eq!(bufs, orig);
        std::fs::remove_file(&path).unwrap();
    }

    /// Truncating a valid trace anywhere fails with an error, never a
    /// panic — and never yields a *wrong* successful read.
    #[test]
    fn truncation_never_panics((spec, max_tbs, seed) in arb_workload(), cut in 0u32..1000) {
        let wl = build(&spec, max_tbs);
        let path = temp_path("trunc", seed);
        write_workload(&path, &wl, "random", None, seed).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let keep = (bytes.len() - 1) * cut as usize / 1000;
        std::fs::write(&path, &bytes[..keep]).unwrap();
        match TraceReader::open(&path) {
            // Footer opened (cut landed inside a block): every stream
            // must still fail cleanly, since blocks are missing bytes.
            Ok(reader) => {
                let mut failed = false;
                'outer: for k in 0..reader.kernels().len() {
                    let mut stream = reader.stream_kernel(k).unwrap();
                    loop {
                        match stream.next_tb() {
                            Err(_) => { failed = true; break 'outer; }
                            Ok(None) => break,
                            Ok(Some(_)) => {}
                        }
                    }
                }
                prop_assert!(failed, "truncated file streamed to completion");
            }
            Err(TraceError::Io { .. })
            | Err(TraceError::NotATrace { .. })
            | Err(TraceError::Corrupt { .. })
            | Err(TraceError::Version { .. })
            | Err(TraceError::Space { .. }) => {}
        }
        std::fs::remove_file(&path).unwrap();
    }

    /// Flipping a single byte anywhere fails with an error or decodes
    /// to the untouched regions only — never a panic. (A flip inside a
    /// block must be caught by its checksum; a flip in the footer by the
    /// footer checksum; a flip in the magic/version by the header
    /// checks.)
    #[test]
    fn single_byte_corruption_never_panics(
        (spec, max_tbs, seed) in arb_workload(),
        pos in 0u32..1000,
        flip in 1u8..=255,
    ) {
        let wl = build(&spec, max_tbs);
        let path = temp_path("flip", seed);
        write_workload(&path, &wl, "random", None, seed).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let at = (bytes.len() - 1) * pos as usize / 1000;
        bytes[at] ^= flip;
        std::fs::write(&path, &bytes).unwrap();
        if let Ok(reader) = TraceReader::open(&path) {
            // The flip landed in a block: full verification must fail.
            prop_assert!(
                reader.verify().is_err(),
                "flipped byte at {at} survived verification"
            );
        }
        std::fs::remove_file(&path).unwrap();
    }
}
