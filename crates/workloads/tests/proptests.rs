//! Property-based tests over the workload generators: every generated
//! trace must satisfy the structural invariants the simulator relies on.

use proptest::prelude::*;
use workloads::{extended_registry, LaneAccesses, Scale, WarpOp, LANES_PER_WARP};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For any benchmark and seed: all addresses stay inside allocated
    /// buffers, lane counts never exceed the warp width, compute ops have
    /// non-zero latency, and the TB concurrency hint respects the
    /// hardware cap.
    #[test]
    fn generated_traces_are_well_formed(bench_idx in 0usize..12, seed in 0u64..1000) {
        let spec = &extended_registry()[bench_idx];
        let wl = spec.generate(Scale::Test, seed);
        prop_assert!(!wl.kernels().is_empty(), "{}", spec.name);
        for kernel in wl.kernels() {
            prop_assert!(kernel.max_concurrent_tbs_per_sm >= 1);
            prop_assert!(kernel.max_concurrent_tbs_per_sm <= 16);
            prop_assert!(kernel.threads_per_tb >= 32);
            for tb in &kernel.tbs {
                for warp in tb.warps() {
                    for op in warp.ops() {
                        match op {
                            WarpOp::Compute { cycles } => prop_assert!(*cycles > 0),
                            WarpOp::Load(acc) | WarpOp::Store(acc) => {
                                let n = acc.lane_count();
                                prop_assert!((1..=LANES_PER_WARP).contains(&n));
                                for va in acc.addresses() {
                                    prop_assert!(
                                        wl.space().is_covered(va),
                                        "{}: {va} outside buffers",
                                        spec.name
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// Generation is a pure function of (scale, seed).
    #[test]
    fn generation_is_deterministic(bench_idx in 0usize..12, seed in 0u64..100) {
        let spec = &extended_registry()[bench_idx];
        let a = spec.generate(Scale::Test, seed);
        let b = spec.generate(Scale::Test, seed);
        prop_assert_eq!(a.total_warp_ops(), b.total_warp_ops());
        prop_assert_eq!(a.footprint_bytes(), b.footprint_bytes());
        for (ka, kb) in a.kernels().iter().zip(b.kernels()) {
            prop_assert_eq!(&ka.name, &kb.name);
            prop_assert_eq!(&ka.tbs, &kb.tbs);
        }
    }

    /// Strided lane accesses enumerate exactly `active_lanes` addresses
    /// with the declared stride, for arbitrary parameters.
    #[test]
    fn strided_access_enumeration(
        base in 0u64..(1 << 40),
        stride in -4096i64..4096,
        lanes in 1u8..=32,
    ) {
        // Keep addresses positive.
        prop_assume!(base as i64 + stride * 32 > 0);
        let acc = LaneAccesses::Strided {
            base: vmem::VirtAddr::new(base),
            stride,
            active_lanes: lanes,
        };
        let addrs: Vec<u64> = acc.addresses().map(|a| a.raw()).collect();
        prop_assert_eq!(addrs.len(), lanes as usize);
        for (i, &a) in addrs.iter().enumerate() {
            prop_assert_eq!(a as i64, base as i64 + stride * i as i64);
        }
    }
}
