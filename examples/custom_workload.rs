//! Builds a workload by hand against the public trace API — the path a
//! downstream user takes to study their own kernel's translation
//! behaviour — then runs it under every mechanism.
//!
//! The synthetic kernel is a "pointer-chase histogram": each thread block
//! scans a private segment of an input array and scatters increments into
//! a shared histogram. Private segments give intra-TB reuse; the shared
//! histogram gives inter-TB reuse — the two axes the paper characterizes.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use orchestrated_tlb_repro::gpu_sim::GpuConfig;
use orchestrated_tlb_repro::orchestrated_tlb::Mechanism;
use orchestrated_tlb_repro::vmem::{AddressSpace, PageSize};
use orchestrated_tlb_repro::workloads::{
    KernelTrace, LaneAccesses, TbTrace, WarpOp, Workload, LANES_PER_WARP,
};

/// Thread blocks in the grid.
const NUM_TBS: usize = 256;
/// Warps per thread block.
const WARPS_PER_TB: usize = 2;
/// Input elements each warp scans (per pass).
const SEGMENT_ELEMS: usize = 4096;
/// Scan passes (creates intra-TB translation reuse).
const PASSES: usize = 4;

fn main() {
    let mut space = AddressSpace::new(PageSize::Small);
    let input_bytes = (NUM_TBS * WARPS_PER_TB * SEGMENT_ELEMS * 4) as u64;
    let input = space.allocate("input", input_bytes).expect("fresh space");
    let histogram = space.allocate("histogram", 64 * 1024).expect("fresh space");

    let mut tbs = Vec::with_capacity(NUM_TBS);
    for tb in 0..NUM_TBS {
        let mut trace = TbTrace::with_warps(WARPS_PER_TB);
        for w in 0..WARPS_PER_TB {
            let warp = trace.warp_mut(w);
            let seg_base = ((tb * WARPS_PER_TB + w) * SEGMENT_ELEMS * 4) as u64;
            for pass in 0..PASSES {
                for chunk in (0..SEGMENT_ELEMS).step_by(LANES_PER_WARP) {
                    // Coalesced read of the warp's private segment.
                    warp.push(WarpOp::Load(LaneAccesses::contiguous(
                        input.addr_of(seg_base + (chunk * 4) as u64),
                        4,
                        LANES_PER_WARP as u8,
                    )));
                    // Scatter into the shared histogram: a deterministic
                    // pseudo-random bin per lane.
                    let addrs: Vec<_> = (0..LANES_PER_WARP)
                        .map(|lane| {
                            let h = (tb * 131 + w * 17 + pass * 7 + chunk + lane)
                                .wrapping_mul(2654435761)
                                % (histogram.size() as usize / 4);
                            histogram.addr_of((h * 4) as u64)
                        })
                        .collect();
                    warp.push(WarpOp::Store(LaneAccesses::Gather(addrs)));
                    warp.push(WarpOp::Compute { cycles: 4 });
                }
            }
        }
        tbs.push(trace);
    }

    let kernel = KernelTrace {
        name: "histogram".into(),
        tbs,
        max_concurrent_tbs_per_sm: 16,
        threads_per_tb: (WARPS_PER_TB * LANES_PER_WARP) as u32,
    };

    println!(
        "custom workload: {} TBs, {} warp ops, {:.1} MiB footprint\n",
        NUM_TBS,
        kernel.total_ops(),
        (input_bytes + 64 * 1024) as f64 / (1024.0 * 1024.0)
    );

    let mut baseline_cycles = None;
    for mechanism in Mechanism::figure10() {
        // Rebuild the workload per run (the simulator consumes it).
        let wl = Workload::new("histogram", vec![kernel.clone()], space.clone());
        let report = mechanism
            .simulator(GpuConfig::dac23_baseline())
            .run(wl);
        let base = *baseline_cycles.get_or_insert(report.total_cycles);
        println!(
            "{:<18} L1 TLB {:>5.1}%   time {:>6.3} vs baseline",
            mechanism.label(),
            report.l1_tlb_hit_rate() * 100.0,
            report.total_cycles as f64 / base as f64
        );
    }
}
