//! The paper's Section V huge-page study: rerun the evaluation with 2 MiB
//! pages instead of 4 KiB and combine the proposal with huge pages.
//!
//! ```text
//! cargo run --release --example huge_pages
//! ```

use orchestrated_tlb_repro::gpu_sim::GpuConfig;
use orchestrated_tlb_repro::orchestrated_tlb::{run_benchmark_with_page_size, Mechanism};
use orchestrated_tlb_repro::vmem::PageSize;
use orchestrated_tlb_repro::workloads::{registry, Scale};

fn main() {
    println!(
        "{:<10} {:>12} {:>12} {:>16}",
        "bench", "hit 4KiB", "hit 2MiB", "ours@2MiB time"
    );
    let mut geo = 0.0f64;
    let mut n = 0;
    for spec in registry() {
        let small = run_benchmark_with_page_size(
            &spec,
            Scale::Small,
            42,
            Mechanism::Baseline,
            GpuConfig::dac23_baseline(),
            PageSize::Small,
        );
        let huge = run_benchmark_with_page_size(
            &spec,
            Scale::Small,
            42,
            Mechanism::Baseline,
            GpuConfig::dac23_baseline(),
            PageSize::Large,
        );
        let ours_huge = run_benchmark_with_page_size(
            &spec,
            Scale::Small,
            42,
            Mechanism::Full,
            GpuConfig::dac23_baseline(),
            PageSize::Large,
        );
        let norm = ours_huge.normalized_time(&huge);
        geo += norm.ln();
        n += 1;
        println!(
            "{:<10} {:>11.1}% {:>11.1}% {:>16.3}",
            spec.name,
            small.l1_tlb_hit_rate() * 100.0,
            huge.l1_tlb_hit_rate() * 100.0,
            norm
        );
    }
    let g = (geo / n as f64).exp();
    println!(
        "\ngeomean time of ours vs baseline, both with 2 MiB pages: {:.3} ({:+.1}%)",
        g,
        (g - 1.0) * 100.0
    );
    println!(
        "paper reference: huge pages raise hit rates substantially on their own; \
         the proposal adds ~2.1% on top (vs ~12.5% at 4 KiB)"
    );
}
