//! Reproduces the paper's Section III characterization for one graph
//! benchmark: translation-reuse intensity (Figures 3/4) and reuse-distance
//! CDFs with and without inter-TB interference (Figures 5/6).
//!
//! ```text
//! cargo run --release --example characterize_graph [bench]
//! ```

use orchestrated_tlb_repro::analysis::{
    inter_intensities, intra_intensities, reuse_distance_samples, tb_translation_streams, Cdf,
    DistanceOptions, ReuseBins,
};
use orchestrated_tlb_repro::gpu_sim::GpuConfig;
use orchestrated_tlb_repro::orchestrated_tlb::Mechanism;
use orchestrated_tlb_repro::workloads::{registry, Scale};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "bfs".into());
    let Some(spec) = registry().into_iter().find(|s| s.name == name) else {
        eprintln!("unknown benchmark `{name}`; use one of:");
        for s in registry() {
            eprintln!("  {}", s.name);
        }
        std::process::exit(2);
    };

    // --- Figures 3/4: reuse intensity at TB granularity (Equation 1) ---
    let workload = spec.generate(Scale::Small, 42);
    let streams = tb_translation_streams(&workload, 128);
    let intra = ReuseBins::from_intensities(&intra_intensities(&streams));
    let inter = ReuseBins::from_intensities(&inter_intensities(&streams, Some(64)));

    println!("benchmark: {name}  (TBs: {})", streams.len());
    println!("\nreuse-intensity bins      b1    b2    b3    b4    b5");
    let row = |label: &str, bins: &ReuseBins| {
        print!("{label:<22}");
        for f in bins.fractions() {
            print!("  {:4.0}%", f * 100.0);
        }
        println!();
    };
    row("inter-TB (Fig. 3)", &inter);
    row("intra-TB (Fig. 4)", &intra);
    println!(
        "\n=> Observation 1 of the paper: intra-TB reuse (mean {:.2}) dominates \
         inter-TB reuse (mean {:.2})",
        intra.mean_midpoint(),
        inter.mean_midpoint()
    );

    // --- Figures 5/6: reuse distances with/without interference ---
    let cdf = |cap: Option<u8>| -> Cdf {
        let wl = spec.generate(Scale::Small, 42);
        let report = Mechanism::Baseline
            .simulator(GpuConfig::dac23_baseline())
            .with_translation_trace(true)
            .with_max_concurrent_tbs(cap)
            .run(wl);
        Cdf::from_samples(reuse_distance_samples(
            &report.translation_trace,
            DistanceOptions::intra_tb(),
        ))
    };
    let concurrent = cdf(None);
    let isolated = cdf(Some(1));

    println!("\nintra-TB reuse-distance CDF (P[distance <= x]):");
    println!("{:>24} {:>10} {:>10}", "x", "concurrent", "one-TB");
    for e in 3..=12 {
        let x = 1u64 << e;
        println!(
            "{:>24} {:>9.0}% {:>9.0}%",
            x,
            concurrent.at(x) * 100.0,
            isolated.at(x) * 100.0
        );
    }
    println!(
        "\nreuses beyond the 64-entry L1 reach: {:.0}% concurrent vs {:.0}% isolated",
        concurrent.tail_beyond(64) * 100.0,
        isolated.tail_beyond(64) * 100.0
    );
    println!("=> inter-TB interference stretches intra-TB reuse distances (paper §III-D)");
}
