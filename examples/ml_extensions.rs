//! Exercises the reproduction's extensions beyond the paper's evaluation:
//! the ML workloads (embedding lookup, MLP) that the paper's future work
//! names, the TB-throttling scheduler (§IV-A extension), and
//! translation-reuse-aware warp scheduling (§VII future work).
//!
//! ```text
//! cargo run --release --example ml_extensions
//! ```

use orchestrated_tlb_repro::gpu_sim::{GpuConfig, Simulator, WarpScheduler};
use orchestrated_tlb_repro::orchestrated_tlb::{
    run_benchmark, Mechanism, TbClusteredWarpScheduler, ThrottlingTlbAwareScheduler,
};
use orchestrated_tlb_repro::workloads::{extended_registry, Scale};

fn main() {
    println!("== ML extension workloads under the paper's mechanisms ==\n");
    for name in ["embedding", "mlp"] {
        let spec = extended_registry()
            .into_iter()
            .find(|s| s.name == name)
            .expect("extension workload registered");
        let base = run_benchmark(
            &spec,
            Scale::Small,
            42,
            Mechanism::Baseline,
            GpuConfig::dac23_baseline(),
        );
        let full = run_benchmark(
            &spec,
            Scale::Small,
            42,
            Mechanism::Full,
            GpuConfig::dac23_baseline(),
        );
        println!(
            "{:<10} baseline: hit {:>5.1}%  |  full proposal: hit {:>5.1}%, time {:.3}",
            name,
            base.l1_tlb_hit_rate() * 100.0,
            full.l1_tlb_hit_rate() * 100.0,
            full.normalized_time(&base),
        );
    }

    println!("\n== TB throttling (§IV-A extension) on embedding ==\n");
    let spec = extended_registry()
        .into_iter()
        .find(|s| s.name == "embedding")
        .expect("registered");
    let plain = Simulator::new(GpuConfig::dac23_baseline()).run(spec.generate(Scale::Small, 42));
    for threshold in [0.6, 0.9] {
        let r = Simulator::new(GpuConfig::dac23_baseline())
            .with_tb_scheduler(Box::new(ThrottlingTlbAwareScheduler::new(threshold)))
            .run(spec.generate(Scale::Small, 42));
        println!(
            "throttle @ {threshold:.1}: hit {:>5.1}% (round-robin: {:>5.1}%), time {:.3}",
            r.l1_tlb_hit_rate() * 100.0,
            plain.l1_tlb_hit_rate() * 100.0,
            r.normalized_time(&plain),
        );
    }

    println!("\n== TB-clustered warp scheduling (§VII future work) on mlp ==\n");
    let spec = extended_registry()
        .into_iter()
        .find(|s| s.name == "mlp")
        .expect("registered");
    let gto = Simulator::new(GpuConfig::dac23_baseline()).run(spec.generate(Scale::Small, 42));
    let clustered = Simulator::new(GpuConfig::dac23_baseline())
        .with_warp_scheduler_factory(Box::new(|| {
            Box::new(TbClusteredWarpScheduler::new()) as Box<dyn WarpScheduler>
        }))
        .run(spec.generate(Scale::Small, 42));
    println!(
        "gto:          hit {:>5.1}%  cycles {}",
        gto.l1_tlb_hit_rate() * 100.0,
        gto.total_cycles
    );
    println!(
        "tb-clustered: hit {:>5.1}%  cycles {} ({:+.1}%)",
        clustered.l1_tlb_hit_rate() * 100.0,
        clustered.total_cycles,
        (clustered.normalized_time(&gto) - 1.0) * 100.0
    );
}
