//! Quickstart: run one benchmark under the baseline and under the paper's
//! full proposal, and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use orchestrated_tlb_repro::gpu_sim::GpuConfig;
use orchestrated_tlb_repro::orchestrated_tlb::{run_benchmark, Mechanism};
use orchestrated_tlb_repro::workloads::{registry, Scale};

fn main() {
    // Pick a benchmark from Table II. `mvt` is one of the matrix-vector
    // kernels whose strided column slices thrash the 64-entry L1 TLB.
    let spec = registry()
        .into_iter()
        .find(|s| s.name == "mvt")
        .expect("mvt is in the registry");

    println!("benchmark: {} ({} suite)", spec.name, spec.application);

    // The paper's Table III configuration: 16 SMs, 64-entry 4-way private
    // L1 TLBs, shared 512-entry L2 TLB, 8 page-table walkers.
    let config = GpuConfig::dac23_baseline();

    // Baseline: round-robin TB scheduling + VPN-indexed L1 TLB.
    let baseline = run_benchmark(&spec, Scale::Small, 42, Mechanism::Baseline, config.clone());
    // The paper's proposal: TLB-aware TB scheduling + TB-id-partitioned
    // L1 TLB with dynamic adjacent set sharing.
    let ours = run_benchmark(&spec, Scale::Small, 42, Mechanism::Full, config);

    println!("\n--- baseline ---\n{baseline}");
    println!("\n--- orchestrated (sched + partition + sharing) ---\n{ours}");

    println!(
        "\nL1 TLB hit rate: {:.1}% -> {:.1}%",
        baseline.l1_tlb_hit_rate() * 100.0,
        ours.l1_tlb_hit_rate() * 100.0
    );
    println!(
        "execution time: {} -> {} cycles ({:.1}% reduction)",
        baseline.total_cycles,
        ours.total_cycles,
        (1.0 - ours.normalized_time(&baseline)) * 100.0
    );
}
