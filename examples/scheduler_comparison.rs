//! Compares TB scheduling policies and TLB organizations across all ten
//! benchmarks — a compact version of the paper's Figures 10/11.
//!
//! ```text
//! cargo run --release --example scheduler_comparison
//! ```

use orchestrated_tlb_repro::gpu_sim::GpuConfig;
use orchestrated_tlb_repro::orchestrated_tlb::{run_benchmark, Mechanism};
use orchestrated_tlb_repro::workloads::{registry, Scale};

fn main() {
    let mechanisms = Mechanism::figure10();
    print!("{:<10}", "bench");
    for m in mechanisms {
        print!(" {:>18}", m.label());
    }
    println!("   (L1 TLB hit %  /  time vs baseline)");

    let mut geo: Vec<f64> = vec![0.0; mechanisms.len()];
    let mut count = 0usize;
    for spec in registry() {
        let reports: Vec<_> = mechanisms
            .iter()
            .map(|&m| run_benchmark(&spec, Scale::Small, 42, m, GpuConfig::dac23_baseline()))
            .collect();
        let base = reports[0].total_cycles as f64;
        print!("{:<10}", spec.name);
        for (i, r) in reports.iter().enumerate() {
            let norm = r.total_cycles as f64 / base;
            print!(
                " {:>9.1}% / {:>5.3}",
                r.l1_tlb_hit_rate() * 100.0,
                norm
            );
            geo[i] += norm.ln();
        }
        println!();
        count += 1;
    }

    println!();
    for (i, m) in mechanisms.iter().enumerate() {
        let g = (geo[i] / count as f64).exp();
        println!(
            "geomean time {:<18} {:.3}  ({:+.1}% vs baseline)",
            m.label(),
            g,
            (g - 1.0) * 100.0
        );
    }
    println!("\npaper reference: scheduling alone -2.3%, full proposal -12.5%");
}
